//! End-to-end scatter-gather tests over real TCP shard groups: hash
//! routing, aggregate-vs-leg latency, top-k merging, and the shared
//! cross-shard reissue budget under a scripted sick shard.

use kvstore::{Command, KvStore, Reply};
use reissue_core::online::OnlineConfig;
use searchengine::workload::{QueryWorkloadConfig, TermRankDist};
use searchengine::{CorpusConfig, ShardedQueryWorkload};
use shard::{
    run_fanout_load, FanoutClient, FanoutConfig, FanoutLoadConfig, FanoutSickness, ShardedCluster,
};

use hedge::harness::Arrivals;

fn small_workload(shards: usize) -> ShardedQueryWorkload {
    ShardedQueryWorkload::generate(
        shards,
        CorpusConfig::small(42),
        QueryWorkloadConfig {
            num_queries: 200,
            terms_min: 1,
            terms_max: 3,
            term_ranks: TermRankDist::LogUniform { lo: 5, hi: 1_500 },
            base_ops: 2_000,
            top_k: 5,
            seed: 7,
        },
        150.0,
    )
}

#[test]
fn routed_commands_land_on_the_owning_shard() {
    let cluster = ShardedCluster::spawn(vec![KvStore::new(); 4], 1, 0).unwrap();
    let client = FanoutClient::connect(&cluster, FanoutConfig::default()).unwrap();
    assert_eq!(client.shards(), 4);

    for i in 0..32 {
        let key = format!("user:{i}");
        let set = client
            .execute_routed_blocking(
                key.as_bytes(),
                Command::Set(key.clone().into(), format!("v{i}").into()),
            )
            .unwrap();
        assert_eq!(set, Reply::Ok);
    }
    for i in 0..32 {
        let key = format!("user:{i}");
        // Round-trips through the client...
        let got = client
            .execute_routed_blocking(key.as_bytes(), Command::Get(key.clone().into()))
            .unwrap();
        assert_eq!(got, Reply::Str(format!("v{i}").into()));
        // ...and the key physically lives on the hash-owning shard.
        let owner = client.keyspace().shard_of(key.as_bytes());
        let direct = cluster
            .server(owner, 0)
            .with_store(|store| store.execute(&Command::Get(key.clone().into())).0);
        assert_eq!(direct, Reply::Str(format!("v{i}").into()));
    }
}

#[test]
fn fanout_gathers_all_legs_and_merges_top_k() {
    let wl = small_workload(3);
    let cluster = ShardedCluster::spawn(wl.backends(), 2, 150).unwrap();
    let client = FanoutClient::connect(&cluster, FanoutConfig::default()).unwrap();

    for i in 0..20 {
        let reply = client.execute_all_blocking(&wl.command(i));
        assert_eq!(reply.ok_legs(), 3, "every leg answers on a quiet cluster");
        assert_eq!(reply.failed_legs(), 0);
        // Aggregate latency is the slowest leg plus gather overhead:
        // never below the max, and (on a quiet cluster) not far above.
        assert!(reply.total_ms >= reply.max_leg_ms());
        assert!(
            reply.total_ms - reply.max_leg_ms() < 50.0,
            "gather overhead {:.2} ms",
            reply.total_ms - reply.max_leg_ms()
        );

        let top = reply.merge_top_k(wl.top_k);
        assert!(top.len() <= wl.top_k);
        for pair in top.windows(2) {
            assert!(
                pair[0].score() >= pair[1].score(),
                "merged hits must be score-sorted"
            );
        }
        let mut docs: Vec<u64> = top.iter().map(|h| h.doc).collect();
        docs.dedup();
        assert_eq!(docs.len(), top.len(), "global doc ids never collide");
    }
}

#[test]
fn sick_shard_degrades_gracefully_within_shared_budget() {
    let wl = small_workload(4);
    let cluster = ShardedCluster::spawn(wl.backends(), 3, 150).unwrap();
    let budget = 0.05;
    let client = FanoutClient::connect(
        &cluster,
        FanoutConfig {
            online: Some(OnlineConfig {
                k: 0.99,
                budget,
                window: 500,
                reoptimize_every: 100,
                learning_rate: 0.5,
                min_pairs: 24,
                load: None,
            }),
            budget: Some(budget),
            ..FanoutConfig::default()
        },
    )
    .unwrap();

    let queries = 400;
    let report = run_fanout_load(
        &cluster,
        &client,
        &FanoutLoadConfig {
            queries,
            arrivals: Arrivals::Fixed { interval_us: 2_000 },
            max_in_flight: 64,
            script: vec![
                // One replica of shard 2 goes 40x slow mid-run...
                FanoutSickness {
                    at_query: 100,
                    shard: 2,
                    replica: 0,
                    nanos_per_op: 6_000,
                },
                // ...and heals before the end.
                FanoutSickness {
                    at_query: 300,
                    shard: 2,
                    replica: 0,
                    nanos_per_op: 150,
                },
            ],
            ..FanoutLoadConfig::default()
        },
        wl.command_fn(),
    );

    // Exact accounting: nothing lost, nothing failed outright — a
    // slow replica degrades a leg, hedging and retries absorb it.
    assert_eq!(report.dispatched + report.dropped, queries as u64);
    assert_eq!(report.lost(), 0, "every fan-out must be accounted for");
    assert_eq!(report.failed, 0, "a sick replica must not fail fan-outs");
    assert!(report.completed > 0);

    // Aggregate latency compounds per-leg latency: the all-legs P99
    // cannot be better than the single-leg P99.
    let agg_p99 = report.quantile(0.99).unwrap();
    let leg_p99 = report.leg_quantile(0.99).unwrap();
    assert!(
        agg_p99 >= leg_p99 * 0.99,
        "aggregate P99 {agg_p99:.2} ms below leg P99 {leg_p99:.2} ms"
    );

    // The shared governor keeps the cluster-wide realized reissue
    // rate within the budget (1.25x headroom) plus its burst
    // allowance, amortized over per-leg queries.
    let governor = client.governor().expect("budget configured");
    let leg_queries = governor.queries().max(1);
    let bound = governor.cap() + governor.burst() / leg_queries as f64 + 0.01;
    assert!(
        governor.realized_rate() <= bound,
        "realized reissue rate {:.4} exceeds bound {:.4}",
        governor.realized_rate(),
        bound
    );

    // The per-shard leg recorders merge losslessly back into the
    // directly recorded leg histogram: identical counts and quantiles.
    let mut merged = reissue_core::metrics::LogHistogram::latency_ms();
    for h in &report.leg_ms_by_shard {
        merged.merge(h);
    }
    assert_eq!(merged.len(), report.leg_ms.len());
    for p in [0.5, 0.9, 0.99, 1.0] {
        assert_eq!(
            merged.quantile(p),
            report.leg_ms.quantile(p),
            "merged per-shard quantile p={p} diverges from direct recording"
        );
    }
    // Bucket counts merge exactly; the mean's sum accumulator adds the
    // same values in a different order, so allow float associativity.
    let (m, d) = (merged.mean().unwrap(), report.leg_ms.mean().unwrap());
    assert!(
        (m - d).abs() <= 1e-9 * d.abs().max(1.0),
        "merged per-shard mean {m} diverges from direct recording {d}"
    );

    // The client-side merged histogram agrees in count with the legs'
    // own recorders (each leg records every completion it served).
    assert!(client.merged_leg_histogram().len() >= report.leg_ms.len());
}
