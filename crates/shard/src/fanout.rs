//! The scatter-gather fan-out aggregator: one [`HedgedClient`] per
//! shard group, hedging **per shard** under one **shared cross-shard
//! reissue budget**.
//!
//! This is the tail-at-scale regime the paper's single-group
//! experiments deliberately factor out: a request that fans out to `N`
//! shards completes only when its *slowest* leg does, so a per-leg
//! P99 compounds to an aggregate tail of `1 − 0.99^N` — at `N = 100`,
//! **63%** of requests see at least one leg's worst 1%. Hedging must
//! therefore act where the straggling happens (each shard's replica
//! group has its own health, its own queue of death), while the
//! *budget* — the extra-load knob the whole cluster pays for — must be
//! governed globally: `N` legs each locally entitled to `b` reissues
//! per query would burst to `N·b` exactly when a slow epoch hits every
//! shard at once. The aggregator gives every leg a clone of one
//! [`BudgetGovernor`], so quota spends where stragglers actually are
//! (a sick shard can draw more than its 1/N share) without the
//! cluster-wide rate exceeding the budget.
//!
//! Single-key commands route by [`Keyspace`] hash instead of fanning
//! out ([`FanoutClient::execute_routed`]).

use crate::cluster::ShardedCluster;
use crate::partition::Keyspace;

use hedge::rt::Runtime;
use hedge::transport::TransportError;
use hedge::{BudgetGovernor, HedgeConfig, HedgedClient};
use kvstore::{Backend, Command, Hit, Reply};
use reissue_core::metrics::LogHistogram;
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`FanoutClient`].
#[derive(Clone, Debug)]
pub struct FanoutConfig {
    /// Starting reissue policy, applied per shard leg (each leg's
    /// hedging runs against its own replica group).
    pub policy: ReissuePolicy,
    /// When set, every leg runs its own `OnlineAdapter` (per-shard
    /// latency distributions re-optimize independently) — but all legs
    /// still draw from the one shared budget below.
    pub online: Option<OnlineConfig>,
    /// Target per-leg reissue budget (reissues / leg-queries),
    /// enforced *across* legs by one shared [`BudgetGovernor`] at
    /// 1.25× headroom (matching [`HedgeConfig::budget_cap`]'s default
    /// relationship to the online budget). Defaults to the online
    /// budget when unset; `None` with `online: None` means ungoverned.
    pub budget: Option<f64>,
    /// TCP connections per replica, per leg.
    pub pool_per_replica: usize,
    /// Executor worker threads — one runtime shared by every leg.
    pub workers: usize,
    /// Seed for the legs' reissue coin flips (varied per leg).
    pub seed: u64,
    /// How each leg retracts its losing attempts (see
    /// [`hedge::CancellationStyle`]): `Tied` registers server-side
    /// tied pairs so the serving replica cancels the peer at dequeue
    /// time; `Client` (default) sends `CANCEL` after the race.
    pub cancellation: hedge::CancellationStyle,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        FanoutConfig {
            policy: ReissuePolicy::None,
            online: None,
            budget: None,
            pool_per_replica: 2,
            workers: 4,
            seed: 0xFA20,
            cancellation: hedge::CancellationStyle::Client,
        }
    }
}

/// One leg of a scatter-gather request.
#[derive(Clone, Debug)]
pub struct LegReply {
    /// The shard this leg queried.
    pub shard: usize,
    /// The leg's reply (hedging already resolved: this is the winning
    /// attempt, or the error after every attempt failed).
    pub result: Result<Reply, TransportError>,
    /// Leg latency, ms, measured from the fan-out dispatch.
    pub ms: f64,
}

/// The gathered result of one fan-out: every leg, plus the wall-clock
/// total (which is `max` over legs plus gather overhead — the
/// compounding the aggregate histograms measure).
#[derive(Clone, Debug)]
pub struct FanoutReply {
    /// Per-shard legs, in shard order.
    pub legs: Vec<LegReply>,
    /// End-to-end latency, ms (all legs gathered).
    pub total_ms: f64,
}

impl FanoutReply {
    /// Slowest leg's latency, ms.
    pub fn max_leg_ms(&self) -> f64 {
        self.legs.iter().map(|l| l.ms).fold(0.0, f64::max)
    }

    /// Legs that returned a reply.
    pub fn ok_legs(&self) -> usize {
        self.legs.iter().filter(|l| l.result.is_ok()).count()
    }

    /// Legs whose every attempt failed at the transport.
    pub fn failed_legs(&self) -> usize {
        self.legs.len() - self.ok_legs()
    }

    /// Whether some (but not all) legs failed: the fan-out degrades to
    /// partial results instead of erroring the whole request.
    pub fn is_degraded(&self) -> bool {
        let failed = self.failed_legs();
        failed > 0 && failed < self.legs.len()
    }

    /// Merges per-shard top-k hit lists into the global top-k (score
    /// descending, doc id ascending on ties — deterministic given the
    /// legs). Failed legs are skipped (degraded results); an empty
    /// RESP array decodes as `Reply::Members([])`, which counts as
    /// zero hits here.
    pub fn merge_top_k(&self, k: usize) -> Vec<Hit> {
        let mut merged: Vec<Hit> = Vec::new();
        for leg in &self.legs {
            // Failed legs and non-hit replies are skipped: the wire
            // cannot distinguish an empty hit list from an empty
            // member set, and both mean "no hits" in a fan-out.
            if let Ok(Reply::Hits(hits)) = &leg.result {
                merged.extend_from_slice(hits);
            }
        }
        merged.sort_by(|a, b| {
            b.score()
                .partial_cmp(&a.score())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        merged.truncate(k);
        merged
    }
}

/// The scatter-gather client: one hedged leg per shard, one shared
/// runtime, one shared budget. Cheap to clone (clones share legs,
/// governor and runtime).
#[derive(Clone)]
pub struct FanoutClient {
    rt: Runtime,
    legs: Vec<HedgedClient>,
    governor: Option<Arc<BudgetGovernor>>,
    keyspace: Keyspace,
}

impl FanoutClient {
    /// Connects one [`HedgedClient`] to each shard group of `cluster`,
    /// all sharing one runtime and (when a budget is configured) one
    /// [`BudgetGovernor`].
    pub fn connect<B: Backend>(
        cluster: &ShardedCluster<B>,
        cfg: FanoutConfig,
    ) -> std::io::Result<FanoutClient> {
        let rt = Runtime::new(cfg.workers);
        let governor = cfg
            .budget
            .or(cfg.online.map(|o| o.budget))
            .map(|cap| Arc::new(BudgetGovernor::new(1.25 * cap)));
        let legs = (0..cluster.shards())
            .map(|s| {
                let leg_cfg = HedgeConfig {
                    policy: cfg.policy.clone(),
                    online: cfg.online,
                    budget_cap: None,
                    governor: governor.clone(),
                    pool_per_replica: cfg.pool_per_replica,
                    // Hedged legs stay strict request/reply: pipelining
                    // trades away the retraction/retry semantics the
                    // tail-latency path depends on.
                    pipeline: 1,
                    workers: cfg.workers,
                    seed: cfg
                        .seed
                        .wrapping_add(0x9E37_79B9_97F4_A7C1u64.wrapping_mul(s as u64)),
                    cancellation: cfg.cancellation,
                };
                HedgedClient::connect_with_runtime(rt.clone(), &cluster.group_addrs(s), leg_cfg)
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(FanoutClient {
            rt,
            legs,
            governor,
            keyspace: Keyspace::new(cluster.shards()),
        })
    }

    /// Number of shard legs.
    pub fn shards(&self) -> usize {
        self.legs.len()
    }

    /// The shared executor.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Shard `s`'s hedged client.
    pub fn leg(&self, s: usize) -> &HedgedClient {
        &self.legs[s]
    }

    /// The shared cross-shard budget governor, if one is configured.
    pub fn governor(&self) -> Option<&Arc<BudgetGovernor>> {
        self.governor.as_ref()
    }

    /// The hash partitioner used by [`FanoutClient::execute_routed`].
    pub fn keyspace(&self) -> &Keyspace {
        &self.keyspace
    }

    /// Cluster-wide realized reissue rate: total reissues over total
    /// per-leg queries, i.e. the per-leg fraction the shared budget
    /// caps.
    pub fn realized_reissue_rate(&self) -> f64 {
        if let Some(g) = &self.governor {
            return g.realized_rate();
        }
        let (mut q, mut r) = (0u64, 0u64);
        for leg in &self.legs {
            let s = leg.stats();
            q += s.queries;
            r += s.reissues;
        }
        r as f64 / q.max(1) as f64
    }

    /// Every leg's latency histogram merged into one — the per-shard
    /// recorders aggregate losslessly (bucket-wise sum), so quantiles
    /// of the merged histogram equal those of a single recorder fed
    /// all legs directly.
    pub fn merged_leg_histogram(&self) -> LogHistogram {
        let mut merged = LogHistogram::latency_ms();
        for leg in &self.legs {
            merged.merge(&leg.latency_histogram());
        }
        merged
    }

    /// Scatter-gathers one request: `make(s)` builds shard `s`'s
    /// command, every leg is dispatched **eagerly** (spawned on the
    /// shared runtime at call time — [`HedgedClient::execute`] futures
    /// are lazy, and sequentially awaited lazy legs would serialize
    /// the fan-out), and the returned future resolves once all legs
    /// have gathered.
    ///
    /// Legs are pinned across cores ([`Runtime::spawn_on`], shard `s`
    /// on worker `s % workers`): each leg's completions wake the
    /// worker owning that leg, so one straggling shard's hedging
    /// traffic does not contend with the other legs' run queues.
    pub fn execute_all(
        &self,
        mut make: impl FnMut(usize) -> Command,
    ) -> impl std::future::Future<Output = FanoutReply> + Send + 'static {
        let started = Instant::now();
        let handles: Vec<_> = self
            .legs
            .iter()
            .enumerate()
            .map(|(s, leg)| {
                let fut = leg.execute(make(s));
                self.rt.spawn_on(s, async move {
                    let result = fut.await;
                    (result, started.elapsed().as_secs_f64() * 1e3)
                })
            })
            .collect();
        async move {
            let mut legs = Vec::with_capacity(handles.len());
            for (s, h) in handles.into_iter().enumerate() {
                let (result, ms) = h.await;
                legs.push(LegReply {
                    shard: s,
                    result,
                    ms,
                });
            }
            FanoutReply {
                legs,
                total_ms: started.elapsed().as_secs_f64() * 1e3,
            }
        }
    }

    /// Blocking wrapper around [`FanoutClient::execute_all`],
    /// broadcasting one command to every shard.
    pub fn execute_all_blocking(&self, cmd: &Command) -> FanoutReply {
        let fut = self.execute_all(|_| cmd.clone());
        self.rt.block_on(fut)
    }

    /// Routes a single-key command to the shard owning `key` (no
    /// fan-out; the one leg still hedges across its replicas).
    pub fn execute_routed(
        &self,
        key: &[u8],
        cmd: Command,
    ) -> impl std::future::Future<Output = Result<Reply, TransportError>> + Send + 'static {
        self.legs[self.keyspace.shard_of(key)].execute(cmd)
    }

    /// Blocking wrapper around [`FanoutClient::execute_routed`].
    pub fn execute_routed_blocking(
        &self,
        key: &[u8],
        cmd: Command,
    ) -> Result<Reply, TransportError> {
        let fut = self.execute_routed(key, cmd);
        self.rt.block_on(fut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_hits(shard: usize, hits: Vec<Hit>) -> LegReply {
        LegReply {
            shard,
            result: Ok(Reply::Hits(hits)),
            ms: 1.0,
        }
    }

    #[test]
    fn merge_top_k_orders_truncates_and_skips_failures() {
        let reply = FanoutReply {
            legs: vec![
                ok_hits(0, vec![Hit::new(0, 3.0), Hit::new(4, 1.0)]),
                ok_hits(1, vec![Hit::new(1, 9.0), Hit::new(5, 3.0)]),
                // Empty hit lists arrive off the wire as Members([]).
                LegReply {
                    shard: 2,
                    result: Ok(Reply::Members(vec![])),
                    ms: 1.0,
                },
                LegReply {
                    shard: 3,
                    result: Err(TransportError::ConnectionClosed),
                    ms: 1.0,
                },
            ],
            total_ms: 2.0,
        };
        let top = reply.merge_top_k(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].doc, 1); // score 9.0
                                   // Tied at 3.0: doc id ascending breaks the tie.
        assert_eq!(top[1].doc, 0);
        assert_eq!(top[2].doc, 5);
        assert!(reply.is_degraded());
        assert_eq!(reply.ok_legs(), 3);
        assert_eq!(reply.failed_legs(), 1);
    }

    #[test]
    fn max_leg_ms_is_the_slowest_leg() {
        let mut reply = FanoutReply {
            legs: vec![ok_hits(0, vec![]), ok_hits(1, vec![])],
            total_ms: 8.0,
        };
        reply.legs[0].ms = 2.5;
        reply.legs[1].ms = 7.5;
        assert_eq!(reply.max_leg_ms(), 7.5);
    }
}
