//! Hash partitioning of a keyspace over `N` shards.
//!
//! FNV-1a 64 over the key bytes, reduced modulo the shard count: fully
//! deterministic (same key, same shard, forever — no seeds, no state),
//! cheap enough to sit on the per-request path, and well mixed for the
//! short string keys the kvstore workloads use.

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A keyspace partitioned over `shards` shards by key hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Keyspace {
    shards: usize,
}

impl Keyspace {
    /// A keyspace over `shards` shards.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a keyspace needs at least one shard");
        Keyspace { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`. Always `< self.shards()`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ks = Keyspace::new(7);
        for i in 0..1_000 {
            let key = format!("key:{i}");
            let s = ks.shard_of(key.as_bytes());
            assert!(s < 7);
            assert_eq!(s, ks.shard_of(key.as_bytes()), "same key, same shard");
        }
        // Known-vector pin so the mapping can never silently change
        // (persisted data placed by an old binary must stay findable).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ks = Keyspace::new(8);
        let mut counts = [0usize; 8];
        let n = 10_000;
        for i in 0..n {
            counts[ks.shard_of(format!("user:{i}").as_bytes())] += 1;
        }
        let mean = n / 8;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > mean / 2 && c < mean * 2,
                "shard {s} holds {c} of {n} keys (mean {mean})"
            );
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let ks = Keyspace::new(1);
        assert_eq!(ks.shard_of(b"anything"), 0);
    }
}
