//! Erasure-coded striped replica groups for the sharded keyspace.
//!
//! A [`StripedGroup`] is the striped counterpart of one shard's
//! [`hedge::harness::Cluster`]: `n` TCP servers that each hold **one
//! stripe slot** of every key — data fragments on `k` of them, parity
//! clones on the rest, rotated per key so every server carries an
//! even mix — instead of `n` identical full copies. Reads go
//! through [`erasure::StripedClient`]'s k-of-n race, so the group's
//! hedge unit is a `1/k`-sized fragment rather than a whole request.
//!
//! Shard-level composition is unchanged: build one group per shard and
//! scatter across them exactly as [`crate::ShardedCluster`] scatters
//! across replica groups — shards still hold different data, striping
//! only changes how *one* shard's bytes spread over its replicas.

use erasure::{encode_stripe, CodecError, StripedBackend};
use hedge::{run_open_loop, LoadClient, LoadConfig, LoadReport, TcpServer, TcpServerConfig};
use kvstore::{Command, KvStore};

use bytes::Bytes;
use std::net::SocketAddr;

/// One shard's striped replica group: `n` servers, one stripe slot
/// each. Dropping the handle shuts every server down.
pub struct StripedGroup {
    servers: Vec<TcpServer<StripedBackend>>,
    k: usize,
    baseline_nanos_per_op: u64,
}

impl StripedGroup {
    /// Spins up `n` fragment servers for a `(k, n)` stripe geometry,
    /// each charging byte-proportional cost at `bytes_per_unit` and
    /// burning `nanos_per_op` wall-clock nanoseconds per cost unit.
    ///
    /// # Panics
    /// Panics when `k == 0` or `n < k`.
    pub fn spawn(
        k: usize,
        n: usize,
        bytes_per_unit: u64,
        nanos_per_op: u64,
    ) -> std::io::Result<StripedGroup> {
        assert!(k > 0, "a stripe needs at least one data fragment");
        assert!(n >= k, "need at least k slots");
        let cfg = TcpServerConfig {
            nanos_per_op,
            ..TcpServerConfig::default()
        };
        let servers = (0..n)
            .map(|_| {
                TcpServer::bind(
                    "127.0.0.1:0",
                    StripedBackend::new(KvStore::new(), bytes_per_unit),
                    cfg,
                )
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(StripedGroup {
            servers,
            k,
            baseline_nanos_per_op: nanos_per_op,
        })
    }

    /// Stripe geometry `(k, n)`.
    pub fn geometry(&self) -> (usize, usize) {
        (self.k, self.servers.len())
    }

    /// Every server's address, in replica order — feed directly to
    /// [`erasure::StripedClient`], which maps each key's slot `s` to
    /// replica `(s + erasure::placement_offset(key, n)) % n`.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.local_addr()).collect()
    }

    /// Direct access to slot `idx`'s server.
    pub fn server(&self, idx: usize) -> &TcpServer<StripedBackend> {
        &self.servers[idx]
    }

    /// Seeds one key's stripe directly into the stores (no network):
    /// slot `s`'s fragment lands on the key's rotated replica
    /// `(s + placement_offset) % n`, matching where
    /// [`erasure::StripedClient`] will look for it. The fast path for
    /// bench setup; live writes go through
    /// [`erasure::StripedClient::put_blocking`].
    pub fn seed(&self, key: &[u8], value: &[u8]) -> Result<(), CodecError> {
        let n = self.servers.len();
        let frags = encode_stripe(value, self.k, n)?;
        let offset = erasure::placement_offset(key, n);
        for (slot, frag) in frags.into_iter().enumerate() {
            self.servers[(slot + offset) % n].with_store(|s| {
                s.store_mut().execute(&Command::FSet(
                    Bytes::copy_from_slice(key),
                    slot as u32,
                    frag.clone(),
                ))
            });
        }
        Ok(())
    }

    /// Changes slot `idx`'s service burn while it serves (sicken /
    /// heal).
    pub fn set_nanos_per_op(&self, idx: usize, nanos_per_op: u64) {
        self.servers[idx].set_nanos_per_op(nanos_per_op);
    }

    /// Restores every server to the spawn-time service burn.
    pub fn heal_all(&self) {
        for s in &self.servers {
            s.set_nanos_per_op(self.baseline_nanos_per_op);
        }
    }

    /// Total commands executed across all slots.
    pub fn total_commands(&self) -> u64 {
        self.servers.iter().map(|s| s.stats().commands).sum()
    }

    /// Drives `cfg.queries` arrivals through `client` open-loop
    /// against this group — the striped counterpart of
    /// [`hedge::harness::Cluster::run_load`], with the sickness script
    /// applied to this group's fragment servers. See
    /// [`hedge::run_open_loop`] for the pacing and accounting
    /// contract.
    pub fn run_load<C: LoadClient>(
        &self,
        client: &C,
        cfg: &LoadConfig,
        make_cmd: impl FnMut(usize) -> Command + Send + 'static,
    ) -> LoadReport {
        run_open_loop(client, cfg, make_cmd, |idx, nanos_per_op| {
            self.set_nanos_per_op(idx, nanos_per_op)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasure::{StripedClient, StripedConfig};
    use kvstore::Reply;

    /// Two striped shard groups holding different data: per-group
    /// clients read their own shard's stripes back byte-identically —
    /// the scatter topology [`crate::ShardedCluster`] uses, with
    /// striped groups swapped in for replica groups.
    #[test]
    fn striped_groups_shard_like_replica_groups() {
        let groups: Vec<StripedGroup> = (0..2)
            .map(|_| StripedGroup::spawn(2, 3, 64, 0).unwrap())
            .collect();
        let values: Vec<Vec<u8>> = (0..2u8)
            .map(|s| (0..5_000u32).map(|i| (i % 200) as u8 ^ s).collect())
            .collect();
        for (g, v) in groups.iter().zip(&values) {
            g.seed(b"shard:key", v).unwrap();
        }
        for (g, v) in groups.iter().zip(&values) {
            let client = StripedClient::connect(
                &g.addrs(),
                StripedConfig {
                    k: 2,
                    workers: 2,
                    ..StripedConfig::default()
                },
            )
            .unwrap();
            let got = client
                .execute_blocking(Command::Get(Bytes::from_static(b"shard:key")))
                .unwrap();
            assert_eq!(got, Reply::Str(Bytes::from(v.clone())));
        }
    }
}
