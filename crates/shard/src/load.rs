//! Open-loop load generation for scatter-gather fan-outs, mirroring
//! [`hedge::harness::Cluster::run_load`]: arrivals on a clock, bounded
//! admission with counted drops, exact completion accounting, scripted
//! per-replica sickness — plus the fan-out-specific accounting the
//! single-group harness has no notion of (aggregate vs per-leg
//! latency, degraded completions).

use crate::cluster::ShardedCluster;
use crate::fanout::FanoutClient;

use hedge::harness::Arrivals;
use kvstore::{Backend, Command};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reissue_core::metrics::LogHistogram;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One scripted mid-run change to a replica's service speed, addressed
/// by `(shard, replica)` and applied once the generator has *offered*
/// (dispatched or dropped) `at_query` arrivals.
#[derive(Clone, Copy, Debug)]
pub struct FanoutSickness {
    /// Arrival index at which to apply the change.
    pub at_query: usize,
    /// Target shard group.
    pub shard: usize,
    /// Target replica within the shard group.
    pub replica: usize,
    /// New wall-clock nanoseconds per unit of store cost.
    pub nanos_per_op: u64,
}

/// Configuration for one open-loop fan-out load run.
#[derive(Clone, Debug)]
pub struct FanoutLoadConfig {
    /// Number of fan-out arrivals to offer (each arrival queries
    /// *every* shard).
    pub queries: usize,
    /// The inter-arrival process.
    pub arrivals: Arrivals,
    /// Bound on concurrently outstanding fan-outs; an arrival beyond
    /// it is dropped and counted.
    pub max_in_flight: usize,
    /// Seed for the arrival process.
    pub seed: u64,
    /// Scripted sickness/heal events, applied by arrival index.
    pub script: Vec<FanoutSickness>,
}

impl Default for FanoutLoadConfig {
    /// 5 000 fan-outs, 1 ms fixed pacing, 256 in-flight cap.
    fn default() -> Self {
        FanoutLoadConfig {
            queries: 5_000,
            arrivals: Arrivals::Fixed { interval_us: 1_000 },
            max_in_flight: 256,
            seed: 0x10AD,
            script: Vec::new(),
        }
    }
}

/// What one fan-out load run did. Accounting is exact:
/// `queries == dispatched + dropped` and, once drained,
/// `dispatched == completed + failed`. A fan-out **completes** when at
/// least one leg returns (it is additionally counted `degraded` when
/// some legs failed); it **fails** only when *every* leg failed.
#[derive(Clone, Debug)]
pub struct FanoutLoadReport {
    /// Arrivals admitted and dispatched to all shards.
    pub dispatched: u64,
    /// Arrivals refused by admission control.
    pub dropped: u64,
    /// Fan-outs that resolved with at least one leg's reply.
    pub completed: u64,
    /// Fan-outs in which every leg failed.
    pub failed: u64,
    /// Completed fan-outs that lost at least one leg (partial
    /// results served instead of an error).
    pub degraded: u64,
    /// Highest number of concurrently outstanding fan-outs observed.
    pub peak_in_flight: usize,
    /// Wall-clock duration of the run (first arrival to last drain).
    pub elapsed: Duration,
    /// End-to-end fan-out latency (all legs gathered), ms, per
    /// completed fan-out.
    pub aggregate_ms: LogHistogram,
    /// Every successful leg's latency, ms, recorded directly into one
    /// histogram.
    pub leg_ms: LogHistogram,
    /// The same leg latencies, recorded into one histogram **per
    /// shard** — merging these must reproduce `leg_ms` exactly (the
    /// log-histogram merge is lossless), which the integration tests
    /// assert.
    pub leg_ms_by_shard: Vec<LogHistogram>,
}

impl FanoutLoadReport {
    /// Dispatched fan-outs unaccounted for — must be zero after a
    /// drained run.
    pub fn lost(&self) -> i64 {
        self.dispatched as i64 - self.completed as i64 - self.failed as i64
    }

    /// Aggregate (all-legs) latency quantile, ms.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        self.aggregate_ms.quantile(p)
    }

    /// Single-leg latency quantile, ms — the per-shard tail the
    /// aggregate compounds.
    pub fn leg_quantile(&self, p: f64) -> Option<f64> {
        self.leg_ms.quantile(p)
    }

    /// Fraction of arrivals dropped by admission control.
    pub fn drop_rate(&self) -> f64 {
        self.dropped as f64 / (self.dispatched + self.dropped).max(1) as f64
    }
}

struct RunShared {
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
    offered: AtomicU64,
    dispatched: AtomicU64,
    dropped: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    degraded: AtomicU64,
    aggregate_ms: Mutex<LogHistogram>,
    leg_ms: Mutex<LogHistogram>,
    leg_ms_by_shard: Mutex<Vec<LogHistogram>>,
}

/// Drives `cfg.queries` fan-out arrivals through `client` open-loop —
/// each arrival broadcasting `make_cmd(i)` to every shard — and waits
/// for every dispatched fan-out to drain. Scripted [`FanoutSickness`]
/// events are applied from the calling thread as the arrival count
/// crosses their `at_query` (same contract as
/// [`hedge::harness::Cluster::run_load`]).
pub fn run_fanout_load<B: Backend>(
    cluster: &ShardedCluster<B>,
    client: &FanoutClient,
    cfg: &FanoutLoadConfig,
    make_cmd: impl FnMut(usize) -> Command + Send + 'static,
) -> FanoutLoadReport {
    let shards = client.shards();
    let shared = Arc::new(RunShared {
        in_flight: AtomicUsize::new(0),
        peak_in_flight: AtomicUsize::new(0),
        offered: AtomicU64::new(0),
        dispatched: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        degraded: AtomicU64::new(0),
        aggregate_ms: Mutex::new(LogHistogram::latency_ms()),
        leg_ms: Mutex::new(LogHistogram::latency_ms()),
        leg_ms_by_shard: Mutex::new(vec![LogHistogram::latency_ms(); shards]),
    });
    let started = Instant::now();
    let pacer = {
        let client = client.clone();
        let shared = shared.clone();
        let cfg_arrivals = cfg.arrivals;
        let queries = cfg.queries;
        let max_in_flight = cfg.max_in_flight.max(1);
        let seed = cfg.seed;
        let mut make_cmd = make_cmd;
        let rt = client.runtime().clone();
        rt.clone().spawn(async move {
            let mut rng = SmallRng::seed_from_u64(seed);
            // Absolute arrival deadlines, as in the single-group
            // harness: each advances by the sampled gap from the
            // previous *deadline*, so pacer work never dilutes the
            // offered rate.
            let mut next_arrival = Instant::now();
            for i in 0..queries {
                let outstanding = shared.in_flight.load(Ordering::Relaxed);
                if outstanding >= max_in_flight {
                    shared.dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.in_flight.fetch_add(1, Ordering::Relaxed);
                    shared
                        .peak_in_flight
                        .fetch_max(outstanding + 1, Ordering::Relaxed);
                    shared.dispatched.fetch_add(1, Ordering::Relaxed);
                    // Latency clock starts at admission (coordinated
                    // omission, as in Cluster::run_load). execute_all
                    // dispatches every leg eagerly right here.
                    let t0 = Instant::now();
                    let cmd = make_cmd(i);
                    let fut = client.execute_all(move |_shard| cmd.clone());
                    let shared = shared.clone();
                    rt.spawn(async move {
                        let reply = fut.await;
                        if reply.ok_legs() > 0 {
                            let ms = t0.elapsed().as_secs_f64() * 1e3;
                            shared.aggregate_ms.lock().unwrap().record(ms);
                            {
                                let mut leg_ms = shared.leg_ms.lock().unwrap();
                                let mut by_shard = shared.leg_ms_by_shard.lock().unwrap();
                                for leg in reply.legs.iter().filter(|l| l.result.is_ok()) {
                                    leg_ms.record(leg.ms);
                                    by_shard[leg.shard].record(leg.ms);
                                }
                            }
                            shared.completed.fetch_add(1, Ordering::Relaxed);
                            if reply.failed_legs() > 0 {
                                shared.degraded.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            shared.failed.fetch_add(1, Ordering::Relaxed);
                        }
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                shared.offered.fetch_add(1, Ordering::Relaxed);
                let gap = cfg_arrivals.gap_after_us(i, &mut rng);
                if gap > 0 {
                    next_arrival += Duration::from_micros(gap);
                    rt.sleep_until(next_arrival).await;
                }
            }
        })
    };

    // The calling thread applies the sickness script by offered count
    // (it holds the &cluster borrow; the pacer task must be 'static).
    let mut script: Vec<FanoutSickness> = cfg.script.clone();
    script.sort_by_key(|e| e.at_query);
    let mut next_event = 0;
    let poll = Duration::from_micros(200);
    loop {
        let offered = shared.offered.load(Ordering::Relaxed) as usize;
        while next_event < script.len() && script[next_event].at_query <= offered {
            let e = script[next_event];
            cluster.set_nanos_per_op(e.shard, e.replica, e.nanos_per_op);
            next_event += 1;
        }
        if offered >= cfg.queries {
            break;
        }
        std::thread::sleep(poll);
    }
    client.runtime().block_on(pacer);
    // Drain: every leg resolves with a reply or an error, so every
    // dispatched fan-out resolves as completed or failed.
    loop {
        let done = shared.completed.load(Ordering::Relaxed) + shared.failed.load(Ordering::Relaxed);
        if done >= shared.dispatched.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let aggregate_ms = shared.aggregate_ms.lock().unwrap().clone();
    let leg_ms = shared.leg_ms.lock().unwrap().clone();
    let leg_ms_by_shard = shared.leg_ms_by_shard.lock().unwrap().clone();
    FanoutLoadReport {
        dispatched: shared.dispatched.load(Ordering::Relaxed),
        dropped: shared.dropped.load(Ordering::Relaxed),
        completed: shared.completed.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
        degraded: shared.degraded.load(Ordering::Relaxed),
        peak_in_flight: shared.peak_in_flight.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        aggregate_ms,
        leg_ms,
        leg_ms_by_shard,
    }
}
