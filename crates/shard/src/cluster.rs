//! A sharded cluster: one replica group ([`hedge::harness::Cluster`])
//! per shard, under one handle.
//!
//! Shard `s` is served by `replicas_per_shard` identical replicas of
//! `backends[s]` — so the unit of hedging stays the replica group
//! (reissue a *replica*, never a different shard: shards hold different
//! data) while the unit of request fan-out is the whole cluster.

use hedge::harness::Cluster;
use hedge::TcpServer;
use kvstore::{Backend, KvStore};

use std::net::SocketAddr;

/// `N` shard groups × `R` replicas, each group a [`Cluster`] of
/// identical snapshots of that shard's backend. Dropping the handle
/// shuts every replica of every shard down.
pub struct ShardedCluster<B: Backend = KvStore> {
    groups: Vec<Cluster<B>>,
    replicas_per_shard: usize,
}

impl<B: Backend> ShardedCluster<B> {
    /// Spins up one `replicas_per_shard`-replica group per backend in
    /// `backends`, every replica burning `nanos_per_op` wall-clock
    /// nanoseconds per unit of store cost.
    ///
    /// # Panics
    /// Panics when `backends` is empty or `replicas_per_shard == 0`.
    pub fn spawn(
        backends: Vec<B>,
        replicas_per_shard: usize,
        nanos_per_op: u64,
    ) -> std::io::Result<ShardedCluster<B>>
    where
        B: Clone,
    {
        assert!(!backends.is_empty(), "a sharded cluster needs >= 1 shard");
        assert!(replicas_per_shard > 0, "each shard needs >= 1 replica");
        let groups = backends
            .iter()
            .map(|b| Cluster::spawn(replicas_per_shard, b, nanos_per_op))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ShardedCluster {
            groups,
            replicas_per_shard,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.groups.len()
    }

    /// Replicas serving each shard.
    pub fn replicas_per_shard(&self) -> usize {
        self.replicas_per_shard
    }

    /// Shard `s`'s replica group.
    pub fn group(&self, s: usize) -> &Cluster<B> {
        &self.groups[s]
    }

    /// Shard `s`'s replica addresses, in replica-index order.
    pub fn group_addrs(&self, s: usize) -> Vec<SocketAddr> {
        self.groups[s].addrs()
    }

    /// Direct access to one replica's server.
    pub fn server(&self, shard: usize, replica: usize) -> &TcpServer<B> {
        self.groups[shard].server(replica)
    }

    /// Changes one replica's service burn while it serves (sicken /
    /// heal) — the fan-out experiments slow a single replica of a
    /// single shard and watch per-shard hedging absorb it.
    pub fn set_nanos_per_op(&self, shard: usize, replica: usize, nanos_per_op: u64) {
        self.groups[shard].set_nanos_per_op(replica, nanos_per_op);
    }

    /// Restores every replica of every shard to its spawn-time burn.
    pub fn heal_all(&self) {
        for g in &self.groups {
            g.heal_all();
        }
    }

    /// Total commands executed across all replicas of all shards.
    pub fn total_commands(&self) -> u64 {
        self.groups.iter().map(|g| g.total_commands()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::Command;

    #[test]
    fn spawns_distinct_groups_with_distinct_data() {
        let backends: Vec<KvStore> = (0..3)
            .map(|s| {
                let mut store = KvStore::new();
                store.execute(&Command::Set("shard".into(), format!("s{s}").into()));
                store
            })
            .collect();
        let cluster = ShardedCluster::spawn(backends, 2, 0).unwrap();
        assert_eq!(cluster.shards(), 3);
        assert_eq!(cluster.replicas_per_shard(), 2);
        for s in 0..3 {
            assert_eq!(cluster.group_addrs(s).len(), 2);
            let got = cluster.server(s, 0).with_store(|store| {
                let (reply, _) = store.execute(&Command::Get("shard".into()));
                reply
            });
            assert_eq!(got, kvstore::Reply::Str(format!("s{s}").into()));
        }
    }
}
