//! Sharded keyspace + scatter-gather fan-out with per-shard hedging —
//! the tail-at-scale layer of the reproduction.
//!
//! The paper's system experiments (§6) hedge against a *single*
//! replica group. Real services shard: a request fans out to `N`
//! partitions and completes when the slowest leg does, so a per-leg
//! P99 compounds to an aggregate tail of `1 − 0.99^N` (63% of requests
//! at `N = 100`). This crate supplies the pieces that regime needs:
//!
//! * [`Keyspace`] — deterministic FNV-1a hash partitioning of keys
//!   over `N` shards;
//! * [`ShardedCluster`] — `N` shard groups × `R` replicas, each group
//!   a [`hedge::harness::Cluster`] of one shard backend (a
//!   `kvstore::KvStore` partition, a `searchengine` BM25 index shard —
//!   anything implementing `kvstore::Backend`);
//! * [`FanoutClient`] — the scatter-gather aggregator: one
//!   `HedgedClient` per shard group, dispatched eagerly and gathered
//!   with a top-k merge for search traffic. Hedging runs **per shard**
//!   (stragglers are local: each group has its own health and its own
//!   queries of death) under one **shared cross-shard
//!   [`hedge::BudgetGovernor`]** (extra load is global: `N` locally
//!   entitled legs would burst to `N×` the budget exactly when every
//!   shard slows at once);
//! * [`run_fanout_load`] — the open-loop fan-out load harness with
//!   bounded admission, exact completion accounting, aggregate-vs-leg
//!   latency histograms, and `(shard, replica)` sickness scripting;
//! * [`StripedGroup`] — the erasure-coded variant of one shard's
//!   replica group: `n` servers holding one stripe slot each (data
//!   fragments + parity clones) instead of `n` full copies, read
//!   through `erasure::StripedClient`'s k-of-n fragment race.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod fanout;
pub mod load;
pub mod partition;
pub mod striped;

pub use cluster::ShardedCluster;
pub use fanout::{FanoutClient, FanoutConfig, FanoutReply, LegReply};
pub use load::{run_fanout_load, FanoutLoadConfig, FanoutLoadReport, FanoutSickness};
pub use partition::{fnv1a, Keyspace};
pub use striped::StripedGroup;
