//! Service-time distributions and deterministic RNG streams for the
//! reissue-policy reproduction.
//!
//! The paper's workloads draw service times from Pareto(1.1, 2.0),
//! LogNormal(1, 1) and Exponential(0.1) distributions, correlate the
//! reissue service time with the primary via `Y = r·x + Z`, and estimate
//! distributions empirically from response-time logs. This crate
//! implements all of those as small, deterministic, allocation-free
//! samplers:
//!
//! * [`Pareto`], [`LogNormal`], [`Exponential`], [`Weibull`],
//!   [`Uniform`], [`Deterministic`] — analytic distributions implementing
//!   both [`Sample`] and [`Cdf`];
//! * [`CorrelatedPair`] — the paper's `Y = r·x + Z` generator (§5.1);
//! * [`Empirical`] — a resampling distribution built from a trace;
//! * [`Shifted`] / [`Scaled`] — combinators for calibration;
//! * [`rng`] — seeded [`rand::rngs::SmallRng`] streams with splitmix-based
//!   sub-stream derivation so every simulation component gets an
//!   independent, reproducible stream.
//!
//! Everything is pure computation: given the same seed, every sampler
//! yields the same sequence on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod math;
pub mod rng;

mod analytic;
mod correlated;
mod empirical;

pub use analytic::{Deterministic, Exponential, LogNormal, Pareto, Uniform, Weibull};
pub use correlated::{pearson, CorrelatedPair};
pub use empirical::Empirical;

use rand::rngs::SmallRng;

/// Types that can draw samples given an RNG.
pub trait Sample {
    /// Draws one sample.
    fn sample(&self, rng: &mut SmallRng) -> f64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut SmallRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Types with a cumulative distribution function.
pub trait Cdf {
    /// `Pr(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// `Pr(X > x)`, the survival function.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// Full analytic distributions: sampleable with known CDF, quantile
/// function and mean.
pub trait Dist: Sample + Cdf {
    /// The quantile function (inverse CDF) evaluated at `p ∈ [0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// The distribution mean (may be `f64::INFINITY`, e.g. Pareto with
    /// shape ≤ 1).
    fn mean(&self) -> f64;
}

/// A distribution shifted right by `offset`.
#[derive(Clone, Copy, Debug)]
pub struct Shifted<D> {
    /// Inner distribution.
    pub inner: D,
    /// Additive offset applied to samples.
    pub offset: f64,
}

impl<D: Sample> Sample for Shifted<D> {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.inner.sample(rng) + self.offset
    }
}

impl<D: Cdf> Cdf for Shifted<D> {
    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x - self.offset)
    }
}

impl<D: Dist> Dist for Shifted<D> {
    fn quantile(&self, p: f64) -> f64 {
        self.inner.quantile(p) + self.offset
    }
    fn mean(&self) -> f64 {
        self.inner.mean() + self.offset
    }
}

/// A distribution scaled by a positive `factor`.
#[derive(Clone, Copy, Debug)]
pub struct Scaled<D> {
    /// Inner distribution.
    pub inner: D,
    /// Multiplicative factor applied to samples (must be positive).
    pub factor: f64,
}

impl<D: Sample> Sample for Scaled<D> {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.inner.sample(rng) * self.factor
    }
}

impl<D: Cdf> Cdf for Scaled<D> {
    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x / self.factor)
    }
}

impl<D: Dist> Dist for Scaled<D> {
    fn quantile(&self, p: f64) -> f64 {
        self.inner.quantile(p) * self.factor
    }
    fn mean(&self) -> f64 {
        self.inner.mean() * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn shifted_scaled_roundtrip() {
        let d = Shifted {
            inner: Scaled {
                inner: Exponential::new(1.0),
                factor: 2.0,
            },
            offset: 5.0,
        };
        assert!((d.mean() - 7.0).abs() < 1e-12);
        assert!((d.quantile(d.cdf(9.0)) - 9.0).abs() < 1e-9);
        let mut r = seeded(1);
        let mean: f64 = d.sample_n(&mut r, 20_000).iter().sum::<f64>() / 20_000.0;
        assert!((mean - 7.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn sample_n_length() {
        let mut r = seeded(2);
        assert_eq!(Uniform::new(0.0, 1.0).sample_n(&mut r, 17).len(), 17);
    }
}
