//! Empirical (trace-backed) distribution.

use crate::{Cdf, Dist, Sample};
use rand::rngs::SmallRng;
use rand::Rng;

/// A distribution backed by observed samples.
///
/// Sampling draws uniformly from the trace (bootstrap resampling); the
/// CDF is the empirical CDF. This is how measured engine service times
/// (Redis set-intersection costs, Lucene search costs) are fed into the
/// cluster simulator, and how `ComputeOptimalSingleR`'s inputs are
/// modelled when treated as distributions.
///
/// The CDF here uses the *weak* inequality `Pr(X ≤ x)` as is
/// conventional; the paper's `DiscreteCDF` (strict `<`) lives in
/// `reissue-core`'s `Ecdf` where the optimizer needs it.
#[derive(Clone, Debug)]
pub struct Empirical {
    sorted: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// Builds an empirical distribution from samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Empirical needs at least one sample");
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "Empirical samples must not contain NaN"
        );
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Empirical {
            sorted: samples,
            mean,
        }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted underlying samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let var = self
            .sorted
            .iter()
            .map(|v| (v - self.mean) * (v - self.mean))
            .sum::<f64>()
            / (self.sorted.len() - 1) as f64;
        var.sqrt()
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.sorted[rng.gen_range(0..self.sorted.len())]
    }
}

impl Cdf for Empirical {
    fn cdf(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }
}

impl Dist for Empirical {
    /// Nearest-rank quantile.
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        let n = self.sorted.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[rank]
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use proptest::prelude::*;

    #[test]
    fn basic_stats() {
        let e = Empirical::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert!((e.mean() - 2.5).abs() < 1e-12);
        assert_eq!(e.samples(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn cdf_is_weak_inequality() {
        let e = Empirical::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(2.0), 0.75); // counts both 2.0s
        assert_eq!(e.cdf(3.0), 1.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let e = Empirical::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.95), 95.0);
        assert_eq!(e.quantile(0.99), 99.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn sampling_stays_in_support() {
        let e = Empirical::new(vec![5.0, 7.0, 7.5]);
        let mut rng = seeded(3);
        for _ in 0..1000 {
            let v = e.sample(&mut rng);
            assert!(v == 5.0 || v == 7.0 || v == 7.5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_panics() {
        let _ = Empirical::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = Empirical::new(vec![1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn quantile_cdf_consistency(
            vals in proptest::collection::vec(-1e3f64..1e3, 1..200),
            p in 0.01f64..1.0,
        ) {
            let e = Empirical::new(vals);
            let q = e.quantile(p);
            // At least p of the mass is ≤ q.
            prop_assert!(e.cdf(q) + 1e-12 >= p);
        }

        #[test]
        fn std_nonnegative(vals in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let e = Empirical::new(vals);
            prop_assert!(e.std() >= 0.0);
        }
    }
}
