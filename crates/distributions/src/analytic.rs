//! Analytic distributions: Pareto, LogNormal, Exponential, Weibull,
//! Uniform and Deterministic.

use crate::math::{gamma, norm_cdf, norm_quantile};
use crate::{Cdf, Dist, Sample};
use rand::rngs::SmallRng;
use rand::Rng;

/// Draws `u ~ Uniform(0, 1)` avoiding exactly 0 and 1 so inverse-CDF
/// sampling never produces infinities.
fn open_unit(rng: &mut SmallRng) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

// ---------------------------------------------------------------------
// Pareto
// ---------------------------------------------------------------------

/// Pareto distribution with shape `alpha` and mode (scale) `x_m`.
///
/// The paper's simulated workloads use `Pareto(shape = 1.1, mode = 2.0)`
/// (§5.1) — an extremely heavy tail (infinite variance) that makes tail
/// latency dominated by rare huge service times.
///
/// `Pr(X ≤ x) = 1 − (x_m / x)^α` for `x ≥ x_m`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    shape: f64,
    mode: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics unless `shape > 0` and `mode > 0`.
    pub fn new(shape: f64, mode: f64) -> Self {
        assert!(shape > 0.0 && mode > 0.0, "Pareto needs shape>0, mode>0");
        Pareto { shape, mode }
    }

    /// The paper's default service-time distribution, Pareto(1.1, 2.0).
    pub fn paper_default() -> Self {
        Pareto::new(1.1, 2.0)
    }

    /// Shape parameter α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Mode (minimum value / scale).
    pub fn mode(&self) -> f64 {
        self.mode
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.quantile(open_unit(rng))
    }
}

impl Cdf for Pareto {
    fn cdf(&self, x: f64) -> f64 {
        if x < self.mode {
            0.0
        } else {
            1.0 - (self.mode / x).powf(self.shape)
        }
    }
}

impl Dist for Pareto {
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        if p >= 1.0 {
            return f64::INFINITY;
        }
        self.mode * (1.0 - p).powf(-1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.mode / (self.shape - 1.0)
        }
    }
}

// ---------------------------------------------------------------------
// LogNormal
// ---------------------------------------------------------------------

/// Log-normal distribution: `ln X ~ Normal(mu, sigma²)`.
///
/// The paper's sensitivity study uses `LogNormal(1, 1)` (§5.4).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-mean `mu` and
    /// log-standard-deviation `sigma`.
    ///
    /// # Panics
    /// Panics unless `sigma > 0` and both parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma > 0.0 && mu.is_finite() && sigma.is_finite(),
            "LogNormal needs finite mu, sigma>0"
        );
        LogNormal { mu, sigma }
    }

    /// Log-mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-standard-deviation parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// A log-normal with the given (linear) mean and standard deviation —
    /// handy for calibrating synthetic workloads to measured moments.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `std > 0`.
    pub fn from_mean_std(mean: f64, std: f64) -> Self {
        assert!(mean > 0.0 && std > 0.0);
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        LogNormal::new(mean.ln() - sigma2 / 2.0, sigma2.sqrt())
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        // Box–Muller; one normal deviate per sample keeps the stream
        // deterministic regardless of call pattern.
        let u1 = open_unit(rng);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

impl Cdf for LogNormal {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            norm_cdf((x.ln() - self.mu) / self.sigma)
        }
    }
}

impl Dist for LogNormal {
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        (self.mu + self.sigma * norm_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

// ---------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// The paper's sensitivity study uses `Exp(0.1)` — mean 10 (§5.4).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Exponential needs rate>0");
        Exponential { rate }
    }

    /// Rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        -open_unit(rng).ln() / self.rate
    }
}

impl Cdf for Exponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }
}

impl Dist for Exponential {
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        if p >= 1.0 {
            return f64::INFINITY;
        }
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

// ---------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// Not used by the paper directly; provided because Weibull interpolates
/// between heavy- (k < 1) and light-tailed (k > 1) service times, which
/// the extended sensitivity benches exercise.
#[derive(Clone, Copy, Debug)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    /// Panics unless `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "Weibull needs shape>0, scale>0");
        Weibull { shape, scale }
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.scale * (-open_unit(rng).ln()).powf(1.0 / self.shape)
    }
}

impl Cdf for Weibull {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }
}

impl Dist for Weibull {
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        if p >= 1.0 {
            return f64::INFINITY;
        }
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

// ---------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform needs lo < hi");
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }
}

impl Cdf for Uniform {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }
}

impl Dist for Uniform {
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        self.lo + p * (self.hi - self.lo)
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

// ---------------------------------------------------------------------
// Deterministic
// ---------------------------------------------------------------------

/// A point mass at `value`; useful for tests and calibration probes.
#[derive(Clone, Copy, Debug)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    pub fn new(value: f64) -> Self {
        Deterministic { value }
    }
}

impl Sample for Deterministic {
    fn sample(&self, _rng: &mut SmallRng) -> f64 {
        self.value
    }
}

impl Cdf for Deterministic {
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }
}

impl Dist for Deterministic {
    fn quantile(&self, _p: f64) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn sample_mean<D: Sample>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = seeded(seed);
        d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64
    }

    /// Empirical CDF at analytic quantiles should be close to p.
    fn check_quantile_agreement<D: Dist>(d: &D, seed: u64) {
        let mut rng = seeded(seed);
        let mut xs = d.sample_n(&mut rng, 50_000);
        xs.sort_by(f64::total_cmp);
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let q = d.quantile(p);
            let emp = xs.partition_point(|&x| x <= q) as f64 / xs.len() as f64;
            assert!((emp - p).abs() < 0.01, "p={p} q={q} emp={emp}");
        }
    }

    #[test]
    fn pareto_basic() {
        let d = Pareto::paper_default();
        assert_eq!(d.cdf(1.0), 0.0); // below mode
        assert_eq!(d.cdf(2.0), 0.0); // at the mode, P(X <= mode) = 0 for continuous
        assert!((d.mean() - 22.0).abs() < 1e-9); // 1.1*2/0.1
        assert!((d.cdf(d.quantile(0.95)) - 0.95).abs() < 1e-12);
        assert_eq!(d.quantile(1.0), f64::INFINITY);
        check_quantile_agreement(&d, 101);
    }

    #[test]
    fn pareto_infinite_mean_when_shape_le_1() {
        assert_eq!(Pareto::new(1.0, 2.0).mean(), f64::INFINITY);
        assert_eq!(Pareto::new(0.5, 2.0).mean(), f64::INFINITY);
    }

    #[test]
    #[should_panic]
    fn pareto_bad_params() {
        let _ = Pareto::new(0.0, 1.0);
    }

    #[test]
    fn lognormal_basic() {
        let d = LogNormal::new(1.0, 1.0);
        let analytic_mean = (1.0f64 + 0.5).exp();
        assert!((d.mean() - analytic_mean).abs() < 1e-9);
        assert!((d.cdf(d.quantile(0.5)) - 0.5).abs() < 1e-7);
        // Median of lognormal is exp(mu).
        assert!((d.quantile(0.5) - 1.0f64.exp()).abs() < 1e-6);
        check_quantile_agreement(&d, 102);
        let m = sample_mean(&d, 200_000, 103);
        assert!((m - analytic_mean).abs() / analytic_mean < 0.05, "m={m}");
    }

    #[test]
    fn lognormal_from_mean_std() {
        let d = LogNormal::from_mean_std(39.73, 21.88);
        assert!((d.mean() - 39.73).abs() < 1e-6);
        // Verify the implied std via moments: var = (e^{σ²}−1)e^{2μ+σ²}.
        let var =
            ((d.sigma() * d.sigma()).exp() - 1.0) * (2.0 * d.mu() + d.sigma() * d.sigma()).exp();
        assert!((var.sqrt() - 21.88).abs() < 1e-6);
    }

    #[test]
    fn exponential_basic() {
        let d = Exponential::new(0.1);
        assert!((d.mean() - 10.0).abs() < 1e-12);
        assert!((d.cdf(10.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!((d.quantile(0.95) - 10.0 * (20.0f64).ln()).abs() < 1e-9);
        check_quantile_agreement(&d, 104);
        let m = sample_mean(&d, 100_000, 105);
        assert!((m - 10.0).abs() < 0.3, "m={m}");
    }

    #[test]
    fn weibull_basic() {
        // k=1 reduces to Exponential(1/scale).
        let w = Weibull::new(1.0, 5.0);
        let e = Exponential::new(0.2);
        for x in [0.5, 1.0, 5.0, 20.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12, "x={x}");
        }
        assert!((w.mean() - 5.0).abs() < 1e-9);
        check_quantile_agreement(&Weibull::new(0.7, 3.0), 106);
    }

    #[test]
    fn uniform_basic() {
        let d = Uniform::new(2.0, 6.0);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(7.0), 1.0);
        assert!((d.cdf(3.0) - 0.25).abs() < 1e-12);
        assert!((d.quantile(0.25) - 3.0).abs() < 1e-12);
        check_quantile_agreement(&d, 107);
    }

    #[test]
    fn deterministic_basic() {
        let d = Deterministic::new(3.5);
        let mut rng = seeded(1);
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.cdf(3.4), 0.0);
        assert_eq!(d.cdf(3.5), 1.0);
        assert_eq!(d.mean(), 3.5);
        assert_eq!(d.quantile(0.37), 3.5);
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = seeded(9);
        for v in Pareto::paper_default().sample_n(&mut rng, 1000) {
            assert!(v >= 2.0);
        }
        for v in LogNormal::new(1.0, 1.0).sample_n(&mut rng, 1000) {
            assert!(v > 0.0);
        }
        for v in Exponential::new(0.1).sample_n(&mut rng, 1000) {
            assert!(v > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        let _ = Exponential::new(1.0).quantile(1.5);
    }
}
