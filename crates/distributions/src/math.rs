//! Special functions needed by the analytic distributions.
//!
//! Implemented from standard rational approximations so the crate stays
//! dependency-free: `erf` (Abramowitz & Stegun 7.1.26), the inverse
//! standard-normal CDF (Acklam's algorithm) and `ln Γ` (Lanczos).

/// Error function, absolute error ≤ 1.5e−7 (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e−9 over (0, 1)).
///
/// Returns `-INFINITY` at 0 and `INFINITY` at 1; NaN outside `[0, 1]`.
pub fn norm_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley refinement against our norm_cdf sharpens the
    // approximation and keeps cdf/quantile mutually consistent.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Gamma function `Γ(x)` for moderate arguments.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(5.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_cdf_symmetry() {
        for x in [0.1, 0.5, 1.0, 2.0, 3.0] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-9, "x={x}");
        }
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((norm_cdf(1.959963985) - 0.975).abs() < 1e-6);
    }

    #[test]
    fn norm_quantile_roundtrip() {
        for p in [0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let x = norm_quantile(p);
            assert!((norm_cdf(x) - p).abs() < 1e-7, "p={p} x={x}");
        }
    }

    #[test]
    fn norm_quantile_edges() {
        assert_eq!(norm_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(norm_quantile(1.0), f64::INFINITY);
        assert!(norm_quantile(-0.1).is_nan());
        assert!(norm_quantile(1.1).is_nan());
        assert!(norm_quantile(f64::NAN).is_nan());
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..10 {
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-9, "n={n}");
            fact *= n as f64;
        }
    }

    #[test]
    fn gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        // Γ(3/2) = sqrt(pi)/2
        assert!((gamma(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-9);
    }
}
