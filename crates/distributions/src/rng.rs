//! Deterministic, splittable RNG streams.
//!
//! Every stochastic component of the reproduction (arrival process,
//! service-time sampler, load balancer, reissue coin flips, …) takes its
//! own [`SmallRng`] stream derived from a root seed with [`stream`].
//! Using independent derived streams — rather than sharing one RNG —
//! makes experiments insensitive to incidental changes in the *order* in
//! which components consume randomness, which keeps A/B comparisons
//! (e.g. SingleR vs SingleD on the same workload) paired and
//! reproducible.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// splitmix64 step; used to whiten seeds and derive sub-streams.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A `SmallRng` seeded deterministically from `seed`.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// An independent sub-stream `stream_id` of the root `seed`.
///
/// Streams with different `(seed, stream_id)` pairs are statistically
/// independent for simulation purposes.
pub fn stream(seed: u64, stream_id: u64) -> SmallRng {
    let mut s = seed ^ 0xA076_1D64_78BD_642F;
    let a = splitmix64(&mut s);
    let mut s2 = stream_id ^ 0xE703_7ED1_A0B4_28DB;
    let b = splitmix64(&mut s2);
    SmallRng::seed_from_u64(a ^ b.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u64> = (0..10).map(|_| 0).collect::<Vec<_>>();
        let _ = a;
        let mut r1 = seeded(42);
        let mut r2 = seeded(42);
        for _ in 0..100 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = seeded(1);
        let mut r2 = seeded(2);
        let v1: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        let v2: Vec<u64> = (0..8).map(|_| r2.gen()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn streams_are_independent_of_each_other() {
        let mut a = stream(7, 0);
        let mut b = stream(7, 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
        // Same (seed, id) reproduces.
        let mut a2 = stream(7, 0);
        let va2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        assert_eq!(va, va2);
    }

    #[test]
    fn splitmix_is_stateful() {
        let mut s = 0u64;
        let x = splitmix64(&mut s);
        let y = splitmix64(&mut s);
        assert_ne!(x, y);
    }
}
