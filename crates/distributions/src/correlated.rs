//! The paper's correlated primary/reissue service-time generator.

use crate::{Cdf, Sample};
use rand::rngs::SmallRng;

/// Generates correlated (primary, reissue) service-time pairs using the
/// paper's model (§5.1):
///
/// ```text
/// X ~ D                 (primary service time)
/// Y = r·x + Z,  Z ~ D   (reissue service time, Z independent)
/// ```
///
/// `r = 0` gives independent service times; larger `r` strengthens the
/// positive correlation. Note `E[Y] = (1 + r)·E[X]`, matching the
/// paper's construction (the reissue is *slower* on average when `r > 0`,
/// which is exactly why reissuing earlier pays off on correlated
/// workloads).
#[derive(Clone, Copy, Debug)]
pub struct CorrelatedPair<D> {
    base: D,
    r: f64,
}

impl<D: Sample> CorrelatedPair<D> {
    /// Creates a generator with base distribution `base` and linear
    /// correlation ratio `r ∈ [0, ∞)`.
    ///
    /// # Panics
    /// Panics if `r` is negative or non-finite.
    pub fn new(base: D, r: f64) -> Self {
        assert!(r >= 0.0 && r.is_finite(), "correlation ratio must be ≥ 0");
        CorrelatedPair { base, r }
    }

    /// The correlation ratio `r`.
    pub fn ratio(&self) -> f64 {
        self.r
    }

    /// The base distribution.
    pub fn base(&self) -> &D {
        &self.base
    }

    /// Draws a primary service time `x`.
    pub fn sample_primary(&self, rng: &mut SmallRng) -> f64 {
        self.base.sample(rng)
    }

    /// Draws a reissue service time conditioned on the primary's `x`.
    pub fn sample_reissue(&self, primary: f64, rng: &mut SmallRng) -> f64 {
        self.r * primary + self.base.sample(rng)
    }

    /// Draws a correlated `(x, y)` pair.
    pub fn sample_pair(&self, rng: &mut SmallRng) -> (f64, f64) {
        let x = self.sample_primary(rng);
        let y = self.sample_reissue(x, rng);
        (x, y)
    }
}

impl<D: Cdf> CorrelatedPair<D> {
    /// CDF of the primary service time (the base distribution).
    pub fn primary_cdf(&self, x: f64) -> f64 {
        self.base.cdf(x)
    }
}

/// Pearson correlation coefficient of a sample of pairs; `None` when
/// either marginal is degenerate (zero variance) or fewer than 2 pairs.
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for &(x, y) in pairs {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        None
    } else {
        Some(sxy / (sxx * syy).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::{Exponential, LogNormal};

    #[test]
    fn zero_ratio_is_independent() {
        let g = CorrelatedPair::new(Exponential::new(1.0), 0.0);
        let mut rng = seeded(5);
        let pairs: Vec<(f64, f64)> = (0..30_000).map(|_| g.sample_pair(&mut rng)).collect();
        let rho = pearson(&pairs).unwrap();
        assert!(rho.abs() < 0.03, "rho={rho}");
    }

    #[test]
    fn positive_ratio_positively_correlates() {
        // Use a light-tailed base so the Pearson estimate is stable.
        let g = CorrelatedPair::new(LogNormal::new(0.0, 0.5), 0.5);
        let mut rng = seeded(6);
        let pairs: Vec<(f64, f64)> = (0..30_000).map(|_| g.sample_pair(&mut rng)).collect();
        let rho = pearson(&pairs).unwrap();
        assert!(rho > 0.3, "rho={rho}");

        // Stronger ratio → stronger correlation.
        let g2 = CorrelatedPair::new(LogNormal::new(0.0, 0.5), 2.0);
        let mut rng = seeded(6);
        let pairs2: Vec<(f64, f64)> = (0..30_000).map(|_| g2.sample_pair(&mut rng)).collect();
        assert!(pearson(&pairs2).unwrap() > rho);
    }

    #[test]
    fn reissue_mean_scales_with_ratio() {
        let g = CorrelatedPair::new(Exponential::new(1.0), 0.5);
        let mut rng = seeded(7);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let (_, y) = g.sample_pair(&mut rng);
            sum += y;
        }
        let mean_y = sum / n as f64;
        // E[Y] = (1 + r) * E[X] = 1.5
        assert!((mean_y - 1.5).abs() < 0.05, "mean_y={mean_y}");
    }

    #[test]
    fn sample_reissue_uses_given_primary() {
        let g = CorrelatedPair::new(crate::Deterministic::new(3.0), 1.0);
        let mut rng = seeded(8);
        // y = 1.0 * 10.0 + 3.0
        assert_eq!(g.sample_reissue(10.0, &mut rng), 13.0);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[]), None);
        assert_eq!(pearson(&[(1.0, 2.0)]), None);
        assert_eq!(pearson(&[(1.0, 2.0), (1.0, 3.0)]), None); // zero x-variance
        let perfect = [(0.0, 0.0), (1.0, 2.0), (2.0, 4.0)];
        assert!((pearson(&perfect).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn negative_ratio_panics() {
        let _ = CorrelatedPair::new(Exponential::new(1.0), -0.1);
    }
}
