//! A Lucene-like in-memory full-text search engine.
//!
//! The reproduction's stand-in for the Lucene server of §6.3 of
//! *Optimal Reissue Policies for Reducing Tail Latency*:
//!
//! * [`tokenize`] — a lowercase alphanumeric tokenizer and a string ↔
//!   term-id [`Vocabulary`];
//! * [`InvertedIndex`] — term → postings (doc id, term frequency) with
//!   document lengths, built incrementally by an [`IndexBuilder`];
//! * [`bm25`] — BM25-ranked top-k retrieval, instrumented with the
//!   number of postings scanned (the deterministic service-cost model);
//! * [`corpus`] — a synthetic Zipf-vocabulary corpus standing in for
//!   the 33 M-article English Wikipedia dump the paper indexes;
//! * [`workload`] — a query log generator calibrated to the paper's
//!   measured service-time distribution (µ_L ≈ 39.7 ms, σ_L ≈ 21.9 ms,
//!   ~1 % of queries above 100 ms), plus the shared sharded fan-out
//!   workload ([`ShardedQueryWorkload`]);
//! * [`backend`] — the engine as a servable [`kvstore::Backend`]
//!   ([`SearchBackend`]), so `hedge::TcpServer` fronts BM25 index
//!   shards for the scatter-gather fan-out experiments.
//!
//! The paper's Lucene observation is that a single global FIFO over a
//! moderate-mean, light-tailed service distribution already yields good
//! tails, so reissue gains are smaller than for Redis but still
//! 15–25 % at P99. The corpus/query generators target exactly that
//! distributional regime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bm25;
pub mod corpus;
pub mod tokenize;
pub mod workload;

mod index;

pub use backend::SearchBackend;
pub use bm25::{search, SearchHit};
pub use corpus::{Corpus, CorpusConfig};
pub use index::{IndexBuilder, InvertedIndex, Posting};
pub use tokenize::Vocabulary;
pub use workload::{QueryTrace, QueryWorkloadConfig, ShardedQueryWorkload};
