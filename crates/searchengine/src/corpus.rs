//! Synthetic Zipf-vocabulary corpus generation.
//!
//! The paper indexes 33 M English Wikipedia articles — data we do not
//! ship. What its evaluation actually depends on is the *shape* of the
//! query service-time distribution that index induces (µ ≈ 40 ms,
//! σ ≈ 22 ms, ~1 % of queries above 100 ms, light tail). Natural
//! language term frequencies are famously Zipfian, and BM25 query cost
//! is dominated by postings-list lengths ∝ term frequency, so a
//! Zipf-vocabulary corpus reproduces that shape with any desired scale.

use distributions::rng::stream;
use distributions::{LogNormal, Sample};
use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf(s) sampler over ranks `0..n` via inverse-CDF table lookup.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler; `O(n)` table.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs n > 0");
        assert!(s >= 0.0, "Zipf exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the rank space is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most frequent).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Corpus generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf exponent of term frequencies (English text ≈ 1.05–1.1).
    pub zipf_s: f64,
    /// Mean document length in tokens (log-normal lengths).
    pub mean_doc_len: f64,
    /// Log-normal sigma of document length.
    pub doc_len_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_docs: 40_000,
            vocab: 50_000,
            zipf_s: 1.07,
            mean_doc_len: 120.0,
            doc_len_sigma: 0.6,
            seed: 0x1cefe,
        }
    }
}

impl CorpusConfig {
    /// A tiny configuration for tests.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            num_docs: 500,
            vocab: 2_000,
            zipf_s: 1.07,
            mean_doc_len: 40.0,
            doc_len_sigma: 0.5,
            seed,
        }
    }
}

/// A generated corpus: documents as term-id sequences.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// Documents; term ids are dense in `0..config.vocab`, with id
    /// order = frequency rank (0 most common).
    pub docs: Vec<Vec<u32>>,
    config: CorpusConfig,
}

impl Corpus {
    /// Generates a corpus deterministically.
    pub fn generate(config: CorpusConfig) -> Self {
        assert!(config.num_docs > 0 && config.vocab > 0);
        let zipf = Zipf::new(config.vocab, config.zipf_s);
        let len_dist = LogNormal::from_mean_std(
            config.mean_doc_len,
            config.mean_doc_len * config.doc_len_sigma,
        );
        let mut rng_len = stream(config.seed, 10);
        let mut rng_term = stream(config.seed, 11);
        let docs = (0..config.num_docs)
            .map(|_| {
                let len = (len_dist.sample(&mut rng_len) as usize).clamp(1, 10_000);
                (0..len)
                    .map(|_| zipf.sample(&mut rng_term) as u32)
                    .collect()
            })
            .collect();
        Corpus { docs, config }
    }

    /// The generation parameters.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Builds the inverted index over all documents.
    pub fn build_index(&self) -> crate::index::InvertedIndex {
        let mut b = crate::index::IndexBuilder::new();
        for d in &self.docs {
            b.add_doc(d);
        }
        b.build()
    }

    /// Total token count.
    pub fn total_tokens(&self) -> usize {
        self.docs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;

    #[test]
    fn zipf_head_dominates() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = seeded(1);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.1 the top-10 ranks carry a large share of the mass.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3, "frac={frac}");
        // PMF is decreasing in rank.
        assert!(z.pmf(0) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(100, 0.0);
        for r in [0, 50, 99] {
            assert!((z.pmf(r) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 1.0);
        let mut rng = seeded(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::generate(CorpusConfig::small(3));
        let b = Corpus::generate(CorpusConfig::small(3));
        assert_eq!(a.docs, b.docs);
    }

    #[test]
    fn corpus_term_ids_in_vocab() {
        let c = Corpus::generate(CorpusConfig::small(4));
        for d in &c.docs {
            assert!(!d.is_empty());
            for &t in d {
                assert!((t as usize) < 2_000);
            }
        }
    }

    #[test]
    fn corpus_index_has_zipfian_df() {
        let c = Corpus::generate(CorpusConfig::small(5));
        let idx = c.build_index();
        // Term 0 (most frequent rank) appears in far more docs than a
        // mid-rank term.
        assert!(
            idx.df(0) > idx.df(500).max(1) * 3,
            "df0={} df500={}",
            idx.df(0),
            idx.df(500)
        );
    }

    #[test]
    fn doc_lengths_near_mean() {
        let c = Corpus::generate(CorpusConfig::small(6));
        let mean = c.total_tokens() as f64 / c.docs.len() as f64;
        assert!((mean - 40.0).abs() < 8.0, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zipf_zero_n_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
