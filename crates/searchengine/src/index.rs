//! The inverted index.

/// One postings entry: a document and the term's frequency in it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// Document id.
    pub doc: u32,
    /// Term frequency within the document.
    pub tf: u32,
}

/// An immutable inverted index over term-id documents.
///
/// Terms are dense `u32` ids (see [`crate::Vocabulary`] for the string
/// mapping); postings are sorted by document id. Built via
/// [`IndexBuilder`].
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    postings: Vec<Vec<Posting>>,
    doc_len: Vec<u32>,
    total_len: u64,
}

impl InvertedIndex {
    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Number of distinct terms (the dense id space size).
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Average document length in tokens.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_len.len() as f64
        }
    }

    /// Length of document `doc` in tokens.
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_len[doc as usize]
    }

    /// Document frequency of `term` (0 for out-of-range ids).
    pub fn df(&self, term: u32) -> usize {
        self.postings.get(term as usize).map_or(0, |p| p.len())
    }

    /// The postings list for `term` (empty for out-of-range ids).
    pub fn postings(&self, term: u32) -> &[Posting] {
        self.postings
            .get(term as usize)
            .map_or(&[], |p| p.as_slice())
    }
}

/// Incremental index builder.
#[derive(Clone, Debug, Default)]
pub struct IndexBuilder {
    postings: Vec<Vec<Posting>>,
    doc_len: Vec<u32>,
    total_len: u64,
    /// Per-term scratch: tf of the current doc (term → count), stored
    /// sparsely as (term, count) pairs to avoid a vocab-sized buffer.
    scratch: Vec<(u32, u32)>,
}

impl IndexBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document given as a term-id sequence; returns its doc id.
    pub fn add_doc(&mut self, terms: &[u32]) -> u32 {
        let doc = self.doc_len.len() as u32;
        self.doc_len.push(terms.len() as u32);
        self.total_len += terms.len() as u64;

        // Accumulate tf sparsely: sort a copy of the term ids.
        self.scratch.clear();
        let mut sorted: Vec<u32> = terms.to_vec();
        sorted.sort_unstable();
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == t {
                j += 1;
            }
            self.scratch.push((t, (j - i) as u32));
            i = j;
        }

        for &(t, tf) in &self.scratch {
            let t = t as usize;
            if t >= self.postings.len() {
                self.postings.resize_with(t + 1, Vec::new);
            }
            // doc ids arrive in increasing order, so lists stay sorted.
            self.postings[t].push(Posting { doc, tf });
        }
        doc
    }

    /// Finalizes the index.
    pub fn build(self) -> InvertedIndex {
        InvertedIndex {
            postings: self.postings,
            doc_len: self.doc_len,
            total_len: self.total_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_tiny_index() {
        let mut b = IndexBuilder::new();
        let d0 = b.add_doc(&[0, 1, 1, 2]);
        let d1 = b.add_doc(&[1, 3]);
        assert_eq!((d0, d1), (0, 1));
        let idx = b.build();
        assert_eq!(idx.num_docs(), 2);
        assert_eq!(idx.num_terms(), 4);
        assert_eq!(idx.doc_len(0), 4);
        assert_eq!(idx.doc_len(1), 2);
        assert!((idx.avg_doc_len() - 3.0).abs() < 1e-12);
        assert_eq!(idx.df(1), 2);
        assert_eq!(idx.df(3), 1);
        assert_eq!(idx.df(99), 0);
        assert_eq!(
            idx.postings(1),
            &[Posting { doc: 0, tf: 2 }, Posting { doc: 1, tf: 1 }]
        );
        assert!(idx.postings(42).is_empty());
    }

    #[test]
    fn postings_sorted_by_doc() {
        let mut b = IndexBuilder::new();
        for i in 0..50 {
            b.add_doc(&[i % 5, (i + 1) % 5]);
        }
        let idx = b.build();
        for t in 0..5 {
            let p = idx.postings(t);
            assert!(p.windows(2).all(|w| w[0].doc < w[1].doc), "term {t}");
        }
    }

    #[test]
    fn empty_doc_and_empty_index() {
        let mut b = IndexBuilder::new();
        b.add_doc(&[]);
        let idx = b.build();
        assert_eq!(idx.num_docs(), 1);
        assert_eq!(idx.doc_len(0), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);

        let empty = IndexBuilder::new().build();
        assert_eq!(empty.num_docs(), 0);
        assert_eq!(empty.avg_doc_len(), 0.0);
    }
}
