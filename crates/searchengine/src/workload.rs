//! The Lucene query workload (§6.3): a query log executed against the
//! index to obtain deterministic service costs.

use crate::bm25::search;
use crate::corpus::Zipf;
use crate::index::InvertedIndex;
use distributions::rng::stream;
use rand::Rng;

/// How query terms are drawn from the vocabulary rank space.
#[derive(Clone, Copy, Debug)]
pub enum TermRankDist {
    /// Zipf(s) over all ranks — matches corpus statistics but yields a
    /// very heavy query-cost tail (head terms have huge postings).
    Zipf(f64),
    /// Log-uniform over `[lo, hi)` — the regime real query logs live
    /// in: popular-but-not-stopword vocabulary. Produces the moderate
    /// spread (σ/µ ≈ 0.55) the paper measures for Lucene.
    LogUniform {
        /// Lowest (most popular) rank, inclusive.
        lo: usize,
        /// Highest rank, exclusive.
        hi: usize,
    },
}

/// Query workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct QueryWorkloadConfig {
    /// Number of queries in the log (the paper samples from a 10 000-
    /// query set).
    pub num_queries: usize,
    /// Terms per query, inclusive range (web queries: mostly 1–4).
    pub terms_min: usize,
    /// Maximum terms per query.
    pub terms_max: usize,
    /// Query term selection distribution.
    pub term_ranks: TermRankDist,
    /// Fixed per-query overhead in postings-scan units (query parsing,
    /// rewriting, result assembly — Lucene work that doesn't scale with
    /// postings). Compresses the cost coefficient of variation toward
    /// the paper's measured σ/µ ≈ 0.55.
    pub base_ops: u64,
    /// Results to retrieve per query.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            num_queries: 10_000,
            terms_min: 1,
            terms_max: 4,
            // Calibrated against the paper's measured Lucene stats:
            // σ_L ≈ 22 ms, ~1 % of queries above 100 ms, ~90 % of
            // queries between 1 and 70 ms.
            term_ranks: TermRankDist::LogUniform { lo: 10, hi: 25_000 },
            base_ops: 13_000,
            top_k: 10,
            seed: 0x10ce,
        }
    }
}

/// A generated query log with measured (deterministic) costs.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Queries as term-id lists.
    pub queries: Vec<Vec<u32>>,
    /// Service time of each query in milliseconds: the instrumented
    /// postings-scan count of a real BM25 execution, converted at a
    /// calibrated ns-per-posting rate.
    pub costs_ms: Vec<f64>,
}

impl QueryTrace {
    /// Generates queries and executes each against `index` to measure
    /// costs. `ns_per_posting` converts scanned postings to time.
    ///
    /// # Panics
    /// Panics on empty/invalid configuration.
    pub fn generate(
        index: &InvertedIndex,
        config: QueryWorkloadConfig,
        ns_per_posting: f64,
    ) -> Self {
        assert!(config.num_queries > 0);
        assert!(config.terms_min >= 1 && config.terms_min <= config.terms_max);
        assert!(ns_per_posting > 0.0);
        assert!(index.num_terms() > 0, "index must be non-empty");

        let n_terms = index.num_terms();
        let zipf = match config.term_ranks {
            TermRankDist::Zipf(s) => Some(Zipf::new(n_terms, s)),
            TermRankDist::LogUniform { .. } => None,
        };
        let mut rng = stream(config.seed, 20);
        let draw_rank = |rng: &mut rand::rngs::SmallRng| -> usize {
            match (&zipf, config.term_ranks) {
                (Some(z), _) => z.sample(rng),
                (None, TermRankDist::LogUniform { lo, hi }) => {
                    let lo = lo.min(n_terms.saturating_sub(1));
                    let hi = hi.clamp(lo + 1, n_terms.max(lo + 1));
                    let (a, b) = ((lo.max(1) as f64).ln(), (hi as f64).ln());
                    let r = (a + (b - a) * rng.gen::<f64>()).exp() as usize;
                    r.clamp(lo, hi - 1)
                }
                _ => unreachable!(),
            }
        };
        let mut queries = Vec::with_capacity(config.num_queries);
        let mut costs_ms = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let nt = rng.gen_range(config.terms_min..=config.terms_max);
            let q: Vec<u32> = (0..nt).map(|_| draw_rank(&mut rng) as u32).collect();
            let (_, cost) = search(index, &q, config.top_k);
            queries.push(q);
            costs_ms.push((cost + config.base_ops) as f64 * ns_per_posting / 1e6);
        }
        QueryTrace { queries, costs_ms }
    }

    /// Mean service time (ms).
    pub fn mean_ms(&self) -> f64 {
        self.costs_ms.iter().sum::<f64>() / self.costs_ms.len() as f64
    }

    /// Standard deviation of service time (ms).
    pub fn std_ms(&self) -> f64 {
        let m = self.mean_ms();
        (self.costs_ms.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / self.costs_ms.len() as f64)
            .sqrt()
    }

    /// Rescales costs so the mean matches `target_mean_ms` — used to
    /// calibrate the synthetic engine to the paper's measured
    /// µ_L = 39.73 ms.
    pub fn calibrate_to_mean(&mut self, target_mean_ms: f64) {
        assert!(target_mean_ms > 0.0);
        let f = target_mean_ms / self.mean_ms();
        for c in &mut self.costs_ms {
            *c *= f;
        }
    }

    /// Fraction of queries with cost above `threshold_ms`.
    pub fn frac_above(&self, threshold_ms: f64) -> f64 {
        self.costs_ms.iter().filter(|&&c| c > threshold_ms).count() as f64
            / self.costs_ms.len() as f64
    }
}

/// The shared sharded-search workload: per-shard corpora, the query
/// log, and the command generator, in one place (mirroring
/// `kvstore::workload::store_with_monsters`) so the fan-out example,
/// the integration tests, and `figures -- fanout` all drive
/// **identical** shard traffic.
///
/// Document-partitioned: every shard gets its own `docs`-sized corpus
/// (same statistics, distinct seed), so the per-shard service-time
/// distribution is *constant in the fan-out width* — exactly the
/// premise of the (0.99)^N compounding argument. The query trace is
/// measured against shard 0; with identically distributed shards it
/// stands in for any leg.
#[derive(Clone, Debug)]
pub struct ShardedQueryWorkload {
    /// One inverted index per shard.
    pub indices: Vec<InvertedIndex>,
    /// The query log with per-query costs measured against shard 0.
    pub trace: QueryTrace,
    /// Fixed per-query overhead in postings-scan units (kept for
    /// building backends with the same constant the trace used).
    pub base_ops: u64,
    /// Results requested per query.
    pub top_k: usize,
}

impl ShardedQueryWorkload {
    /// Generates `shards` identically distributed corpora from
    /// `corpus` (reseeded per shard) and the query log from
    /// `queries`; `ns_per_posting` converts measured postings to time.
    pub fn generate(
        shards: usize,
        corpus: crate::corpus::CorpusConfig,
        queries: QueryWorkloadConfig,
        ns_per_posting: f64,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let indices: Vec<InvertedIndex> = (0..shards)
            .map(|s| {
                let mut cfg = corpus;
                cfg.seed = corpus.seed.wrapping_add(0x9E37_79B9 * s as u64);
                crate::corpus::Corpus::generate(cfg).build_index()
            })
            .collect();
        let trace = QueryTrace::generate(&indices[0], queries, ns_per_posting);
        ShardedQueryWorkload {
            indices,
            trace,
            base_ops: queries.base_ops,
            top_k: queries.top_k,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.indices.len()
    }

    /// Mean per-shard (single-leg) service time, ms.
    pub fn mean_leg_ms(&self) -> f64 {
        self.trace.mean_ms()
    }

    /// One [`crate::backend::SearchBackend`] per shard, with the same
    /// `base_ops` the trace was measured with.
    pub fn backends(&self) -> Vec<crate::backend::SearchBackend> {
        let n = self.indices.len();
        self.indices
            .iter()
            .enumerate()
            .map(|(s, idx)| crate::backend::SearchBackend::new(idx.clone(), s, n, self.base_ops))
            .collect()
    }

    /// The broadcast command for arrival `i` (the query log cycles).
    pub fn command(&self, i: usize) -> kvstore::Command {
        kvstore::Command::Search {
            terms: self.trace.queries[i % self.trace.queries.len()].clone(),
            k: self.top_k as u32,
        }
    }

    /// An owning `'static` command generator for load runners that
    /// outlive the borrow (e.g. `Cluster::run_load`'s pacer task).
    pub fn command_fn(&self) -> impl FnMut(usize) -> kvstore::Command + Send + 'static {
        let queries = self.trace.queries.clone();
        let k = self.top_k as u32;
        move |i| kvstore::Command::Search {
            terms: queries[i % queries.len()].clone(),
            k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn small_index() -> InvertedIndex {
        Corpus::generate(CorpusConfig::small(1)).build_index()
    }

    fn trace(index: &InvertedIndex, seed: u64, n: usize) -> QueryTrace {
        QueryTrace::generate(
            index,
            QueryWorkloadConfig {
                num_queries: n,
                seed,
                ..QueryWorkloadConfig::default()
            },
            100.0,
        )
    }

    #[test]
    fn trace_shape() {
        let idx = small_index();
        let t = trace(&idx, 2, 300);
        assert_eq!(t.queries.len(), 300);
        assert_eq!(t.costs_ms.len(), 300);
        assert!(t.costs_ms.iter().all(|&c| c > 0.0));
        for q in &t.queries {
            assert!((1..=4).contains(&q.len()));
        }
    }

    #[test]
    fn deterministic() {
        let idx = small_index();
        let a = trace(&idx, 3, 100);
        let b = trace(&idx, 3, 100);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.costs_ms, b.costs_ms);
    }

    #[test]
    fn popular_terms_cost_more() {
        let idx = small_index();
        // A query of the most popular term vs an unpopular one.
        let (_, head_cost) = search(&idx, &[0], 10);
        let tail_term = (idx.num_terms() - 1) as u32;
        let (_, tail_cost) = search(&idx, &[tail_term], 10);
        assert!(head_cost > tail_cost, "head={head_cost} tail={tail_cost}");
    }

    #[test]
    fn calibration() {
        let idx = small_index();
        let mut t = trace(&idx, 4, 200);
        t.calibrate_to_mean(39.73);
        assert!((t.mean_ms() - 39.73).abs() < 1e-9);
        assert!(t.std_ms() > 0.0);
    }

    #[test]
    fn frac_above_monotone() {
        let idx = small_index();
        let t = trace(&idx, 5, 200);
        let m = t.mean_ms();
        assert!(t.frac_above(0.0) >= t.frac_above(m));
        assert!(t.frac_above(m) >= t.frac_above(100.0 * m));
    }

    #[test]
    fn sharded_workload_is_deterministic_and_distinct_per_shard() {
        let mk = || {
            ShardedQueryWorkload::generate(
                3,
                CorpusConfig::small(9),
                QueryWorkloadConfig {
                    num_queries: 50,
                    ..QueryWorkloadConfig::default()
                },
                100.0,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.shards(), 3);
        assert_eq!(a.trace.queries, b.trace.queries);
        assert_eq!(a.trace.costs_ms, b.trace.costs_ms);
        // Shards share statistics but not content: distinct seeds give
        // distinct document frequencies for at least some term.
        assert!(
            (0..100u32).any(|t| a.indices[0].df(t) != a.indices[1].df(t)),
            "shard corpora should differ"
        );
        // Commands cycle through the log.
        assert_eq!(a.command(0), a.command(50));
        let mut f = a.command_fn();
        assert_eq!(f(7), a.command(7));
        // Backends carry the trace's base_ops: a served search costs
        // exactly what the trace measured for the same query.
        let mut backends = a.backends();
        let (_, served) = kvstore::Backend::execute(&mut backends[0], &a.command(0));
        let expected_ms = served as f64 * 100.0 / 1e6;
        assert!((expected_ms - a.trace.costs_ms[0]).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_index_panics() {
        let idx = crate::index::IndexBuilder::new().build();
        let _ = QueryTrace::generate(&idx, QueryWorkloadConfig::default(), 100.0);
    }
}
