//! Tokenization and vocabulary management.

use std::collections::HashMap;

/// Tokenizes into owned lowercase alphanumeric tokens.
///
/// ```
/// assert_eq!(
///     searchengine::tokenize::tokens_lower("Hello, World! x2"),
///     vec!["hello", "world", "x2"]
/// );
/// ```
pub fn tokens_lower(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// A bidirectional string ↔ term-id mapping.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    to_id: HashMap<String, u32>,
    to_term: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.to_term.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.to_term.is_empty()
    }

    /// Interns a term, returning its id.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.to_id.get(term) {
            return id;
        }
        let id = self.to_term.len() as u32;
        self.to_id.insert(term.to_string(), id);
        self.to_term.push(term.to_string());
        id
    }

    /// Looks up an existing term.
    pub fn get(&self, term: &str) -> Option<u32> {
        self.to_id.get(term).copied()
    }

    /// The term for an id.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.to_term.get(id as usize).map(String::as_str)
    }

    /// Tokenizes and interns a document, returning its term ids.
    pub fn intern_doc(&mut self, text: &str) -> Vec<u32> {
        tokens_lower(text).iter().map(|t| self.intern(t)).collect()
    }

    /// Tokenizes a query against the existing vocabulary, dropping
    /// unknown terms.
    pub fn query_ids(&self, text: &str) -> Vec<u32> {
        tokens_lower(text)
            .iter()
            .filter_map(|t| self.get(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_punctuation() {
        assert_eq!(
            tokens_lower("The quick-brown fox! (2024)"),
            vec!["the", "quick", "brown", "fox", "2024"]
        );
        assert!(tokens_lower("").is_empty());
        assert!(tokens_lower("...!?").is_empty());
    }

    #[test]
    fn vocabulary_interning() {
        let mut v = Vocabulary::new();
        let a = v.intern("hello");
        let b = v.intern("world");
        assert_ne!(a, b);
        assert_eq!(v.intern("hello"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get("hello"), Some(a));
        assert_eq!(v.get("nothere"), None);
        assert_eq!(v.term(a), Some("hello"));
        assert_eq!(v.term(99), None);
    }

    #[test]
    fn intern_doc_and_query() {
        let mut v = Vocabulary::new();
        let ids = v.intern_doc("Cats chase mice. Mice run!");
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[3], ids[1].max(ids[3]).min(ids[3])); // mice == mice
        let q = v.query_ids("mice dogs");
        assert_eq!(q.len(), 1); // "dogs" unseen
    }
}
