//! The search engine as a servable [`Backend`]: a BM25 index shard
//! behind the kvstore's RESP/TCP transport.
//!
//! `hedge::TcpServer` is generic over [`kvstore::Backend`], so an index
//! shard serves on exactly the wire the replicated kvstore uses — same
//! framing, same tied-request cancellation, same `cost × nanos_per_op`
//! wall-clock burn. This is what makes BM25 scatter-gather the
//! canonical fan-out workload: `crates/shard` spawns one replica group
//! per [`SearchBackend`] shard and merges per-shard top-k in the
//! aggregator.

use crate::bm25::search;
use crate::index::InvertedIndex;
use kvstore::{Backend, Command, Hit, Reply};

/// One document-partitioned index shard serving [`Command::Search`].
///
/// Document partitioning (shard `s` of `n` holds every document with
/// `global_doc % n == s`, equivalently local doc `d` maps to global
/// `d * n + s`) means every query fans out to *all* shards and each
/// shard returns its local top-k — the aggregator merges. Local doc
/// ids are mapped to globally unique ids in replies so merged result
/// lists never collide across shards.
#[derive(Clone, Debug)]
pub struct SearchBackend {
    index: InvertedIndex,
    shard: u64,
    shards: u64,
    base_ops: u64,
}

impl SearchBackend {
    /// Wraps an index as shard `shard` of `shards`, adding `base_ops`
    /// fixed overhead (query parsing/assembly work) to every search's
    /// reported cost — the same constant [`crate::QueryWorkloadConfig`]
    /// applies when measuring traces, so served and traced service
    /// times agree.
    pub fn new(index: InvertedIndex, shard: usize, shards: usize, base_ops: u64) -> Self {
        assert!(shards > 0 && shard < shards, "shard index out of range");
        SearchBackend {
            index,
            shard: shard as u64,
            shards: shards as u64,
            base_ops,
        }
    }

    /// A single-shard (unsharded) backend.
    pub fn single(index: InvertedIndex, base_ops: u64) -> Self {
        Self::new(index, 0, 1, base_ops)
    }

    /// The wrapped index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Maps a shard-local doc id to its globally unique id.
    pub fn global_doc(&self, local: u32) -> u64 {
        u64::from(local) * self.shards + self.shard
    }
}

impl Backend for SearchBackend {
    fn execute(&mut self, cmd: &Command) -> (Reply, u64) {
        match cmd {
            Command::Ping => (Reply::Pong, 1),
            Command::Search { terms, k } => {
                let (hits, cost) = search(&self.index, terms, *k as usize);
                let hits: Vec<Hit> = hits
                    .iter()
                    .map(|h| Hit::new(self.global_doc(h.doc), h.score))
                    .collect();
                (Reply::Hits(hits), cost + self.base_ops)
            }
            // Transport-level; a no-op if it ever reaches the backend.
            Command::Cancel(_) => (Reply::Ok, 1),
            _ => (Reply::Error("unsupported by search backend".into()), 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    #[test]
    fn serves_search_with_global_doc_ids() {
        let index = Corpus::generate(CorpusConfig::small(7)).build_index();
        let mut shard = SearchBackend::new(index.clone(), 2, 4, 500);
        let (reply, cost) = Backend::execute(
            &mut shard,
            &Command::Search {
                terms: vec![0, 5],
                k: 5,
            },
        );
        let (want, raw_cost) = search(&index, &[0, 5], 5);
        assert_eq!(cost, raw_cost + 500);
        match reply {
            Reply::Hits(hits) => {
                assert_eq!(hits.len(), want.len());
                for (h, w) in hits.iter().zip(&want) {
                    assert_eq!(h.doc, u64::from(w.doc) * 4 + 2);
                    assert_eq!(h.score().to_bits(), w.score.to_bits());
                    assert_eq!(h.doc % 4, 2, "global ids keep the shard residue");
                }
            }
            other => panic!("expected hits, got {other:?}"),
        }
    }

    #[test]
    fn rejects_kv_commands() {
        let index = Corpus::generate(CorpusConfig::small(8)).build_index();
        let mut shard = SearchBackend::single(index, 0);
        let (reply, _) = Backend::execute(&mut shard, &Command::Get("k".into()));
        assert!(matches!(reply, Reply::Error(_)));
        let (reply, _) = Backend::execute(&mut shard, &Command::Ping);
        assert_eq!(reply, Reply::Pong);
    }
}
