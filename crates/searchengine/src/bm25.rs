//! BM25-ranked top-k retrieval with cost accounting.

use crate::index::InvertedIndex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// BM25 `k1` parameter (term-frequency saturation).
pub const K1: f64 = 1.2;
/// BM25 `b` parameter (length normalization).
pub const B: f64 = 0.75;

/// A scored search result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchHit {
    /// Document id.
    pub doc: u32,
    /// BM25 score (higher is better).
    pub score: f64,
}

impl Eq for SearchHit {}

impl Ord for SearchHit {
    fn cmp(&self, other: &Self) -> Ordering {
        // "Greater" means *worse* (lower score, then higher doc id), so
        // a max-BinaryHeap pops the worst hit — exactly what top-k
        // pruning wants — and ties resolve deterministically toward
        // lower doc ids.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

impl PartialOrd for SearchHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// BM25 inverse document frequency with the +1 smoothing Lucene uses.
pub fn idf(num_docs: usize, df: usize) -> f64 {
    (((num_docs as f64 - df as f64 + 0.5) / (df as f64 + 0.5)) + 1.0).ln()
}

/// Executes a BM25 top-`k` disjunctive query over the index.
///
/// Returns the hits (best first) and the *cost*: the number of postings
/// scanned, which is the engine's deterministic unit of service time
/// (the trace layer converts it to milliseconds). Term-at-a-time
/// scoring with a score accumulator; duplicate query terms contribute
/// once per occurrence, like Lucene's default query parser.
pub fn search(index: &InvertedIndex, terms: &[u32], k: usize) -> (Vec<SearchHit>, u64) {
    let mut acc: HashMap<u32, f64> = HashMap::new();
    let mut cost = 1u64; // baseline dispatch cost
    let n = index.num_docs();
    let avg_dl = index.avg_doc_len().max(1.0);

    for &t in terms {
        let postings = index.postings(t);
        if postings.is_empty() {
            continue;
        }
        let w = idf(n, postings.len());
        cost += postings.len() as u64;
        for p in postings {
            let dl = index.doc_len(p.doc) as f64;
            let tf = p.tf as f64;
            let s = w * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / avg_dl));
            *acc.entry(p.doc).or_insert(0.0) += s;
        }
    }

    // Top-k via a min-heap of size k.
    let mut heap: BinaryHeap<SearchHit> = BinaryHeap::with_capacity(k + 1);
    for (doc, score) in acc {
        heap.push(SearchHit { doc, score });
        if heap.len() > k {
            heap.pop(); // drops the current minimum (reversed order)
        }
    }
    let mut hits: Vec<SearchHit> = heap.into_vec();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    (hits, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    /// Brute-force BM25 for the oracle.
    fn brute_scores(index: &InvertedIndex, terms: &[u32]) -> HashMap<u32, f64> {
        let mut acc = HashMap::new();
        let avg_dl = index.avg_doc_len().max(1.0);
        for &t in terms {
            let postings = index.postings(t);
            if postings.is_empty() {
                continue;
            }
            let w = idf(index.num_docs(), postings.len());
            for p in postings {
                let dl = index.doc_len(p.doc) as f64;
                let tf = p.tf as f64;
                *acc.entry(p.doc).or_insert(0.0) +=
                    w * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / avg_dl));
            }
        }
        acc
    }

    fn toy_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_doc(&[0, 0, 1]); // doc 0: "cat cat dog"
        b.add_doc(&[1, 2]); // doc 1: "dog fish"
        b.add_doc(&[0, 2, 2, 2]); // doc 2: "cat fish fish fish"
        b.add_doc(&[3]); // doc 3: "zebra"
        b.build()
    }

    #[test]
    fn single_term_ranking() {
        let idx = toy_index();
        let (hits, cost) = search(&idx, &[0], 10);
        // Both docs 0 and 2 contain term 0; doc 0 has higher tf and is
        // shorter → must rank first.
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 2);
        assert!(hits[0].score > hits[1].score);
        assert_eq!(cost, 1 + 2); // two postings scanned
    }

    #[test]
    fn multi_term_accumulates() {
        let idx = toy_index();
        let (hits, _) = search(&idx, &[0, 1], 10);
        // doc 0 matches both terms → top.
        assert_eq!(hits[0].doc, 0);
        let scores = brute_scores(&idx, &[0, 1]);
        for h in &hits {
            assert!((h.score - scores[&h.doc]).abs() < 1e-12);
        }
    }

    #[test]
    fn top_k_truncates_correctly() {
        let idx = toy_index();
        let (all, _) = search(&idx, &[0, 1, 2], 10);
        let (top2, _) = search(&idx, &[0, 1, 2], 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0], all[0]);
        assert_eq!(top2[1], all[1]);
    }

    #[test]
    fn rare_term_scores_higher_idf() {
        let idx = toy_index();
        // term 3 appears in 1 doc, term 0 in 2: idf(3) > idf(0).
        assert!(idf(idx.num_docs(), idx.df(3)) > idf(idx.num_docs(), idx.df(0)));
    }

    #[test]
    fn unknown_terms_and_empty_query() {
        let idx = toy_index();
        let (hits, cost) = search(&idx, &[99], 5);
        assert!(hits.is_empty());
        assert_eq!(cost, 1);
        let (hits, _) = search(&idx, &[], 5);
        assert!(hits.is_empty());
    }

    #[test]
    fn zero_k_returns_nothing_but_costs() {
        let idx = toy_index();
        let (hits, cost) = search(&idx, &[0], 0);
        assert!(hits.is_empty());
        assert!(cost > 1);
    }

    #[test]
    fn cost_equals_postings_scanned() {
        let mut b = IndexBuilder::new();
        for d in 0..100 {
            // term 0 in every doc, term 1 in every 10th.
            if d % 10 == 0 {
                b.add_doc(&[0, 1]);
            } else {
                b.add_doc(&[0]);
            }
        }
        let idx = b.build();
        let (_, c0) = search(&idx, &[0], 5);
        let (_, c1) = search(&idx, &[1], 5);
        let (_, c01) = search(&idx, &[0, 1], 5);
        assert_eq!(c0, 1 + 100);
        assert_eq!(c1, 1 + 10);
        assert_eq!(c01, 1 + 110);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut b = IndexBuilder::new();
        for _ in 0..6 {
            b.add_doc(&[0]); // identical docs → identical scores
        }
        let idx = b.build();
        let (hits, _) = search(&idx, &[0], 3);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        // Ties break toward lower doc ids, deterministically.
        assert_eq!(docs, vec![0, 1, 2]);
    }
}
