//! Order-statistic and orthogonal range-query data structures.
//!
//! This crate provides the query substrates used by the
//! `ComputeOptimalSingleR` optimizer of Kaler, He and Elnikety,
//! *Optimal Reissue Policies for Reducing Tail Latency* (SPAA 2017):
//!
//! * [`FingerCursor`] — a movable finger into a sorted slice that answers
//!   rank (`count < v`) queries in amortized `O(1)` when the query values
//!   move monotonically, standing in for the finger search trees
//!   (Brown–Tarjan / Guibas et al.) cited by the paper. This is what makes
//!   the optimizer `Θ(N + sort(N))` rather than `Θ(N log N)`.
//! * [`FenwickTree`] — a binary indexed tree over value ranks, used for the
//!   sweep-line estimation of the conditional CDF
//!   `Pr(Y ≤ t−d | X > t)` inside the correlation-aware optimizer.
//! * [`MergeSortTree`] — a static structure answering arbitrary (non-
//!   monotone) 2-D dominance counts `|{ i : xᵢ > qx ∧ yᵢ ≤ qy }|` in
//!   `O(log² n)`, the general-purpose orthogonal range query structure
//!   referenced in §4.2 of the paper.
//! * [`Treap`] — a randomized balanced BST with order statistics, used as a
//!   *dynamic* empirical CDF (online insertions + rank/quantile queries) by
//!   the adaptive optimizer.
//!
//! All structures are deterministic given their inputs (the treap takes an
//! explicit seed) and are validated against brute-force oracles by unit and
//! property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fenwick;
mod finger;
mod merge_sort_tree;
mod treap;

pub use fenwick::FenwickTree;
pub use finger::FingerCursor;
pub use merge_sort_tree::MergeSortTree;
pub use treap::Treap;

/// Counts elements of a sorted slice strictly less than `v`.
///
/// This is the brute-force oracle for [`FingerCursor`]; it is `O(log n)`
/// (binary search) and is exposed because several callers need one-shot,
/// non-monotone rank queries where building a cursor is not worthwhile.
///
/// # Examples
/// ```
/// let xs = [1.0, 2.0, 2.0, 5.0];
/// assert_eq!(rangequery::count_less(&xs, 2.0), 1);
/// assert_eq!(rangequery::count_less(&xs, 2.5), 3);
/// ```
pub fn count_less(sorted: &[f64], v: f64) -> usize {
    sorted.partition_point(|&x| x < v)
}

/// Counts elements of a sorted slice less than or equal to `v`.
pub fn count_le(sorted: &[f64], v: f64) -> usize {
    sorted.partition_point(|&x| x <= v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_less_empty() {
        assert_eq!(count_less(&[], 1.0), 0);
        assert_eq!(count_le(&[], 1.0), 0);
    }

    #[test]
    fn count_less_vs_le_on_ties() {
        let xs = [3.0, 3.0, 3.0];
        assert_eq!(count_less(&xs, 3.0), 0);
        assert_eq!(count_le(&xs, 3.0), 3);
    }

    #[test]
    fn count_less_extremes() {
        let xs = [1.0, 4.0, 9.0];
        assert_eq!(count_less(&xs, f64::NEG_INFINITY), 0);
        assert_eq!(count_less(&xs, f64::INFINITY), 3);
    }
}
