//! Finger cursors over sorted slices: amortized-O(1) monotone rank queries.

/// A movable finger into a sorted `f64` slice.
///
/// [`FingerCursor::count_less`] returns `|{ x ∈ R : x < v }|` like a
/// binary search would, but the cursor remembers its last position and
/// walks from there. When successive query values move monotonically
/// (in either direction) the total walk across `m` queries is bounded by
/// the distance travelled, so each query costs amortized `O(1)`.
///
/// `ComputeOptimalSingleR` evaluates its three CDFs at values that are
/// individually monotone across the whole sweep (`d` non-decreasing, `t`
/// non-increasing, `t−d` non-increasing), which is exactly the access
/// pattern this cursor — standing in for the paper's finger search
/// tree — turns into `Θ(N)` total work.
///
/// # Examples
/// ```
/// let xs = [1.0, 3.0, 3.0, 7.0, 9.0];
/// let mut c = rangequery::FingerCursor::new(&xs);
/// assert_eq!(c.count_less(3.0), 1);
/// assert_eq!(c.count_less(8.0), 4);  // moved right
/// assert_eq!(c.count_less(0.5), 0);  // moved left
/// ```
#[derive(Clone, Debug)]
pub struct FingerCursor<'a> {
    sorted: &'a [f64],
    /// Number of elements strictly less than the last queried value;
    /// doubles as the finger position.
    pos: usize,
    /// Total number of elements walked over, for amortization tests.
    steps: u64,
}

impl<'a> FingerCursor<'a> {
    /// Creates a cursor positioned at the start of `sorted`.
    ///
    /// `sorted` must be in non-decreasing order; this is debug-asserted.
    pub fn new(sorted: &'a [f64]) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "FingerCursor input must be sorted"
        );
        FingerCursor {
            sorted,
            pos: 0,
            steps: 0,
        }
    }

    /// Number of elements strictly less than `v`, moving the finger.
    pub fn count_less(&mut self, v: f64) -> usize {
        // Walk right while the element under the finger is still < v.
        while self.pos < self.sorted.len() && self.sorted[self.pos] < v {
            self.pos += 1;
            self.steps += 1;
        }
        // Walk left while the element before the finger is >= v.
        while self.pos > 0 && self.sorted[self.pos - 1] >= v {
            self.pos -= 1;
            self.steps += 1;
        }
        self.pos
    }

    /// Empirical CDF `Pr(X < v)` over the underlying samples
    /// (the paper's `DiscreteCDF`, Figure 1 line 21).
    ///
    /// Returns 0 for an empty sample set.
    pub fn cdf(&mut self, v: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.count_less(v) as f64 / self.sorted.len() as f64
    }

    /// Total elements walked since construction — exposed so tests can
    /// assert the amortized-O(1) bound (`steps ≤ distance travelled`).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The underlying sorted slice.
    pub fn samples(&self) -> &'a [f64] {
        self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_less;
    use proptest::prelude::*;

    #[test]
    fn empty_slice() {
        let mut c = FingerCursor::new(&[]);
        assert_eq!(c.count_less(5.0), 0);
        assert_eq!(c.cdf(5.0), 0.0);
    }

    #[test]
    fn ties_are_strict() {
        let xs = [2.0, 2.0, 2.0, 2.0];
        let mut c = FingerCursor::new(&xs);
        assert_eq!(c.count_less(2.0), 0);
        assert_eq!(c.count_less(2.0 + f64::EPSILON * 4.0), 4);
        assert_eq!(c.count_less(2.0), 0);
    }

    #[test]
    fn monotone_sweep_is_linear() {
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let mut c = FingerCursor::new(&xs);
        // Ascending sweep: total steps bounded by n.
        for q in 0..10_000 {
            c.count_less(q as f64 + 0.5);
        }
        assert!(c.steps() <= 10_000, "steps = {}", c.steps());
        // Descending sweep back: at most n more.
        for q in (0..10_000).rev() {
            c.count_less(q as f64 + 0.5);
        }
        assert!(c.steps() <= 20_000, "steps = {}", c.steps());
    }

    #[test]
    fn matches_binary_search_oracle_fixed() {
        let xs = [1.0, 1.5, 1.5, 2.0, 8.0, 8.0, 13.5];
        let mut c = FingerCursor::new(&xs);
        for &q in &[0.0, 1.0, 1.5, 1.7, 2.0, 8.0, 9.0, 13.5, 99.0, 1.5, 0.0] {
            assert_eq!(c.count_less(q), count_less(&xs, q), "q={q}");
        }
    }

    proptest! {
        #[test]
        fn matches_binary_search_oracle(
            mut xs in proptest::collection::vec(-1e3f64..1e3, 0..300),
            qs in proptest::collection::vec(-1.5e3f64..1.5e3, 0..300),
        ) {
            xs.sort_by(f64::total_cmp);
            let mut c = FingerCursor::new(&xs);
            for q in qs {
                prop_assert_eq!(c.count_less(q), count_less(&xs, q));
            }
        }

        #[test]
        fn cdf_in_unit_interval(
            mut xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            q in -2e3f64..2e3,
        ) {
            xs.sort_by(f64::total_cmp);
            let mut c = FingerCursor::new(&xs);
            let p = c.cdf(q);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
