//! Static merge-sort tree for 2-D dominance counting.

/// A merge-sort tree over a set of points `(x, y)`.
///
/// Supports the dominance count `|{ i : xᵢ > qx ∧ yᵢ ≤ qy }|` (and the
/// companion `x > qx` total) in `O(log² n)`, with `O(n log n)` space and
/// construction. This is the general orthogonal range counting structure
/// the paper cites (Lueker'78, Agarwal'96) for estimating the conditional
/// distribution `Pr(Y ≤ t−d | X > t)` from joint response-time samples:
///
/// ```text
/// Pr(Y ≤ v | X > t) ≈ count_above_le(t, v) / count_above(t)
/// ```
///
/// The optimizer's hot path exploits query monotonicity with a Fenwick
/// sweep instead (see `reissue-core`); the tree is retained for arbitrary
/// (non-monotone) query patterns — e.g. interactive exploration of a
/// latency log — and as the oracle the sweep is tested against.
///
/// Internally this is a segment tree over the x-sorted point order where
/// each node stores the sorted multiset of `y` values in its range.
#[derive(Clone, Debug)]
pub struct MergeSortTree {
    /// x-coordinates in non-decreasing order.
    xs: Vec<f64>,
    /// `node_ys[v]` = sorted y values of the points in node v's range.
    node_ys: Vec<Vec<f64>>,
    /// Number of leaves (next power of two ≥ n), 0 when empty.
    size: usize,
}

impl MergeSortTree {
    /// Builds the tree from unsorted points. `O(n log n)`.
    pub fn new(points: &[(f64, f64)]) -> Self {
        let mut pts: Vec<(f64, f64)> = points.to_vec();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let n = pts.len();
        if n == 0 {
            return MergeSortTree {
                xs: Vec::new(),
                node_ys: Vec::new(),
                size: 0,
            };
        }
        let size = n.next_power_of_two();
        let mut node_ys: Vec<Vec<f64>> = vec![Vec::new(); 2 * size];
        for (i, p) in pts.iter().enumerate() {
            node_ys[size + i] = vec![p.1];
        }
        for v in (1..size).rev() {
            let (left, right) = (2 * v, 2 * v + 1);
            let mut merged = Vec::with_capacity(node_ys[left].len() + node_ys[right].len());
            let (a, b) = (&node_ys[left], &node_ys[right]);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&a[i..]);
            merged.extend_from_slice(&b[j..]);
            node_ys[v] = merged;
        }
        MergeSortTree {
            xs: pts.iter().map(|p| p.0).collect(),
            node_ys,
            size,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Count of points with `x > qx`.
    pub fn count_above(&self, qx: f64) -> usize {
        self.xs.len() - self.xs.partition_point(|&x| x <= qx)
    }

    /// Count of points with `x > qx` **and** `y ≤ qy`. `O(log² n)`.
    pub fn count_above_le(&self, qx: f64, qy: f64) -> usize {
        let lo = self.xs.partition_point(|&x| x <= qx);
        self.count_range_le(lo, self.xs.len(), qy)
    }

    /// Count of points with x-sorted index in `lo..hi` and `y ≤ qy`.
    pub fn count_range_le(&self, lo: usize, hi: usize, qy: f64) -> usize {
        let n = self.xs.len();
        let (lo, hi) = (lo.min(n), hi.min(n));
        if hi <= lo {
            return 0;
        }
        // Standard iterative segment-tree range walk.
        let mut count = 0usize;
        let mut l = lo + self.size;
        let mut r = hi + self.size;
        while l < r {
            if l & 1 == 1 {
                count += Self::sorted_count_le(&self.node_ys[l], qy);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                count += Self::sorted_count_le(&self.node_ys[r], qy);
            }
            l >>= 1;
            r >>= 1;
        }
        count
    }

    /// Estimate of the conditional probability `Pr(Y ≤ qy | X > qx)`.
    ///
    /// Returns `None` when no sample has `x > qx` (the condition has an
    /// empty support).
    pub fn conditional_cdf(&self, qx: f64, qy: f64) -> Option<f64> {
        let denom = self.count_above(qx);
        if denom == 0 {
            None
        } else {
            Some(self.count_above_le(qx, qy) as f64 / denom as f64)
        }
    }

    fn sorted_count_le(sorted: &[f64], qy: f64) -> usize {
        sorted.partition_point(|&y| y <= qy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute(points: &[(f64, f64)], qx: f64, qy: f64) -> usize {
        points.iter().filter(|p| p.0 > qx && p.1 <= qy).count()
    }

    #[test]
    fn empty() {
        let t = MergeSortTree::new(&[]);
        assert!(t.is_empty());
        assert_eq!(t.count_above(0.0), 0);
        assert_eq!(t.count_above_le(0.0, 0.0), 0);
        assert_eq!(t.conditional_cdf(0.0, 0.0), None);
    }

    #[test]
    fn single_point() {
        let t = MergeSortTree::new(&[(1.0, 2.0)]);
        assert_eq!(t.count_above_le(0.0, 2.0), 1);
        assert_eq!(t.count_above_le(0.0, 1.9), 0);
        assert_eq!(t.count_above_le(1.0, 2.0), 0); // strict x >
        assert_eq!(t.count_above(0.5), 1);
        assert_eq!(t.count_above(1.0), 0);
        assert_eq!(t.conditional_cdf(0.0, 2.0), Some(1.0));
        assert_eq!(t.conditional_cdf(1.0, 2.0), None);
    }

    #[test]
    fn small_fixed_case() {
        let pts = [
            (1.0, 5.0),
            (2.0, 3.0),
            (3.0, 8.0),
            (4.0, 1.0),
            (5.0, 9.0),
            (6.0, 2.0),
            (7.0, 7.0),
        ];
        let t = MergeSortTree::new(&pts);
        for qx in [-1.0, 0.0, 1.0, 2.5, 3.0, 4.5, 6.0, 7.0, 8.0] {
            for qy in [-1.0, 0.0, 1.0, 2.0, 3.5, 5.0, 8.0, 9.0, 10.0] {
                assert_eq!(
                    t.count_above_le(qx, qy),
                    brute(&pts, qx, qy),
                    "qx={qx} qy={qy}"
                );
            }
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 2, 3, 5, 7, 13, 31, 100, 127] {
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let x = (i * 37 % n) as f64;
                    let y = (i * 61 % (n + 3)) as f64;
                    (x, y)
                })
                .collect();
            let t = MergeSortTree::new(&pts);
            for qx in 0..n {
                let qy = (qx * 3 % (n + 3)) as f64;
                assert_eq!(
                    t.count_above_le(qx as f64, qy),
                    brute(&pts, qx as f64, qy),
                    "n={n} qx={qx} qy={qy}"
                );
            }
        }
    }

    #[test]
    fn conditional_cdf_matches_ratio() {
        let pts = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (4.0, 40.0)];
        let t = MergeSortTree::new(&pts);
        // X > 2 leaves {(3,30),(4,40)}; Y ≤ 30 matches one of two.
        assert_eq!(t.conditional_cdf(2.0, 30.0), Some(0.5));
        assert_eq!(t.conditional_cdf(2.0, 5.0), Some(0.0));
        assert_eq!(t.conditional_cdf(2.0, 100.0), Some(1.0));
    }

    proptest! {
        #[test]
        fn matches_brute_force(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..200),
            queries in proptest::collection::vec((-120.0f64..120.0, -120.0f64..120.0), 0..50),
        ) {
            let t = MergeSortTree::new(&pts);
            for (qx, qy) in queries {
                prop_assert_eq!(t.count_above_le(qx, qy), brute(&pts, qx, qy));
            }
        }

        #[test]
        fn duplicates_handled(
            pts in proptest::collection::vec((0.0f64..3.0, 0.0f64..3.0), 0..100),
        ) {
            // Coarse grid forces many duplicate coordinates.
            let pts: Vec<(f64, f64)> =
                pts.iter().map(|p| (p.0.floor(), p.1.floor())).collect();
            let t = MergeSortTree::new(&pts);
            for qx in [-1.0, 0.0, 1.0, 2.0, 3.0] {
                for qy in [-1.0, 0.0, 1.0, 2.0, 3.0] {
                    prop_assert_eq!(t.count_above_le(qx, qy), brute(&pts, qx, qy));
                }
            }
        }

        #[test]
        fn range_le_matches_brute(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..150),
            lo in 0usize..160,
            span in 0usize..160,
            qy in -60.0f64..60.0,
        ) {
            let t = MergeSortTree::new(&pts);
            let mut sorted = pts.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let n = sorted.len();
            let lo = lo.min(n);
            let hi = (lo + span).min(n);
            let expect = sorted[lo..hi].iter().filter(|p| p.1 <= qy).count();
            prop_assert_eq!(t.count_range_le(lo, hi, qy), expect);
        }
    }
}
