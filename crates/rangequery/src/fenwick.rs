//! Binary indexed (Fenwick) tree over `usize` counts.

/// A Fenwick tree (binary indexed tree) maintaining an array of
/// non-negative counts with `O(log n)` point updates and prefix sums.
///
/// Indices are `0..n`. The tree is used by the correlation-aware
/// optimizer as the sweep-line structure: response-time pairs are
/// inserted by descending primary time and prefix sums over reissue-time
/// ranks yield `|{ i : xᵢ > t ∧ yᵢ ≤ v }|`.
///
/// # Examples
/// ```
/// let mut ft = rangequery::FenwickTree::new(8);
/// ft.add(3, 2);
/// ft.add(5, 1);
/// assert_eq!(ft.prefix_sum(3), 0); // indices 0..3
/// assert_eq!(ft.prefix_sum(4), 2); // indices 0..4
/// assert_eq!(ft.total(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct FenwickTree {
    tree: Vec<u64>,
}

impl FenwickTree {
    /// Creates a tree over `n` zero-initialized slots.
    pub fn new(n: usize) -> Self {
        FenwickTree {
            tree: vec![0; n + 1],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to slot `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn add(&mut self, i: usize, delta: u64) {
        assert!(i < self.len(), "index {i} out of bounds {}", self.len());
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..i` (exclusive upper bound). `i` may equal `len()`.
    pub fn prefix_sum(&self, i: usize) -> u64 {
        let mut i = i.min(self.len());
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the half-open range `lo..hi`.
    pub fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        if hi <= lo {
            return 0;
        }
        self.prefix_sum(hi) - self.prefix_sum(lo)
    }

    /// Sum of all slots.
    pub fn total(&self) -> u64 {
        self.prefix_sum(self.len())
    }

    /// Smallest index `i` such that `prefix_sum(i + 1) >= target`,
    /// or `None` if `target > total()`. `target` must be at least 1.
    ///
    /// This is the classic Fenwick "select" used to answer quantile
    /// queries over a dynamic multiset in `O(log n)`.
    pub fn select(&self, target: u64) -> Option<usize> {
        if target == 0 || target > self.total() {
            return None;
        }
        let mut pos = 0usize;
        let mut remaining = target;
        // Highest power of two <= len
        let mut step = self.tree.len().next_power_of_two();
        if step > self.tree.len() {
            step >>= 1;
        }
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        Some(pos) // pos is 0-based slot index (pos+1 in 1-based tree terms, minus 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree() {
        let ft = FenwickTree::new(0);
        assert!(ft.is_empty());
        assert_eq!(ft.total(), 0);
        assert_eq!(ft.prefix_sum(0), 0);
        assert_eq!(ft.select(1), None);
    }

    #[test]
    fn single_slot() {
        let mut ft = FenwickTree::new(1);
        assert_eq!(ft.total(), 0);
        ft.add(0, 5);
        assert_eq!(ft.prefix_sum(0), 0);
        assert_eq!(ft.prefix_sum(1), 5);
        assert_eq!(ft.select(1), Some(0));
        assert_eq!(ft.select(5), Some(0));
        assert_eq!(ft.select(6), None);
    }

    #[test]
    fn range_sum_basic() {
        let mut ft = FenwickTree::new(10);
        for i in 0..10 {
            ft.add(i, (i + 1) as u64);
        }
        assert_eq!(ft.range_sum(0, 10), 55);
        assert_eq!(ft.range_sum(3, 7), 4 + 5 + 6 + 7);
        assert_eq!(ft.range_sum(7, 3), 0);
        assert_eq!(ft.range_sum(4, 4), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut ft = FenwickTree::new(4);
        ft.add(4, 1);
    }

    #[test]
    fn select_matches_scan() {
        let mut ft = FenwickTree::new(16);
        let counts = [0u64, 3, 0, 0, 2, 7, 0, 1, 0, 0, 4, 0, 0, 0, 0, 9];
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                ft.add(i, c);
            }
        }
        let total: u64 = counts.iter().sum();
        for target in 1..=total {
            let mut acc = 0;
            let mut expect = None;
            for (i, &c) in counts.iter().enumerate() {
                acc += c;
                if acc >= target {
                    expect = Some(i);
                    break;
                }
            }
            assert_eq!(ft.select(target), expect, "target {target}");
        }
    }

    proptest! {
        #[test]
        fn prefix_sums_match_oracle(counts in proptest::collection::vec(0u64..20, 0..200)) {
            let mut ft = FenwickTree::new(counts.len());
            for (i, &c) in counts.iter().enumerate() {
                ft.add(i, c);
            }
            let mut acc = 0u64;
            for i in 0..=counts.len() {
                prop_assert_eq!(ft.prefix_sum(i), acc);
                if i < counts.len() {
                    acc += counts[i];
                }
            }
        }

        #[test]
        fn select_is_inverse_of_prefix(counts in proptest::collection::vec(0u64..5, 1..100)) {
            let mut ft = FenwickTree::new(counts.len());
            for (i, &c) in counts.iter().enumerate() {
                ft.add(i, c);
            }
            let total = ft.total();
            prop_assume!(total > 0);
            for target in 1..=total {
                let i = ft.select(target).unwrap();
                prop_assert!(ft.prefix_sum(i + 1) >= target);
                prop_assert!(ft.prefix_sum(i) < target);
            }
        }
    }
}
