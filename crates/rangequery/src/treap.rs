//! Randomized order-statistic treap over `f64` keys.

/// A balanced binary search tree (treap) with order statistics over
/// `f64` keys, allowing duplicates.
///
/// The treap serves as the *dynamic* empirical CDF used by the adaptive
/// optimizer: response times stream in one at a time and rank /
/// quantile queries interleave with insertions, all in expected
/// `O(log n)`. Heap priorities come from a deterministic xorshift
/// stream seeded at construction, so a given insertion order always
/// produces the same tree.
///
/// # Examples
/// ```
/// let mut t = rangequery::Treap::new(42);
/// for v in [5.0, 1.0, 3.0, 3.0] { t.insert(v); }
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.count_less(3.0), 1);
/// assert_eq!(t.select(0), Some(1.0));   // smallest
/// assert_eq!(t.select(3), Some(5.0));   // largest
/// assert!(t.remove(3.0));
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Treap {
    nodes: Vec<Node>,
    root: Option<usize>,
    free: Vec<usize>,
    rng_state: u64,
}

#[derive(Clone, Debug)]
struct Node {
    key: f64,
    priority: u64,
    left: Option<usize>,
    right: Option<usize>,
    /// Subtree size including this node.
    size: usize,
}

impl Treap {
    /// Creates an empty treap whose priorities are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Treap {
            nodes: Vec::new(),
            root: None,
            free: Vec::new(),
            // Avoid the xorshift fixed point at 0.
            rng_state: seed | 1,
        }
    }

    /// Number of stored keys (counting duplicates).
    pub fn len(&self) -> usize {
        self.root.map_or(0, |r| self.nodes[r].size)
    }

    /// Whether the treap is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    fn next_priority(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn size(&self, n: Option<usize>) -> usize {
        n.map_or(0, |i| self.nodes[i].size)
    }

    fn update(&mut self, i: usize) {
        let s = 1 + self.size(self.nodes[i].left) + self.size(self.nodes[i].right);
        self.nodes[i].size = s;
    }

    fn alloc(&mut self, key: f64, priority: u64) -> usize {
        let node = Node {
            key,
            priority,
            left: None,
            right: None,
            size: 1,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Splits subtree `n` into (< key, ≥ key).
    fn split(&mut self, n: Option<usize>, key: f64) -> (Option<usize>, Option<usize>) {
        let Some(i) = n else {
            return (None, None);
        };
        if self.nodes[i].key < key {
            let (l, r) = self.split(self.nodes[i].right, key);
            self.nodes[i].right = l;
            self.update(i);
            (Some(i), r)
        } else {
            let (l, r) = self.split(self.nodes[i].left, key);
            self.nodes[i].left = r;
            self.update(i);
            (l, Some(i))
        }
    }

    fn merge(&mut self, a: Option<usize>, b: Option<usize>) -> Option<usize> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(l), Some(r)) => {
                if self.nodes[l].priority >= self.nodes[r].priority {
                    let merged = self.merge(self.nodes[l].right, Some(r));
                    self.nodes[l].right = merged;
                    self.update(l);
                    Some(l)
                } else {
                    let merged = self.merge(Some(l), self.nodes[r].left);
                    self.nodes[r].left = merged;
                    self.update(r);
                    Some(r)
                }
            }
        }
    }

    /// Inserts `key` (duplicates allowed). Expected `O(log n)`.
    ///
    /// # Panics
    /// Panics if `key` is NaN.
    pub fn insert(&mut self, key: f64) {
        assert!(!key.is_nan(), "Treap keys must not be NaN");
        let priority = self.next_priority();
        let node = self.alloc(key, priority);
        let (l, r) = self.split(self.root, key);
        let left = self.merge(l, Some(node));
        self.root = self.merge(left, r);
    }

    /// Removes one occurrence of `key`; returns whether a key was removed.
    pub fn remove(&mut self, key: f64) -> bool {
        if key.is_nan() {
            return false;
        }
        let (l, rest) = self.split(self.root, key);
        // rest holds keys ≥ key; split again just past key.
        let (eq, r) = self.split(rest, next_up(key));
        let removed = eq.is_some();
        let eq = if let Some(e) = eq {
            // Drop one node from the equal-run: remove its root.

            {
                let (el, er) = (self.nodes[e].left, self.nodes[e].right);
                self.free.push(e);
                self.merge(el, er)
            }
        } else {
            None
        };
        let left = self.merge(l, eq);
        self.root = self.merge(left, r);
        removed
    }

    /// Number of keys strictly less than `key`.
    pub fn count_less(&self, key: f64) -> usize {
        let mut n = self.root;
        let mut count = 0;
        while let Some(i) = n {
            if self.nodes[i].key < key {
                count += 1 + self.size(self.nodes[i].left);
                n = self.nodes[i].right;
            } else {
                n = self.nodes[i].left;
            }
        }
        count
    }

    /// Number of keys less than or equal to `key`.
    pub fn count_le(&self, key: f64) -> usize {
        if key == f64::INFINITY {
            return self.len();
        }
        self.count_less(next_up(key))
    }

    /// The `rank`-th smallest key (0-based), or `None` if out of range.
    pub fn select(&self, rank: usize) -> Option<f64> {
        if rank >= self.len() {
            return None;
        }
        let mut n = self.root;
        let mut rank = rank;
        while let Some(i) = n {
            let ls = self.size(self.nodes[i].left);
            if rank < ls {
                n = self.nodes[i].left;
            } else if rank == ls {
                return Some(self.nodes[i].key);
            } else {
                rank -= ls + 1;
                n = self.nodes[i].right;
            }
        }
        None
    }

    /// Empirical CDF `Pr(X < key)`; 0 for an empty treap.
    pub fn cdf(&self, key: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.count_less(key) as f64 / self.len() as f64
    }

    /// The empirical `p`-quantile (`0 ≤ p ≤ 1`) using the
    /// nearest-rank definition; `None` for an empty treap.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let n = self.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.select(rank)
    }

    /// All keys in sorted order (`O(n)`), mainly for testing and export.
    pub fn to_sorted_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.walk(self.root, &mut out);
        out
    }

    fn walk(&self, n: Option<usize>, out: &mut Vec<f64>) {
        if let Some(i) = n {
            self.walk(self.nodes[i].left, out);
            out.push(self.nodes[i].key);
            self.walk(self.nodes[i].right, out);
        }
    }
}

/// Smallest f64 strictly greater than `v` (for finite `v`).
fn next_up(v: f64) -> f64 {
    if v == f64::INFINITY {
        return v;
    }
    let bits = v.to_bits();
    let next = if v == 0.0 {
        1 // smallest positive subnormal
    } else if v > 0.0 {
        bits + 1
    } else {
        bits - 1
    };
    f64::from_bits(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_treap() {
        let t = Treap::new(1);
        assert!(t.is_empty());
        assert_eq!(t.count_less(0.0), 0);
        assert_eq!(t.select(0), None);
        assert_eq!(t.quantile(0.5), None);
        assert_eq!(t.cdf(1.0), 0.0);
    }

    #[test]
    fn insert_and_rank() {
        let mut t = Treap::new(7);
        for v in [10.0, 4.0, 8.0, 4.0, 1.0] {
            t.insert(v);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.to_sorted_vec(), vec![1.0, 4.0, 4.0, 8.0, 10.0]);
        assert_eq!(t.count_less(4.0), 1);
        assert_eq!(t.count_le(4.0), 3);
        assert_eq!(t.select(2), Some(4.0));
    }

    #[test]
    fn remove_one_duplicate() {
        let mut t = Treap::new(3);
        for v in [2.0, 2.0, 2.0] {
            t.insert(v);
        }
        assert!(t.remove(2.0));
        assert_eq!(t.len(), 2);
        assert!(!t.remove(5.0));
        assert_eq!(t.len(), 2);
        assert!(t.remove(2.0));
        assert!(t.remove(2.0));
        assert!(t.is_empty());
    }

    #[test]
    fn quantile_nearest_rank() {
        let mut t = Treap::new(11);
        for v in 1..=100 {
            t.insert(v as f64);
        }
        assert_eq!(t.quantile(0.5), Some(50.0));
        assert_eq!(t.quantile(0.95), Some(95.0));
        assert_eq!(t.quantile(0.99), Some(99.0));
        assert_eq!(t.quantile(1.0), Some(100.0));
        assert_eq!(t.quantile(0.0), Some(1.0));
        assert_eq!(t.quantile(1.5), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_insert_panics() {
        let mut t = Treap::new(1);
        t.insert(f64::NAN);
    }

    #[test]
    fn negative_and_zero_keys() {
        let mut t = Treap::new(5);
        for v in [-3.0, 0.0, -0.5, 2.0, 0.0] {
            t.insert(v);
        }
        assert_eq!(t.count_less(0.0), 2);
        assert_eq!(t.count_le(0.0), 4);
        assert!(t.remove(0.0));
        assert_eq!(t.count_le(0.0), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut t = Treap::new(99);
            for i in 0..100 {
                t.insert(((i * 31) % 57) as f64);
            }
            t.to_sorted_vec()
        };
        assert_eq!(build(), build());
    }

    proptest! {
        #[test]
        fn matches_sorted_vec_oracle(
            ops in proptest::collection::vec((any::<bool>(), -100i32..100), 0..300),
        ) {
            let mut t = Treap::new(13);
            let mut oracle: Vec<f64> = Vec::new();
            for (is_insert, v) in ops {
                let v = v as f64;
                if is_insert || oracle.is_empty() {
                    t.insert(v);
                    let pos = oracle.partition_point(|&x| x < v);
                    oracle.insert(pos, v);
                } else {
                    let removed = t.remove(v);
                    let pos = oracle.iter().position(|&x| x == v);
                    prop_assert_eq!(removed, pos.is_some());
                    if let Some(p) = pos {
                        oracle.remove(p);
                    }
                }
                prop_assert_eq!(t.len(), oracle.len());
            }
            prop_assert_eq!(t.to_sorted_vec(), oracle.clone());
            for q in [-101.0, -50.0, 0.0, 3.0, 50.0, 101.0] {
                prop_assert_eq!(t.count_less(q), oracle.iter().filter(|&&x| x < q).count());
                prop_assert_eq!(t.count_le(q), oracle.iter().filter(|&&x| x <= q).count());
            }
            for (r, &expected) in oracle.iter().enumerate() {
                prop_assert_eq!(t.select(r), Some(expected));
            }
        }

        #[test]
        fn quantile_bounds(
            vals in proptest::collection::vec(-1e6f64..1e6, 1..200),
            p in 0.0f64..=1.0,
        ) {
            let mut t = Treap::new(17);
            for &v in &vals {
                t.insert(v);
            }
            let q = t.quantile(p).unwrap();
            let mut sorted = vals.clone();
            sorted.sort_by(f64::total_cmp);
            prop_assert!(q >= sorted[0] && q <= sorted[sorted.len() - 1]);
            // At least ceil(p*n) values are ≤ q.
            let need = (p * sorted.len() as f64).ceil() as usize;
            prop_assert!(t.count_le(q) >= need.max(1));
        }
    }
}
