//! A [`Backend`] whose service cost is proportional to the bytes it
//! moves.
//!
//! The plain [`KvStore`] cost model counts elementary *set* operations
//! (the paper's stored-procedure workload); string reads cost a flat 1
//! regardless of size. That flat cost would hide the whole point of
//! striping — a `1/k`-sized fragment read should occupy the server
//! for roughly `1/k` of the time a full-value read does, which is
//! what makes fragment-level hedging cheaper *server-side* and not
//! just on the wire. [`StripedBackend`] wraps a [`KvStore`] and
//! charges string and fragment traffic `1 + len / bytes_per_unit`
//! cost units, so the `TcpServer` burn (`nanos_per_op × cost`) scales
//! with payload size on both the replica arm (full values) and the
//! fragment arm (stripes) of the A/B benchmark.

use kvstore::{fragment_key, Backend, Command, KvStore, Reply};

/// Byte-proportional cost wrapper around a [`KvStore`].
#[derive(Clone)]
pub struct StripedBackend {
    store: KvStore,
    bytes_per_unit: u64,
}

impl StripedBackend {
    /// Wraps `store`, charging one extra cost unit per `bytes_per_unit`
    /// payload bytes (values of 0 are clamped to 1).
    pub fn new(store: KvStore, bytes_per_unit: u64) -> Self {
        Self {
            store,
            bytes_per_unit: bytes_per_unit.max(1),
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Mutable access to the wrapped store (for test/bench seeding).
    pub fn store_mut(&mut self) -> &mut KvStore {
        &mut self.store
    }

    /// Payload bytes a command will move, pre-execution: the stored
    /// value's length for reads (O(1) map probes), the argument's
    /// length for writes, `0` for everything else.
    fn payload_bytes(&self, cmd: &Command) -> u64 {
        let len = match cmd {
            Command::Get(k) => self.store.get_str(k).map_or(0, |v| v.len()),
            Command::Set(_, v) => v.len(),
            Command::FGet(k, slot) => self
                .store
                .get_str(&fragment_key(k, *slot))
                .map_or(0, |v| v.len()),
            Command::FSet(_, _, v) => v.len(),
            _ => 0,
        };
        len as u64
    }

    fn byte_cost(&self, cmd: &Command) -> u64 {
        self.payload_bytes(cmd) / self.bytes_per_unit
    }
}

impl Backend for StripedBackend {
    fn execute(&mut self, cmd: &Command) -> (Reply, u64) {
        // Byte cost must be read before a Set/FSet replaces the value.
        let extra = self.byte_cost(cmd);
        let (reply, cost) = self.store.execute(cmd);
        (reply, cost + extra)
    }

    fn estimate_cost(&self, cmd: &Command) -> u64 {
        self.store.estimate_cost(cmd) + self.byte_cost(cmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn cost_scales_with_value_size() {
        let mut b = StripedBackend::new(KvStore::new(), 64);
        let key = Bytes::from_static(b"k");
        let val = Bytes::from(vec![7u8; 640]);
        let (_, set_cost) = b.execute(&Command::Set(key.clone(), val));
        assert_eq!(set_cost, 1 + 10);
        let (reply, get_cost) = b.execute(&Command::Get(key.clone()));
        assert!(matches!(reply, Reply::Str(_)));
        assert_eq!(get_cost, 1 + 10);
        assert_eq!(b.estimate_cost(&Command::Get(key)), 1 + 10);
    }

    #[test]
    fn fragment_reads_cost_a_k_th() {
        let mut b = StripedBackend::new(KvStore::new(), 64);
        let key = Bytes::from_static(b"stripe");
        let full = vec![3u8; 4 * 640];
        // Full value on one arm…
        b.execute(&Command::Set(key.clone(), Bytes::from(full.clone())));
        // …fragments (k = 4) on the other.
        let frags = crate::codec::encode_stripe(&full, 4, 5).unwrap();
        for (slot, f) in frags.iter().enumerate() {
            b.execute(&Command::FSet(key.clone(), slot as u32, f.clone()));
        }
        let full_cost = b.estimate_cost(&Command::Get(key.clone()));
        let frag_cost = b.estimate_cost(&Command::FGet(key.clone(), 0));
        assert!(
            frag_cost * 3 < full_cost,
            "fragment read ({frag_cost}) should cost ~1/4 of a full read ({full_cost})"
        );
    }

    #[test]
    fn misses_and_non_string_commands_cost_baseline() {
        let b = StripedBackend::new(KvStore::new(), 64);
        assert_eq!(
            b.estimate_cost(&Command::Get(Bytes::from_static(b"nope"))),
            1
        );
        assert_eq!(b.estimate_cost(&Command::Ping), 1);
    }
}
