//! XOR fragment codec: split a value into `k` data fragments plus
//! `n − k` parity fragments, reconstruct from any decodable `k`-subset.
//!
//! This is *latency*-oriented coding, not durability coding: a single
//! XOR parity is enough to let a read complete from any `k − 1` data
//! fragments plus parity, which is exactly the degree of freedom
//! fragment-level hedging needs (the reissue fetches fragment `k + 1`
//! instead of a second full copy). When `n − k > 1` the extra slots
//! carry *clones* of the same parity — pure dispatch redundancy (more
//! places to send the reissue), not extra erasure tolerance. A subset
//! containing two parity clones therefore brings only `k − 1` distinct
//! equations and does **not** decode; Reed–Solomon-style multi-parity
//! is the recorded follow-up (ROADMAP).
//!
//! Every fragment is self-describing: an 8-byte header (magic, slot,
//! `k`, `n`, original length) precedes the payload, so decode needs
//! nothing but the fragment bytes themselves — the wire path can hand
//! fragments back in any order and the codec reassembles or rejects
//! them with a precise error.

use bytes::Bytes;

/// Fragment wire header: `b'E' b'F' k n slot len₂ len₁ len₀` —
/// 8 bytes; the original value length is a big-endian 24-bit integer
/// in the last three bytes, capping values at [`MAX_VALUE_LEN`]
/// (16 MiB − 1, far above anything the serving path stores).
pub const HEADER_LEN: usize = 8;

/// Largest encodable value (24-bit length field).
pub const MAX_VALUE_LEN: usize = (1 << 24) - 1;

/// Why a stripe failed to encode or decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// `k == 0`, `n < k`, or more than 255 slots.
    BadGeometry(&'static str),
    /// A fragment is shorter than its header or carries a bad magic.
    Malformed(&'static str),
    /// Fragments disagree on `(k, n, length)` or duplicate a slot with
    /// different bytes.
    Inconsistent(&'static str),
    /// The supplied fragments do not span the stripe: fewer than
    /// `k − 1` distinct data fragments, or `k − 1` without any parity.
    /// Parity clones beyond the first add no information.
    Insufficient {
        /// Distinct data fragments present.
        data: usize,
        /// Parity fragments present (clones collapse to one equation).
        parity: usize,
        /// The stripe's `k`.
        k: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadGeometry(m) => write!(f, "bad stripe geometry: {m}"),
            CodecError::Malformed(m) => write!(f, "malformed fragment: {m}"),
            CodecError::Inconsistent(m) => write!(f, "inconsistent fragments: {m}"),
            CodecError::Insufficient { data, parity, k } => write!(
                f,
                "undecodable subset: {data} data + {parity} parity fragments of a k={k} stripe"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Per-fragment payload length for a value of `len` bytes split
/// `k` ways: `ceil(len / k)`, with zero-length values yielding
/// zero-length fragments.
pub fn fragment_len(len: usize, k: usize) -> usize {
    len.div_ceil(k.max(1))
}

/// Splits `value` into `n` self-describing fragments: slots
/// `0..k` carry the zero-padded data stripes, slots `k..n` carry
/// identical XOR-parity clones. `n == k` is allowed (striping without
/// redundancy — no hedge slot, but byte-minimal).
pub fn encode_stripe(value: &[u8], k: usize, n: usize) -> Result<Vec<Bytes>, CodecError> {
    if k == 0 {
        return Err(CodecError::BadGeometry("k must be at least 1"));
    }
    if n < k {
        return Err(CodecError::BadGeometry("n must be at least k"));
    }
    if n > 255 {
        return Err(CodecError::BadGeometry("at most 255 slots"));
    }
    if value.len() > MAX_VALUE_LEN {
        return Err(CodecError::BadGeometry("value too large for 24-bit length"));
    }
    let flen = fragment_len(value.len(), k);
    let mut parity = vec![0u8; flen];
    let mut out = Vec::with_capacity(n);
    for slot in 0..k {
        let start = slot * flen;
        let end = ((slot + 1) * flen).min(value.len());
        let body = if start < value.len() {
            &value[start..end]
        } else {
            &[]
        };
        let mut frag = header(slot as u8, k as u8, n as u8, value.len() as u32, flen);
        frag.extend_from_slice(body);
        frag.resize(HEADER_LEN + flen, 0); // zero-pad the tail stripe
        for (p, b) in parity.iter_mut().zip(&frag[HEADER_LEN..]) {
            *p ^= b;
        }
        out.push(Bytes::from(frag));
    }
    for slot in k..n {
        let mut frag = header(slot as u8, k as u8, n as u8, value.len() as u32, flen);
        frag.extend_from_slice(&parity);
        out.push(Bytes::from(frag));
    }
    Ok(out)
}

fn header(slot: u8, k: u8, n: u8, len: u32, flen: usize) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN + flen);
    h.extend_from_slice(&[b'E', b'F', k, n, slot]);
    h.extend_from_slice(&[(len >> 16) as u8, (len >> 8) as u8, len as u8]);
    h
}

/// One parsed fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment<'a> {
    /// Slot index (`< k`: data stripe; `>= k`: parity clone).
    pub slot: u8,
    /// Stripe data width.
    pub k: u8,
    /// Stripe total width.
    pub n: u8,
    /// Original value length in bytes.
    pub orig_len: u32,
    /// The (padded) stripe payload.
    pub payload: &'a [u8],
}

/// Parses a fragment's header and payload.
pub fn parse_fragment(bytes: &[u8]) -> Result<Fragment<'_>, CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Malformed("shorter than header"));
    }
    if bytes[0] != b'E' || bytes[1] != b'F' {
        return Err(CodecError::Malformed("bad magic"));
    }
    let (k, n, slot) = (bytes[2], bytes[3], bytes[4]);
    if k == 0 || n < k || slot >= n {
        return Err(CodecError::Malformed("bad geometry in header"));
    }
    let orig_len = (u32::from(bytes[5]) << 16) | (u32::from(bytes[6]) << 8) | u32::from(bytes[7]);
    Ok(Fragment {
        slot,
        k,
        n,
        orig_len,
        payload: &bytes[HEADER_LEN..],
    })
}

/// Reconstructs the original value from any decodable subset of
/// fragments (byte-identical to what [`encode_stripe`] consumed).
/// Decodable means: all `k` data fragments, or `k − 1` of them plus at
/// least one parity clone. Duplicates are tolerated if byte-identical;
/// conflicting duplicates and mixed-stripe fragments are rejected.
pub fn decode_stripe(fragments: &[impl AsRef<[u8]>]) -> Result<Bytes, CodecError> {
    let mut parsed = Vec::with_capacity(fragments.len());
    for f in fragments {
        parsed.push(parse_fragment(f.as_ref())?);
    }
    let first = parsed
        .first()
        .ok_or(CodecError::Insufficient {
            data: 0,
            parity: 0,
            k: 0,
        })?
        .clone();
    let (k, n, orig_len) = (first.k as usize, first.n as usize, first.orig_len as usize);
    let flen = fragment_len(orig_len, k);
    let mut data: Vec<Option<&[u8]>> = vec![None; k];
    let mut parity: Option<&[u8]> = None;
    for f in &parsed {
        if (f.k as usize, f.n as usize, f.orig_len as usize) != (k, n, orig_len) {
            return Err(CodecError::Inconsistent("mixed stripe parameters"));
        }
        if f.payload.len() != flen {
            return Err(CodecError::Inconsistent("fragment length mismatch"));
        }
        let slot = f.slot as usize;
        if slot < k {
            match data[slot] {
                None => data[slot] = Some(f.payload),
                Some(prev) if prev == f.payload => {}
                Some(_) => return Err(CodecError::Inconsistent("conflicting duplicate slot")),
            }
        } else {
            match parity {
                None => parity = Some(f.payload),
                Some(prev) if prev == f.payload => {}
                Some(_) => return Err(CodecError::Inconsistent("conflicting parity clones")),
            }
        }
    }
    let have = data.iter().filter(|d| d.is_some()).count();
    if have + 1 < k || (have < k && parity.is_none()) {
        return Err(CodecError::Insufficient {
            data: have,
            parity: usize::from(parity.is_some()),
            k,
        });
    }
    let mut value = Vec::with_capacity(k * flen);
    if have == k {
        for d in &data {
            value.extend_from_slice(d.expect("all data slots present"));
        }
    } else {
        // Exactly one data stripe missing: it is the XOR of parity and
        // every present stripe.
        let missing = data.iter().position(|d| d.is_none()).expect("one missing");
        let mut rebuilt = parity.expect("parity present").to_vec();
        for d in data.iter().flatten() {
            for (r, b) in rebuilt.iter_mut().zip(*d) {
                *r ^= b;
            }
        }
        for (slot, d) in data.iter().enumerate() {
            match d {
                Some(d) => value.extend_from_slice(d),
                None => {
                    debug_assert_eq!(slot, missing);
                    value.extend_from_slice(&rebuilt);
                }
            }
        }
    }
    value.truncate(orig_len);
    Ok(Bytes::from(value))
}

/// Whether a set of present slots decodes a `(k, n)` stripe: `k`
/// distinct data slots, or `k − 1` plus at least one parity slot.
/// Parity clones beyond the first add nothing.
pub fn decodable(k: usize, present_slots: impl IntoIterator<Item = usize>) -> bool {
    let mut data = std::collections::HashSet::new();
    let mut parity = false;
    for s in present_slots {
        if s < k {
            data.insert(s);
        } else {
            parity = true;
        }
    }
    data.len() == k || (data.len() + 1 == k && parity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_data() {
        let v = b"hello, striped world";
        let frags = encode_stripe(v, 3, 4).unwrap();
        assert_eq!(frags.len(), 4);
        let got = decode_stripe(&frags[..3]).unwrap();
        assert_eq!(&got[..], v);
    }

    #[test]
    fn roundtrip_with_parity_standing_in() {
        let v = b"0123456789abcdef-odd";
        let frags = encode_stripe(v, 3, 4).unwrap();
        for missing in 0..3 {
            let subset: Vec<_> = (0..4)
                .filter(|&s| s != missing)
                .map(|s| &frags[s])
                .collect();
            let got = decode_stripe(&subset).unwrap();
            assert_eq!(&got[..], v, "missing data slot {missing}");
        }
    }

    #[test]
    fn parity_clones_do_not_stack() {
        let v = b"abcdefgh";
        let frags = encode_stripe(v, 3, 5).unwrap();
        // Two parity clones + one data fragment: k-2 data equations.
        let subset = [&frags[0], &frags[3], &frags[4]];
        assert!(matches!(
            decode_stripe(&subset),
            Err(CodecError::Insufficient {
                data: 1,
                parity: 1,
                k: 3
            })
        ));
        // One data missing, any single parity clone: decodes.
        let subset = [&frags[0], &frags[1], &frags[4]];
        assert_eq!(&decode_stripe(&subset).unwrap()[..], v);
    }

    #[test]
    fn empty_and_tiny_values() {
        for v in [&b""[..], b"x", b"xy"] {
            let frags = encode_stripe(v, 2, 3).unwrap();
            assert_eq!(&decode_stripe(&frags[..2]).unwrap()[..], v);
            assert_eq!(&decode_stripe(&[&frags[0], &frags[2]]).unwrap()[..], v);
        }
    }

    #[test]
    fn geometry_errors() {
        assert!(matches!(
            encode_stripe(b"v", 0, 1),
            Err(CodecError::BadGeometry(_))
        ));
        assert!(matches!(
            encode_stripe(b"v", 3, 2),
            Err(CodecError::BadGeometry(_))
        ));
        assert!(decode_stripe(&[b"EF" as &[u8]]).is_err());
        assert!(decode_stripe(&[b"XXYYZZ11" as &[u8]]).is_err());
    }

    #[test]
    fn mixed_stripes_rejected() {
        let a = encode_stripe(b"aaaa", 2, 3).unwrap();
        let b = encode_stripe(b"bbbbbb", 2, 3).unwrap();
        assert!(matches!(
            decode_stripe(&[&a[0], &b[1]]),
            Err(CodecError::Inconsistent(_))
        ));
    }

    #[test]
    fn decodable_predicate() {
        assert!(decodable(2, [0, 1]));
        assert!(decodable(2, [0, 2]));
        assert!(decodable(2, [1, 3]));
        assert!(!decodable(2, [2, 3])); // two parity clones
        assert!(!decodable(2, [0]));
        assert!(decodable(1, [0]));
        assert!(decodable(1, [1])); // k=1: parity IS the value
    }

    #[test]
    fn header_roundtrip_large() {
        // 24-bit length field: values past 64 KiB still round-trip.
        let len = 70_000usize;
        let v = vec![0xA5u8; len];
        let frags = encode_stripe(&v, 4, 5).unwrap();
        let f = parse_fragment(&frags[0]).unwrap();
        assert_eq!(f.orig_len as usize, len);
        assert_eq!(&decode_stripe(&frags[1..]).unwrap()[..], &v[..]);
    }
}
