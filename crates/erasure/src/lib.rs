//! Erasure-coded striped backend: fragment-level hedging with k-of-n
//! completion.
//!
//! Replica-level hedging (the `hedge` crate) pays a whole duplicate
//! request for every reissue. Erasure-coded striping shrinks that
//! price to `1/k`: a value is split into `k` data fragments plus
//! `n − k` XOR-parity fragments spread over a replica group, a read
//! fans out the `k` data fragments, and the `(d, q)` reissue timer
//! arms over the *straggling fragment* — the hedge fetches one parity
//! fragment instead of a second full copy, and the stripe completes as
//! soon as **any** decodable k-subset is in hand (Aggarwal et al.'s
//! "Taming Tail Latency for Erasure-coded, Distributed Storage
//! Systems"; the reissue *policy* is unchanged from the paper this
//! repo reproduces — only the unit of reissue shrinks).
//!
//! At an equal **byte** budget the exchange rate is
//! `q_fragment = k × q_replica`
//! ([`reissue_core::kofn::fragment_budget`]): each fragment reissue
//! moves `1/k` of a value, so the fragment client hedges `k×` more
//! often for the same wire and server-time spend — which is exactly
//! the A/B the `figures -- erasure` benchmark measures.
//!
//! The three layers:
//!
//! * [`codec`] — the XOR stripe codec: self-describing fragments,
//!   any-decodable-subset reconstruction, parity clones for `n > k+1`
//!   (dispatch redundancy only; Reed–Solomon multi-parity is the
//!   recorded follow-up).
//! * [`backend`] — [`StripedBackend`], a `kvstore::Backend` wrapper
//!   whose service cost is proportional to payload bytes, so fragment
//!   reads genuinely occupy a server for `~1/k` of a full read's time.
//! * [`client`] — [`StripedClient`], the k-of-n race: primary wave of
//!   `k` fragment reads, policy-timed parity reissues, tied-request
//!   retraction of the straggler, and censored-pair booking.
//!
//! Fragments travel the existing RESP wire as `FGET`/`FSET` commands
//! and live in a reserved corner of the keyspace
//! ([`kvstore::fragment_key`]), so every serving-stack layer — zero-copy
//! codec, queue disciplines, tied requests, cancellation — applies to
//! fragment traffic unchanged.
//!
//! Slot-to-replica **placement is rotated per key**
//! ([`placement_offset`]): slot `s` of a key with offset `o` lives on
//! replica `(s + o) mod n`. A fixed mapping would park every key's
//! data fragments on replicas `0..k` and leave the parity replicas
//! idle until a reissue — giving the data replicas `n/k×` the load of
//! a replica-hedged group at the same offered rate and poisoning any
//! equal-budget comparison. Rotation spreads both the primary and the
//! reissue bytes uniformly, exactly as replica hedging's round-robin
//! primary does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod codec;

pub use backend::StripedBackend;
pub use client::{StripedClient, StripedConfig, StripedStats};
pub use codec::{decodable, decode_stripe, encode_stripe, fragment_len, CodecError};

/// Key-dependent placement rotation: slot `s` of `key` lives on
/// replica `(s + placement_offset(key, n)) % n`.
///
/// FNV-1a over the key bytes, reduced mod `n` — deterministic across
/// clients and seeders, uniform enough that a keyspace of more than a
/// handful of keys loads all `n` replicas evenly (each replica serves
/// data fragments for a `k/n` share of keys and parity reissues for
/// the rest).
pub fn placement_offset(key: &[u8], n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n as u64) as usize
}
