//! The k-of-n fragment-hedging client.
//!
//! A striped read dispatches the `k` *data*-fragment requests as its
//! primary wave (slot `s` lives on replica `(s + o) % n` for the key's
//! rotation offset `o`, see [`crate::placement_offset`]) and completes
//! as soon
//! as the fragments in hand decode — all `k` data fragments, or `k−1`
//! of them plus a parity clone. The reissue policy's `(d, q)` timer is
//! armed over the *straggling* fragment exactly as the replica-hedging
//! client arms it over a whole query: when a stage deadline passes
//! with the stripe still undecodable (and the coin came up heads and
//! the budget governor grants quota), the client dispatches fragment
//! `k + r` — a parity clone on a replica not yet involved — instead of
//! a second full copy. That is the erasure-coding trade at the heart
//! of this subsystem: the hedge costs `1/k` of a full read, so at an
//! equal *byte* budget the fragment client can afford `k×` the reissue
//! probability of the replica client
//! ([`reissue_core::kofn::fragment_budget`]).
//!
//! Loser retraction reuses the serving stack's tied-request machinery:
//! under [`CancellationStyle::Tied`] every data fragment registers a
//! tie id and the *first* reissue names the straggler (the
//! lowest-index still-outstanding data slot) as its peer, so whichever
//! server dequeues first retracts the other server-to-server;
//! client-driven `CANCEL` remains the fallback for everything the tie
//! does not cover. Retractions that land in time book **censored**
//! `(straggler, reissue)` pairs — the same two-sided race book the
//! hedged client keeps, minus the online adapter.

use crate::codec::{self, decodable, CodecError};
use hedge::rt::{race, select_all, Either, Runtime};
use hedge::{next_tie_id, BudgetGovernor, CancelToken, CancellationStyle};
use hedge::{InFlight, ReplicaSet, TieSpec, TransportError};
use kvstore::{Command, Reply};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reissue_core::policy::ReissuePolicy;

use bytes::Bytes;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`StripedClient`].
#[derive(Clone, Debug)]
pub struct StripedConfig {
    /// Data fragments per stripe. The replica count `n` is taken from
    /// the address list; for each key, `k` replicas hold its data
    /// fragments and the other `n − k` hold parity clones (which
    /// replica holds which slot rotates per key, see
    /// [`crate::placement_offset`]).
    pub k: usize,
    /// The reissue policy armed over the straggling fragment. Stage
    /// delays are measured from the primary wave's dispatch, exactly
    /// like the replica-hedging client measures them from its primary.
    pub policy: ReissuePolicy,
    /// Cap on the realized fragment-reissue rate (reissues / striped
    /// reads); see [`BudgetGovernor`]. Remember the equal-byte
    /// exchange rate: a fragment budget of `q` costs the bytes of a
    /// replica budget of `q / k`.
    pub budget_cap: Option<f64>,
    /// An externally shared governor (takes precedence over
    /// `budget_cap`).
    pub governor: Option<Arc<BudgetGovernor>>,
    /// TCP connections per replica.
    pub pool_per_replica: usize,
    /// Executor worker threads (ignored by
    /// [`StripedClient::connect_with_runtime`]).
    pub workers: usize,
    /// Seed for the reissue coin flips.
    pub seed: u64,
    /// How the straggler is retracted once the stripe decodes without
    /// it (see [`CancellationStyle`]).
    pub cancellation: CancellationStyle,
}

impl Default for StripedConfig {
    fn default() -> Self {
        StripedConfig {
            k: 2,
            policy: ReissuePolicy::None,
            budget_cap: None,
            governor: None,
            pool_per_replica: 4,
            workers: 4,
            seed: 0x5EED,
            cancellation: CancellationStyle::Client,
        }
    }
}

/// Counters published by [`StripedClient`] (monotonic).
#[derive(Clone, Copy, Debug, Default)]
pub struct StripedStats {
    /// Striped reads completed (decoded, found absent, or failed).
    pub queries: u64,
    /// Fragment reissues actually dispatched.
    pub reissues: u64,
    /// Striped reads whose decode was unlocked by a reissued fragment
    /// (the last fragment to arrive before decodability was a parity
    /// reissue).
    pub reissue_wins: u64,
    /// Striped reads decoded with the parity equation standing in for
    /// a missing data fragment.
    pub decodes_with_parity: u64,
    /// Fragment attempts whose retraction (tied or client-driven)
    /// landed before execution.
    pub cancelled_in_time: u64,
    /// Hedged stripes that produced an exact `(straggler, reissue)`
    /// pair (both sides completed).
    pub pairs_exact: u64,
    /// Hedged stripes that produced a censored pair (one side
    /// retracted in time).
    pub pairs_censored: u64,
    /// Striped reads that failed outright (transport errors or an
    /// undecodable stripe after every slot resolved).
    pub errors: u64,
}

struct Counters {
    queries: AtomicU64,
    reissues: AtomicU64,
    reissue_wins: AtomicU64,
    decodes_with_parity: AtomicU64,
    cancelled_in_time: AtomicU64,
    pairs_exact: AtomicU64,
    pairs_censored: AtomicU64,
    errors: AtomicU64,
}

struct PolicyState {
    policy: ReissuePolicy,
    rng: SmallRng,
}

struct ScInner {
    rt: Runtime,
    replicas: ReplicaSet,
    k: usize,
    n: usize,
    state: Mutex<PolicyState>,
    counters: Counters,
    latencies_ms: Mutex<reissue_core::metrics::LogHistogram>,
    governor: Option<Arc<BudgetGovernor>>,
    cancellation: CancellationStyle,
}

/// A fragment-hedging client over `n` replicas holding one stripe slot
/// each. Cheap to clone (clones share connections and statistics).
#[derive(Clone)]
pub struct StripedClient {
    inner: Arc<ScInner>,
}

impl StripedClient {
    /// Connects to the `n` fragment replicas (`addrs[i]` serves slot
    /// `i`) and starts a fresh runtime.
    pub fn connect(addrs: &[SocketAddr], cfg: StripedConfig) -> std::io::Result<StripedClient> {
        let rt = Runtime::new(cfg.workers);
        Self::connect_with_runtime(rt, addrs, cfg)
    }

    /// Connects on an existing runtime.
    pub fn connect_with_runtime(
        rt: Runtime,
        addrs: &[SocketAddr],
        cfg: StripedConfig,
    ) -> std::io::Result<StripedClient> {
        if cfg.k == 0 || addrs.len() < cfg.k {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("need at least k={} replicas, got {}", cfg.k, addrs.len()),
            ));
        }
        let replicas = ReplicaSet::connect(addrs, cfg.pool_per_replica)?;
        let governor = cfg
            .governor
            .clone()
            .or_else(|| cfg.budget_cap.map(|cap| Arc::new(BudgetGovernor::new(cap))));
        Ok(StripedClient {
            inner: Arc::new(ScInner {
                rt,
                replicas,
                k: cfg.k,
                n: addrs.len(),
                state: Mutex::new(PolicyState {
                    policy: cfg.policy,
                    rng: SmallRng::seed_from_u64(cfg.seed),
                }),
                counters: Counters {
                    queries: AtomicU64::new(0),
                    reissues: AtomicU64::new(0),
                    reissue_wins: AtomicU64::new(0),
                    decodes_with_parity: AtomicU64::new(0),
                    cancelled_in_time: AtomicU64::new(0),
                    pairs_exact: AtomicU64::new(0),
                    pairs_censored: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                },
                latencies_ms: Mutex::new(reissue_core::metrics::LogHistogram::latency_ms()),
                governor,
                cancellation: cfg.cancellation,
            }),
        })
    }

    /// The executor, for spawning concurrent load generators.
    pub fn runtime(&self) -> &Runtime {
        &self.inner.rt
    }

    /// Stripe geometry `(k, n)`.
    pub fn geometry(&self) -> (usize, usize) {
        (self.inner.k, self.inner.n)
    }

    /// The budget governor in force, if any.
    pub fn governor(&self) -> Option<&Arc<BudgetGovernor>> {
        self.inner.governor.as_ref()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StripedStats {
        let c = &self.inner.counters;
        StripedStats {
            queries: c.queries.load(Ordering::Relaxed),
            reissues: c.reissues.load(Ordering::Relaxed),
            reissue_wins: c.reissue_wins.load(Ordering::Relaxed),
            decodes_with_parity: c.decodes_with_parity.load(Ordering::Relaxed),
            cancelled_in_time: c.cancelled_in_time.load(Ordering::Relaxed),
            pairs_exact: c.pairs_exact.load(Ordering::Relaxed),
            pairs_censored: c.pairs_censored.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    /// Quantile of end-to-end striped-read latencies (ms).
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.inner
            .latencies_ms
            .lock()
            .unwrap()
            .quantile(q.clamp(0.0, 1.0))
    }

    /// Writes `value` as a `(k, n)` stripe: slot `s`'s fragment to the
    /// key's rotated replica `(s + offset) % n`. Blocking convenience
    /// for seeding; awaits every `FSET` acknowledgement.
    pub fn put_blocking(&self, key: &[u8], value: &[u8]) -> Result<(), TransportError> {
        let inner = self.inner.clone();
        let frags = codec::encode_stripe(value, inner.k, inner.n)
            .map_err(|e| TransportError::Protocol(e.to_string()))?;
        let key = Bytes::copy_from_slice(key);
        let offset = crate::placement_offset(&key, inner.n);
        self.inner.rt.block_on(async move {
            for (slot, frag) in frags.into_iter().enumerate() {
                let cmd = Command::FSet(key.clone(), slot as u32, frag);
                let reply = inner
                    .replicas
                    .replica((slot + offset) % inner.n)
                    .request_tied(cmd, CancelToken::new(), None)
                    .await?;
                if !matches!(reply, Reply::Ok) {
                    return Err(TransportError::Protocol(format!(
                        "FSET slot {slot} replied {reply:?}"
                    )));
                }
            }
            Ok(())
        })
    }

    /// Executes one command. `GET` runs the k-of-n fragment race;
    /// `SET` writes a stripe; everything else passes through to a
    /// round-robin replica untouched. The returned future is
    /// `'static`: spawn any number concurrently.
    pub fn execute(
        &self,
        cmd: Command,
    ) -> impl std::future::Future<Output = Result<Reply, TransportError>> + Send + 'static {
        let inner = self.inner.clone();
        async move {
            match cmd {
                Command::Get(key) => ScInner::striped_get(inner, key).await,
                Command::Set(key, value) => {
                    let frags = codec::encode_stripe(&value, inner.k, inner.n)
                        .map_err(|e| TransportError::Protocol(e.to_string()))?;
                    let offset = crate::placement_offset(&key, inner.n);
                    for (slot, frag) in frags.into_iter().enumerate() {
                        let cmd = Command::FSet(key.clone(), slot as u32, frag);
                        inner
                            .replicas
                            .replica((slot + offset) % inner.n)
                            .request_tied(cmd, CancelToken::new(), None)
                            .await?;
                    }
                    Ok(Reply::Ok)
                }
                other => {
                    let idx = inner.replicas.pick_primary() % inner.n;
                    inner
                        .replicas
                        .replica(idx)
                        .request_tied(other, CancelToken::new(), None)
                        .await
                }
            }
        }
    }

    /// Blocking convenience wrapper around [`StripedClient::execute`].
    pub fn execute_blocking(&self, cmd: Command) -> Result<Reply, TransportError> {
        let fut = self.execute(cmd);
        self.inner.rt.block_on(fut)
    }
}

impl hedge::LoadClient for StripedClient {
    fn load_runtime(&self) -> &Runtime {
        self.runtime()
    }

    fn load_execute(
        &self,
        cmd: Command,
    ) -> impl std::future::Future<Output = Result<Reply, TransportError>> + Send + 'static {
        self.execute(cmd)
    }

    fn load_counters(&self) -> (u64, u64) {
        let s = self.stats();
        (s.queries, s.reissues)
    }
}

/// How one fragment attempt ended, for pair booking. The censoring
/// *bound* (elapsed at retraction) is not retained — this client keeps
/// pair counters, not an online adapter; wiring the bounds into
/// `reissue_core::online` is future work.
#[derive(Clone, Copy)]
enum Fate {
    Exact,
    Censored,
    Failed,
}

/// One in-flight fragment attempt.
struct FragMeta {
    token: CancelToken,
    slot: usize,
    /// `Some(order)` for reissues (0 = first dispatched).
    reissue_order: Option<usize>,
}

impl ScInner {
    fn governor_allows(&self) -> bool {
        self.governor.as_ref().is_none_or(|g| g.allows())
    }

    /// The k-of-n fragment race (see module docs).
    async fn striped_get(self: Arc<Self>, key: Bytes) -> Result<Reply, TransportError> {
        let schedule: Vec<(usize, f64)> = {
            let mut st = self.state.lock().unwrap();
            let st = &mut *st;
            st.policy.sample_schedule_indexed(&mut st.rng)
        };
        let started = Instant::now();
        let tied = self.cancellation == CancellationStyle::Tied && !schedule.is_empty();
        let offset = crate::placement_offset(&key, self.n);

        // Primary wave: the k data fragments, slot s on the key's
        // rotated replica (s + offset) % n. Under tied cancellation
        // each registers a tie id so the first reissue can later name
        // whichever of them is still straggling.
        let mut futs: Vec<InFlight> = Vec::with_capacity(self.k);
        let mut meta: Vec<FragMeta> = Vec::with_capacity(self.k);
        let mut data_tie_ids: Vec<Option<u64>> = Vec::with_capacity(self.k);
        for slot in 0..self.k {
            let tie = tied.then(|| TieSpec {
                id: next_tie_id(),
                peer: None,
            });
            data_tie_ids.push(tie.as_ref().map(|t| t.id));
            let token = CancelToken::new();
            futs.push(
                self.replicas
                    .replica((slot + offset) % self.n)
                    .request_tied(Command::FGet(key.clone(), slot as u32), token.clone(), tie),
            );
            meta.push(FragMeta {
                token,
                slot,
                reissue_order: None,
            });
        }

        let mut pending: VecDeque<(usize, f64, Instant)> = schedule
            .iter()
            .map(|&(stage, delay_ms)| {
                (
                    stage,
                    delay_ms,
                    started + Duration::from_secs_f64(delay_ms.max(0.0) / 1e3),
                )
            })
            .collect();

        // Fragment payloads by slot, plus which slots resolved how.
        let mut fragments: Vec<Option<Bytes>> = vec![None; self.n];
        let mut nil_slots = 0usize;
        let mut fates: Vec<(usize, Option<usize>, Fate)> = Vec::new();
        let mut dispatched_reissues = 0usize;
        let mut straggler_slot: Option<usize> = None;
        let mut last_err: Option<TransportError> = None;
        let mut winner_was_reissue = false;

        let outcome = loop {
            let present = (0..self.n).filter(|&s| fragments[s].is_some());
            if decodable(self.k, present) {
                break Ok(());
            }
            // Every data slot resolved Nil: the key has no stripe.
            if nil_slots >= self.k {
                break Err(None);
            }
            if futs.is_empty() {
                // Nothing in flight and not yet decodable: rescue from
                // the remaining schedule immediately, or give up.
                let next_slot = self.k + dispatched_reissues;
                let Some(&(_stage, _, _)) = pending.front() else {
                    break Err(last_err.take());
                };
                if next_slot >= self.n || !self.governor_allows() {
                    break Err(last_err.take());
                }
                pending.pop_front();
                self.dispatch_fragment_reissue(
                    &key,
                    offset,
                    next_slot,
                    &mut dispatched_reissues,
                    &mut straggler_slot,
                    &data_tie_ids,
                    &fragments,
                    &fates,
                    &mut futs,
                    &mut meta,
                );
                continue;
            }
            let (i, out, rest) = if let Some(&(_stage, delay_ms, deadline)) = pending.front() {
                match race(select_all(futs), self.rt.sleep_until(deadline)).await {
                    Either::Left((sel_out, _timer)) => sel_out,
                    Either::Right((sel, ())) => {
                        futs = sel.into_futures();
                        let next_slot = self.k + dispatched_reissues;
                        if next_slot >= self.n {
                            // Out of parity slots: nothing left to
                            // reissue, drop the remaining schedule.
                            pending.clear();
                            continue;
                        }
                        if !self.governor_allows() {
                            // Re-ask one stage-delay later (floored so
                            // a d=0 stage cannot hot-spin), same as the
                            // replica-hedging client.
                            let interval = Duration::from_secs_f64(delay_ms.max(0.1) / 1e3);
                            pending.front_mut().expect("stage present").2 =
                                Instant::now() + interval;
                            continue;
                        }
                        pending.pop_front();
                        self.dispatch_fragment_reissue(
                            &key,
                            offset,
                            next_slot,
                            &mut dispatched_reissues,
                            &mut straggler_slot,
                            &data_tie_ids,
                            &fragments,
                            &fates,
                            &mut futs,
                            &mut meta,
                        );
                        continue;
                    }
                }
            } else {
                select_all(futs).await
            };
            let m = meta.remove(i);
            futs = rest;
            match out {
                Ok(Reply::Str(payload)) => {
                    fragments[m.slot] = Some(payload);
                    winner_was_reissue = m.reissue_order.is_some();
                    fates.push((m.slot, m.reissue_order, Fate::Exact));
                }
                Ok(Reply::Nil) => {
                    // Absent fragment: not an error in transit, but it
                    // can never contribute to the decode.
                    if m.slot < self.k {
                        nil_slots += 1;
                    }
                    fates.push((m.slot, m.reissue_order, Fate::Failed));
                }
                Ok(other) => {
                    last_err = Some(TransportError::Protocol(format!(
                        "FGET slot {} replied {other:?}",
                        m.slot
                    )));
                    fates.push((m.slot, m.reissue_order, Fate::Failed));
                }
                Err(TransportError::Cancelled) => {
                    // A tied peer retracted this fragment server-side.
                    self.counters
                        .cancelled_in_time
                        .fetch_add(1, Ordering::Relaxed);
                    fates.push((m.slot, m.reissue_order, Fate::Censored));
                    last_err = Some(TransportError::Cancelled);
                }
                Err(e) => {
                    last_err = Some(e.clone());
                    fates.push((m.slot, m.reissue_order, Fate::Failed));
                }
            }
        };

        // Race resolved: retract every still-outstanding attempt and
        // drain it asynchronously. Pair participants (the straggler
        // data slot the first reissue named, and that first reissue)
        // report into the two-sided book; everything else just counts
        // its cancel.
        for m in &meta {
            m.token.cancel();
        }
        let raced = dispatched_reissues > 0;
        let book = raced.then(|| {
            Arc::new(Mutex::new(PairBook {
                straggler: None,
                reissue: None,
            }))
        });
        if let Some(book) = &book {
            for (slot, order, fate) in &fates {
                if let Some(side) = pair_side(*slot, *order, straggler_slot) {
                    self.report_pair_side(book, side, *fate);
                }
            }
            // No straggler was ever named (every data slot had already
            // resolved when the first reissue went out): close that
            // side so the reissue's report is not orphaned.
            if straggler_slot.is_none() {
                self.report_pair_side(book, PairSide::Straggler, Fate::Failed);
            }
        }
        for (fut, m) in futs.into_iter().zip(meta) {
            let side = book
                .as_ref()
                .and_then(|_| pair_side(m.slot, m.reissue_order, straggler_slot));
            match (side, &book) {
                (Some(side), Some(book)) => {
                    self.clone().drain_into_book(fut, book.clone(), side);
                }
                _ => self.clone().drain_counting(fut),
            }
        }

        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = &self.governor {
            g.note_query();
        }

        match outcome {
            Ok(()) => {
                let have_data = (0..self.k).filter(|&s| fragments[s].is_some()).count();
                if have_data < self.k {
                    self.counters
                        .decodes_with_parity
                        .fetch_add(1, Ordering::Relaxed);
                }
                if winner_was_reissue {
                    self.counters.reissue_wins.fetch_add(1, Ordering::Relaxed);
                }
                let present: Vec<&Bytes> = fragments.iter().flatten().collect();
                match codec::decode_stripe(&present) {
                    Ok(value) => {
                        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                        self.latencies_ms.lock().unwrap().record(elapsed_ms);
                        Ok(Reply::Str(value))
                    }
                    Err(e @ CodecError::Insufficient { .. }) => {
                        // decodable() and decode_stripe() agree on the
                        // slot arithmetic; reaching this arm means a
                        // malformed stored fragment, not a logic race.
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        Ok(Reply::Error(format!("ERASURE {e}")))
                    }
                    Err(e) => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        Ok(Reply::Error(format!("ERASURE {e}")))
                    }
                }
            }
            // All data slots answered Nil: the key simply isn't there.
            Err(None) if nil_slots >= self.k => Ok(Reply::Nil),
            Err(maybe_err) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                match maybe_err {
                    Some(e) => Err(e),
                    None => Ok(Reply::Error(
                        "ERASURE undecodable: too few fragments".into(),
                    )),
                }
            }
        }
    }

    /// Dispatches parity slot `next_slot` as a fragment reissue. The
    /// first reissue of a tied stripe names the straggler — the
    /// lowest-index data slot still outstanding — as its tie peer, so
    /// the servers race each other to retract the loser.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_fragment_reissue(
        &self,
        key: &Bytes,
        offset: usize,
        next_slot: usize,
        dispatched_reissues: &mut usize,
        straggler_slot: &mut Option<usize>,
        data_tie_ids: &[Option<u64>],
        fragments: &[Option<Bytes>],
        fates: &[(usize, Option<usize>, Fate)],
        futs: &mut Vec<InFlight>,
        meta: &mut Vec<FragMeta>,
    ) {
        self.counters.reissues.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = &self.governor {
            g.note_reissue();
        }
        let tie = if *dispatched_reissues == 0 {
            let resolved: std::collections::HashSet<usize> =
                fates.iter().map(|(slot, _, _)| *slot).collect();
            let straggler = (0..self.k).find(|&s| fragments[s].is_none() && !resolved.contains(&s));
            *straggler_slot = straggler;
            straggler.and_then(|s| {
                data_tie_ids[s].map(|peer_id| TieSpec {
                    id: next_tie_id(),
                    peer: Some((self.replicas.replica((s + offset) % self.n).addr(), peer_id)),
                })
            })
        } else {
            None
        };
        let token = CancelToken::new();
        futs.push(
            self.replicas
                .replica((next_slot + offset) % self.n)
                .request_tied(
                    Command::FGet(key.clone(), next_slot as u32),
                    token.clone(),
                    tie,
                ),
        );
        meta.push(FragMeta {
            token,
            slot: next_slot,
            reissue_order: Some(*dispatched_reissues),
        });
        *dispatched_reissues += 1;
    }

    /// Drains a non-pair loser: completions are discarded, in-time
    /// retractions counted.
    fn drain_counting(self: Arc<Self>, fut: InFlight) {
        let rt = self.rt.clone();
        rt.spawn(async move {
            if let Err(TransportError::Cancelled) = fut.await {
                self.counters
                    .cancelled_in_time
                    .fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// Records one side of the `(straggler, first reissue)` pair;
    /// whichever report fills the second slot emits the pair counters.
    fn report_pair_side(&self, book: &Arc<Mutex<PairBook>>, side: PairSide, fate: Fate) {
        let (s, r) = {
            let mut b = book.lock().unwrap();
            match side {
                PairSide::Straggler => b.straggler = Some(fate),
                PairSide::Reissue => b.reissue = Some(fate),
            }
            match (b.straggler, b.reissue) {
                (Some(s), Some(r)) => (s, r),
                _ => return,
            }
        };
        match (s, r) {
            (Fate::Exact, Fate::Exact) => {
                self.counters.pairs_exact.fetch_add(1, Ordering::Relaxed);
            }
            // Both sides censored, or either side failed: nothing a
            // joint observation could anchor on.
            (Fate::Censored, Fate::Censored) => {}
            (Fate::Censored, Fate::Exact) | (Fate::Exact, Fate::Censored) => {
                self.counters.pairs_censored.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Drains a pair participant that was still outstanding when the
    /// race resolved, reporting its fate to the book.
    fn drain_into_book(self: Arc<Self>, fut: InFlight, book: Arc<Mutex<PairBook>>, side: PairSide) {
        let rt = self.rt.clone();
        rt.spawn(async move {
            let fate = match fut.await {
                Ok(_) => Fate::Exact,
                Err(TransportError::Cancelled) => {
                    self.counters
                        .cancelled_in_time
                        .fetch_add(1, Ordering::Relaxed);
                    Fate::Censored
                }
                Err(_) => Fate::Failed,
            };
            self.report_pair_side(&book, side, fate);
        });
    }
}

/// Which pair side an attempt belongs to, if any.
#[derive(Clone, Copy)]
enum PairSide {
    Straggler,
    Reissue,
}

fn pair_side(slot: usize, order: Option<usize>, straggler_slot: Option<usize>) -> Option<PairSide> {
    match order {
        Some(0) => Some(PairSide::Reissue),
        Some(_) => None,
        None if Some(slot) == straggler_slot => Some(PairSide::Straggler),
        None => None,
    }
}

/// Two-sided `(straggler, first reissue)` booking; `None` = pending.
struct PairBook {
    straggler: Option<Fate>,
    reissue: Option<Fate>,
}
