//! Property tests (vendored proptest shim — deterministic per-test
//! RNG, no shrinking) for the XOR stripe codec: split → any decodable
//! k-subset → byte-identical value, across random lengths (odd sizes
//! and non-multiples of k included), random geometries, and subsets
//! that substitute a parity clone for a data fragment.

use erasure::codec::{decodable, decode_stripe, encode_stripe, fragment_len, CodecError};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random payload whose bytes depend on the seed (so stripes differ
/// between slots and cases), with lengths deliberately straddling
/// `k`-multiples, odd sizes, and zero.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All-data subsets reconstruct byte-identically for every
    /// geometry 1 ≤ k < n ≤ 8 and lengths that exercise odd sizes,
    /// `k`-multiples ± 1, and the empty value.
    #[test]
    fn all_data_roundtrip(
        k in 1usize..6,
        extra in 1usize..3,
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let value = payload(len, seed);
        let frags = encode_stripe(&value, k, n).unwrap();
        prop_assert_eq!(frags.len(), n);
        for f in &frags {
            prop_assert_eq!(
                f.len(),
                erasure::codec::HEADER_LEN + fragment_len(len, k),
                "all fragments are the padded stripe width"
            );
        }
        let got = decode_stripe(&frags[..k]).unwrap();
        prop_assert_eq!(&got[..], &value[..]);
    }

    /// Parity-in-the-k-set: for every data slot `m`, the subset that
    /// drops `m` and substitutes one parity clone still reconstructs
    /// byte-identically — and this matches the `decodable` predicate.
    #[test]
    fn any_k_of_n_with_parity_roundtrip(
        k in 1usize..6,
        extra in 1usize..3,
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let value = payload(len, seed);
        let frags = encode_stripe(&value, k, n).unwrap();
        for missing in 0..k {
            for parity_slot in k..n {
                let subset: Vec<_> = (0..k)
                    .filter(|&s| s != missing)
                    .chain([parity_slot])
                    .collect();
                prop_assert!(decodable(k, subset.iter().copied()));
                let picked: Vec<_> = subset.iter().map(|&s| &frags[s]).collect();
                let got = decode_stripe(&picked).unwrap();
                prop_assert_eq!(
                    &got[..], &value[..],
                    "k={k} n={n} len={len} missing={missing} via parity {parity_slot}"
                );
            }
        }
    }

    /// Order independence: a decodable subset reconstructs the same
    /// bytes no matter how its fragments are permuted (the wire hands
    /// them back in completion order, not slot order).
    #[test]
    fn decode_is_order_independent(
        k in 2usize..6,
        len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let n = k + 1;
        let value = payload(len, seed);
        let frags = encode_stripe(&value, k, n).unwrap();
        // Drop slot 0, keep the parity, rotate through k orderings.
        let subset: Vec<_> = (1..=k).map(|s| frags[s].clone()).collect();
        for rot in 0..subset.len() {
            let mut perm = subset.clone();
            perm.rotate_left(rot);
            let got = decode_stripe(&perm).unwrap();
            prop_assert_eq!(&got[..], &value[..], "rotation {rot}");
        }
    }

    /// Undecodable subsets are rejected, never silently wrong: any
    /// k-subset with two parity clones (k − 2 data equations), and any
    /// subset smaller than k without parity, errors with
    /// `Insufficient`.
    #[test]
    fn undecodable_subsets_error(
        k in 2usize..6,
        len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let n = k + 2;
        let value = payload(len, seed);
        let frags = encode_stripe(&value, k, n).unwrap();
        // Two parity clones displace two data fragments.
        let subset: Vec<_> = (2..k).chain([k, k + 1]).collect();
        prop_assert!(!decodable(k, subset.iter().copied()));
        let picked: Vec<_> = subset.iter().map(|&s| &frags[s]).collect();
        prop_assert!(matches!(
            decode_stripe(&picked),
            Err(CodecError::Insufficient { .. })
        ));
        // k − 1 data fragments alone.
        let short: Vec<_> = (1..k).map(|s| &frags[s]).collect();
        prop_assert!(matches!(
            decode_stripe(&short),
            Err(CodecError::Insufficient { .. })
        ));
    }
}
