//! End-to-end k-of-n integration over real TCP: a `(k = 2, n = 4)`
//! stripe where one fragment server is stalled behind a
//! byte-expensive blocker. The hedged read must complete via the
//! parity fragment, retract the straggler, and book the censored
//! `(straggler, reissue)` pair — the full fragment-hedging loop the
//! tentpole promises.

use bytes::{Bytes, BytesMut};
use erasure::{StripedBackend, StripedClient, StripedConfig};
use hedge::{CancellationStyle, TcpServer, TcpServerConfig};
use kvstore::resp::encode_command;
use kvstore::{Command, KvStore, Reply};
use reissue_core::policy::ReissuePolicy;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const BYTES_PER_UNIT: u64 = 64;

/// Binds `n` fragment servers, seeds them with `key`'s `(k, n)` stripe
/// (slot `s` on the key's rotated replica `(s + offset) % n`, matching
/// the client's placement), and returns them.
fn bind_striped_servers(
    key: &str,
    value: &[u8],
    k: usize,
    cfgs: &[TcpServerConfig],
) -> Vec<TcpServer<StripedBackend>> {
    let n = cfgs.len();
    let frags = erasure::encode_stripe(value, k, n).unwrap();
    let offset = erasure::placement_offset(key.as_bytes(), n);
    let servers: Vec<_> = cfgs
        .iter()
        .map(|cfg| {
            TcpServer::bind(
                "127.0.0.1:0",
                StripedBackend::new(KvStore::new(), BYTES_PER_UNIT),
                *cfg,
            )
            .unwrap()
        })
        .collect();
    for (slot, frag) in frags.iter().enumerate() {
        servers[(slot + offset) % n].with_store(|s| {
            s.store_mut().execute(&Command::FSet(
                Bytes::copy_from_slice(key.as_bytes()),
                slot as u32,
                frag.clone(),
            ))
        });
    }
    servers
}

/// Plain striped round-trip, no hedging: put through the client, get
/// back byte-identical; a missing key reads as `Nil`.
#[test]
fn striped_put_get_roundtrip() {
    let cfg = TcpServerConfig::default();
    let servers: Vec<TcpServer<StripedBackend>> = (0..3)
        .map(|_| {
            TcpServer::bind(
                "127.0.0.1:0",
                StripedBackend::new(KvStore::new(), BYTES_PER_UNIT),
                cfg,
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    let client = StripedClient::connect(
        &addrs,
        StripedConfig {
            k: 2,
            ..StripedConfig::default()
        },
    )
    .unwrap();

    let value: Vec<u8> = (0..10_007u32).map(|i| (i % 251) as u8).collect();
    client.put_blocking(b"stripe:alpha", &value).unwrap();
    let got = client
        .execute_blocking(Command::Get(Bytes::from_static(b"stripe:alpha")))
        .unwrap();
    assert_eq!(got, Reply::Str(Bytes::from(value)));

    let missing = client
        .execute_blocking(Command::Get(Bytes::from_static(b"stripe:absent")))
        .unwrap();
    assert_eq!(missing, Reply::Nil);

    let stats = client.stats();
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.reissues, 0, "no policy, no reissues");
    assert_eq!(stats.errors, 0);
}

/// The tentpole acceptance scenario: `k = 2, n = 4`, the server for
/// data slot 1 stalled behind a byte-expensive blocker. The `(d, q)`
/// timer fires on the straggling fragment, the parity reissue (slot 2)
/// completes the stripe, the straggler is retracted in time via the
/// tied-request channel, and the censored pair is booked.
#[test]
fn stalled_fragment_completes_via_parity_and_books_censored_pair() {
    let k = 2;
    let n = 4;
    let fast = TcpServerConfig::default();
    // Data slot 1's server burns real wall-clock per cost unit, so the
    // blocker below occupies it for ~0.5 s while everything it queues
    // behind stays retractable. Placement is rotated per key, so first
    // resolve which physical server holds slot 1 for this key.
    let slow = TcpServerConfig {
        nanos_per_op: 30_000,
        ..TcpServerConfig::default()
    };
    let slow_idx = (1 + erasure::placement_offset(b"stripe:hot", n)) % n;
    let mut cfgs = vec![fast; n];
    cfgs[slow_idx] = slow;
    let value: Vec<u8> = (0..60_000u32).map(|i| (i % 249) as u8).collect();
    let servers = bind_striped_servers("stripe:hot", &value, k, &cfgs);
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    // Stall slot 1: a ~1 MiB value read costs ~16 385 units × 30 µs
    // ≈ 0.5 s of burn. Sent on its own connection; the reply is never
    // read (the socket just holds the server busy).
    servers[slow_idx].with_store(|s| {
        s.store_mut().execute(&Command::Set(
            Bytes::from_static(b"blocker"),
            Bytes::from(vec![0xBBu8; 1 << 20]),
        ))
    });
    let mut blocker = TcpStream::connect(addrs[slow_idx]).unwrap();
    let mut frame = BytesMut::new();
    encode_command(&Command::Get(Bytes::from_static(b"blocker")), &mut frame);
    blocker.write_all(&frame).unwrap();
    // Give the blocker time to reach the head of the queue and start
    // executing before the fragment read arrives behind it.
    std::thread::sleep(Duration::from_millis(60));

    let client = StripedClient::connect(
        &addrs,
        StripedConfig {
            k,
            policy: ReissuePolicy::single_r(5.0, 1.0),
            cancellation: CancellationStyle::Tied,
            ..StripedConfig::default()
        },
    )
    .unwrap();

    let started = Instant::now();
    let got = client
        .execute_blocking(Command::Get(Bytes::from_static(b"stripe:hot")))
        .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(got, Reply::Str(Bytes::from(value)), "decode must be exact");
    assert!(
        elapsed < Duration::from_millis(400),
        "hedged stripe should complete via parity long before the \
         blocker drains (~0.5 s); took {elapsed:?}"
    );

    let stats = client.stats();
    assert_eq!(stats.queries, 1);
    assert_eq!(stats.reissues, 1, "exactly one parity reissue");
    assert_eq!(stats.reissue_wins, 1, "the parity fragment closed the race");
    assert_eq!(
        stats.decodes_with_parity, 1,
        "the decode used the parity equation for the stalled slot"
    );
    assert_eq!(stats.errors, 0);

    // The straggler's retraction and the pair booking are async (the
    // loser drains on the runtime): poll for them.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = client.stats();
        if s.pairs_censored == 1 && s.cancelled_in_time >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "straggler retraction never booked: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The stalled server must have retracted the fragment rather than
    // serving it: only the blocker's GET ever executed there.
    assert_eq!(
        servers[slow_idx].stats().commands,
        1,
        "slot 1's FGET must be retracted, not served"
    );
}
