//! Criterion benches for discrete-event-simulator throughput under the
//! paper's cluster configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use distributions::Pareto;
use reissue_core::ReissuePolicy;
use simulator::{
    simulate, ArrivalProcess, Balancer, ClusterConfig, CorrelatedService, Discipline, RunConfig,
};

fn bench_des_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_throughput");
    let queries = 20_000usize;
    group.throughput(Throughput::Elements(queries as u64));

    let configs: Vec<(&str, ClusterConfig)> = vec![
        (
            "fifo_random",
            ClusterConfig {
                servers: 10,
                ..ClusterConfig::default()
            },
        ),
        (
            "fifo_min_of_all",
            ClusterConfig {
                servers: 10,
                balancer: Balancer::MinOfAll,
                ..ClusterConfig::default()
            },
        ),
        (
            "round_robin_16",
            ClusterConfig {
                servers: 10,
                discipline: Discipline::RoundRobin { connections: 16 },
                ..ClusterConfig::default()
            },
        ),
        (
            "prioritized_fifo",
            ClusterConfig {
                servers: 10,
                discipline: Discipline::PrioritizedFifo,
                ..ClusterConfig::default()
            },
        ),
    ];

    for (name, cluster) in configs {
        group.bench_with_input(BenchmarkId::new("hedged", name), &cluster, |b, cluster| {
            b.iter(|| {
                let mut service = CorrelatedService::new(Pareto::paper_default(), 0.5);
                let run = RunConfig {
                    queries,
                    warmup: 0,
                    seed: 1,
                    arrival: ArrivalProcess::poisson_for_utilization(0.3, 10, 22.0),
                };
                simulate(
                    cluster,
                    &run,
                    &mut service,
                    &ReissuePolicy::single_r(30.0, 0.5),
                )
                .records
                .len()
            })
        });
    }
    group.finish();
}

fn bench_policy_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_overhead");
    let queries = 20_000usize;
    group.throughput(Throughput::Elements(queries as u64));
    for (name, policy) in [
        ("none", ReissuePolicy::None),
        ("single_r", ReissuePolicy::single_r(30.0, 0.5)),
        (
            "multiple_r_3",
            ReissuePolicy::multiple_r(vec![(20.0, 0.3), (40.0, 0.3), (80.0, 0.3)]),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut service = CorrelatedService::new(Pareto::paper_default(), 0.5);
                let run = RunConfig {
                    queries,
                    warmup: 0,
                    seed: 2,
                    arrival: ArrivalProcess::poisson_for_utilization(0.3, 10, 22.0),
                };
                simulate(
                    &ClusterConfig {
                        servers: 10,
                        ..ClusterConfig::default()
                    },
                    &run,
                    &mut service,
                    &policy,
                )
                .records
                .len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_des_throughput, bench_policy_overhead
}
criterion_main!(benches);
