//! Criterion benches for `ComputeOptimalSingleR`, including the
//! finger-cursor vs binary-search ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distributions::rng::seeded;
use distributions::{Exponential, Pareto, Sample};
use reissue_core::{compute_optimal_single_r, compute_optimal_single_r_correlated, Ecdf};

/// A deliberately naive re-implementation of the optimizer's success
/// sweep using `O(log N)` binary-search CDF evaluations instead of the
/// amortized-O(1) finger cursors — the ablation baseline.
fn optimal_single_r_binary_search(rx: &[f64], ry: &[f64], k: f64, budget: f64) -> (f64, f64) {
    let x = Ecdf::new(rx.to_vec());
    let y = Ecdf::new(ry.to_vec());
    let xs = x.samples().to_vec();
    let n = xs.len();
    let success = |t: f64, d: f64| -> f64 {
        let p_le = x.cdf_strict(t);
        let p_gt = 1.0 - x.cdf_strict(d);
        let q = if p_gt > 0.0 {
            (budget / p_gt).min(1.0)
        } else {
            0.0
        };
        p_le + q * (1.0 - p_le) * y.cdf_strict(t - d)
    };
    let (mut lo, mut hi) = (0usize, n - 1);
    let mut d_star = xs[0];
    let mut t = xs[n - 1];
    while lo <= hi {
        let d = xs[lo];
        lo += 1;
        if d > t {
            break;
        }
        let mut alpha = success(t, d);
        while alpha > k && t > d && hi > 0 {
            hi -= 1;
            t = xs[hi];
            d_star = d;
            alpha = success(t, d);
        }
        if lo > hi {
            break;
        }
    }
    (d_star, t)
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    for &n in &[10_000usize, 100_000] {
        let mut rng = seeded(1);
        let rx = Pareto::paper_default().sample_n(&mut rng, n);
        let ry = Pareto::paper_default().sample_n(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("finger_cursor", n), &n, |b, _| {
            b.iter(|| compute_optimal_single_r(&rx, &ry, 0.99, 0.05))
        });
        group.bench_with_input(BenchmarkId::new("binary_search", n), &n, |b, _| {
            b.iter(|| optimal_single_r_binary_search(&rx, &ry, 0.99, 0.05))
        });
    }
    group.finish();
}

fn bench_correlated(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_correlated");
    for &n in &[10_000usize, 100_000] {
        let mut rng = seeded(2);
        let d = Exponential::new(1.0);
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let x = d.sample(&mut rng);
                (x, 0.5 * x + d.sample(&mut rng))
            })
            .collect();
        let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        group.bench_with_input(BenchmarkId::new("fenwick_sweep", n), &n, |b, _| {
            b.iter(|| compute_optimal_single_r_correlated(&rx, &pairs, 0.99, 0.05))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_optimizer, bench_correlated
}
criterion_main!(benches);
