//! Benchmarks for the speculative-execution runtime: `None` vs
//! `SingleD` vs two-stage `DoubleR` vs online-adapted `SingleR`, end
//! to end through real TCP kvstore replicas.

use criterion::{criterion_group, criterion_main, Criterion};
use hedge::{HedgeConfig, HedgedClient, TcpServer, TcpServerConfig};
use kvstore::{Command, IntSet, KvStore, Reply};
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

fn store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set(
        "evens",
        IntSet::from_unsorted((0..500u32).map(|i| i * 2).collect()),
    );
    store.load_set(
        "threes",
        IntSet::from_unsorted((0..500u32).map(|i| i * 3).collect()),
    );
    store
}

fn cluster() -> (Vec<TcpServer>, Vec<std::net::SocketAddr>) {
    let servers =
        hedge::spawn_replicas(3, &store(), TcpServerConfig::default()).expect("bind replicas");
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    (servers, addrs)
}

fn bench_policy(c: &mut Criterion, name: &str, cfg: HedgeConfig) {
    let (_servers, addrs) = cluster();
    let client = HedgedClient::connect(&addrs, cfg).expect("connect");
    let mut group = c.benchmark_group("hedged_query");
    group.bench_function(name, |b| {
        b.iter(|| {
            let r = client
                .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
                .unwrap();
            assert!(matches!(r, Reply::Int(_)));
        })
    });
    group.finish();
}

fn bench_none(c: &mut Criterion) {
    bench_policy(
        c,
        "policy_none",
        HedgeConfig {
            policy: ReissuePolicy::None,
            ..HedgeConfig::default()
        },
    );
}

fn bench_single_d(c: &mut Criterion) {
    bench_policy(
        c,
        "policy_single_d_2ms",
        HedgeConfig {
            policy: ReissuePolicy::single_d(2.0),
            ..HedgeConfig::default()
        },
    );
}

fn bench_double_r(c: &mut Criterion) {
    // A two-stage MultipleR schedule through the staged-race path:
    // measures the per-query cost of arming multiple deadline timers
    // and the N-way select against the single-timer SingleD baseline.
    bench_policy(
        c,
        "policy_double_r_2ms_6ms",
        HedgeConfig {
            policy: ReissuePolicy::double_r(2.0, 0.5, 6.0, 1.0),
            ..HedgeConfig::default()
        },
    );
}

fn bench_online_single_r(c: &mut Criterion) {
    // Pinned to the §4.1 independence model (min_pairs: usize::MAX).
    bench_policy(
        c,
        "policy_online_single_r",
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(OnlineConfig {
                k: 0.99,
                budget: 0.05,
                window: 512,
                reoptimize_every: 128,
                learning_rate: 0.5,
                min_pairs: usize::MAX,
                load: None,
            }),
            ..HedgeConfig::default()
        },
    );
}

fn bench_online_single_r_correlated(c: &mut Criterion) {
    // The §4.2 censored-pair path: raced hedges feed joint samples and
    // re-optimization runs the correlated optimizer once 32 pairs
    // accumulate — measuring the serving-path cost of the Kaplan–Meier
    // completion + Fenwick sweep against the independent baseline above.
    bench_policy(
        c,
        "policy_online_single_r_correlated",
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(OnlineConfig {
                k: 0.99,
                budget: 0.05,
                window: 512,
                reoptimize_every: 128,
                learning_rate: 0.5,
                min_pairs: 32,
                load: None,
            }),
            ..HedgeConfig::default()
        },
    );
}

fn bench_transport_roundtrip(c: &mut Criterion) {
    let (_servers, addrs) = cluster();
    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            policy: ReissuePolicy::None,
            ..HedgeConfig::default()
        },
    )
    .expect("connect");
    c.bench_function("tcp_ping_roundtrip", |b| {
        b.iter(|| assert_eq!(client.execute_blocking(Command::Ping).unwrap(), Reply::Pong))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_none, bench_single_d, bench_double_r, bench_online_single_r,
        bench_online_single_r_correlated, bench_transport_roundtrip
}
criterion_main!(benches);
