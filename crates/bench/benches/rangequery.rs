//! Criterion benches for the range-query substrates: merge-sort tree
//! vs Fenwick sweep vs brute force for conditional-CDF estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distributions::rng::seeded;
use distributions::{Exponential, Sample};
use rangequery::{FenwickTree, FingerCursor, MergeSortTree, Treap};

fn make_pairs(n: usize) -> Vec<(f64, f64)> {
    let mut rng = seeded(3);
    let d = Exponential::new(1.0);
    (0..n)
        .map(|_| {
            let x = d.sample(&mut rng);
            (x, 0.5 * x + d.sample(&mut rng))
        })
        .collect()
}

fn bench_conditional_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("conditional_count");
    for &n in &[10_000usize, 100_000] {
        let pairs = make_pairs(n);
        let tree = MergeSortTree::new(&pairs);
        // Query workload: 1000 descending-t queries (the optimizer's
        // access pattern).
        let mut ts: Vec<f64> = pairs.iter().map(|p| p.0).take(1000).collect();
        ts.sort_by(|a, b| b.total_cmp(a));

        group.bench_with_input(BenchmarkId::new("merge_sort_tree", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for &t in &ts {
                    acc += tree.count_above_le(t, t * 0.5);
                }
                acc
            })
        });

        group.bench_with_input(BenchmarkId::new("fenwick_sweep", n), &n, |b, _| {
            b.iter(|| {
                let mut y_sorted: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                y_sorted.sort_by(f64::total_cmp);
                let mut by_x = pairs.clone();
                by_x.sort_by(|a, b| b.0.total_cmp(&a.0));
                let mut fw = FenwickTree::new(n);
                let mut next = 0usize;
                let mut acc = 0u64;
                for &t in &ts {
                    while next < by_x.len() && by_x[next].0 > t {
                        let rank = y_sorted.partition_point(|&y| y < by_x[next].1);
                        fw.add(rank.min(n - 1), 1);
                        next += 1;
                    }
                    let below = y_sorted.partition_point(|&y| y < t * 0.5);
                    acc += fw.prefix_sum(below);
                }
                acc
            })
        });

        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &t in &ts {
                        acc += pairs.iter().filter(|p| p.0 > t && p.1 <= t * 0.5).count();
                    }
                    acc
                })
            });
        }
    }
    group.finish();
}

fn bench_cdf_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdf_queries");
    let n = 100_000usize;
    let mut rng = seeded(4);
    let mut xs = Exponential::new(1.0).sample_n(&mut rng, n);
    xs.sort_by(f64::total_cmp);
    // Monotone ascending query values, the optimizer's pattern.
    let qs: Vec<f64> = (0..10_000).map(|i| i as f64 / 1000.0).collect();

    group.bench_function("finger_cursor_monotone", |b| {
        b.iter(|| {
            let mut c = FingerCursor::new(&xs);
            let mut acc = 0usize;
            for &q in &qs {
                acc += c.count_less(q);
            }
            acc
        })
    });
    group.bench_function("binary_search_monotone", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &qs {
                acc += xs.partition_point(|&x| x < q);
            }
            acc
        })
    });
    group.bench_function("treap_insert_100k", |b| {
        b.iter(|| {
            let mut t = Treap::new(7);
            for &x in xs.iter().take(10_000) {
                t.insert(x);
            }
            t.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_conditional_count, bench_cdf_structures
}
criterion_main!(benches);
