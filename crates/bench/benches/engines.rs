//! Criterion micro-benches for the Redis-like and Lucene-like engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvstore::{Dataset, DatasetConfig, IntSet};
use searchengine::{search, Corpus, CorpusConfig};

fn bench_set_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinter");
    // Balanced merge path.
    for &n in &[1_000usize, 100_000] {
        let a = IntSet::from_unsorted((0..n as u32).map(|i| i * 3).collect());
        let b = IntSet::from_unsorted((0..n as u32).map(|i| i * 5).collect());
        group.bench_with_input(BenchmarkId::new("balanced", n), &n, |bch, _| {
            bch.iter(|| a.intersect(&b).0.len())
        });
    }
    // Skewed gallop path.
    let small = IntSet::from_unsorted((0..100u32).map(|i| i * 997).collect());
    let large = IntSet::from_unsorted((0..1_000_000u32).collect());
    group.bench_function("skewed_gallop_100_vs_1M", |bch| {
        bch.iter(|| small.intersect(&large).0.len())
    });
    group.finish();
}

fn bench_dataset_queries(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetConfig {
        num_sets: 200,
        ..DatasetConfig::default()
    });
    c.bench_function("sinter_dataset_pair", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = i % dataset.sets.len();
            let x = (i * 7 + 1) % dataset.sets.len();
            i += 1;
            dataset.sets[a].intersect(&dataset.sets[x]).0.len()
        })
    });
}

fn bench_bm25(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 10_000,
        vocab: 20_000,
        ..CorpusConfig::default()
    });
    let index = corpus.build_index();
    let mut group = c.benchmark_group("bm25");
    group.bench_function("head_term_top10", |b| {
        b.iter(|| search(&index, &[0, 1], 10).0.len())
    });
    group.bench_function("tail_terms_top10", |b| {
        let q = [15_000u32, 16_000, 17_000];
        b.iter(|| search(&index, &q, 10).0.len())
    });
    group.bench_function("index_build_1k_docs", |b| {
        b.iter(|| {
            let mut builder = searchengine::IndexBuilder::new();
            for d in corpus.docs.iter().take(1_000) {
                builder.add_doc(d);
            }
            builder.build().num_docs()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_set_intersection, bench_dataset_queries, bench_bm25
}
criterion_main!(benches);
