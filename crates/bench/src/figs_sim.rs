//! Generators for the simulation figures (§5): Figures 2–6.

use crate::{
    eval_fixed, eval_policy, eval_tuned_single_d, eval_tuned_single_r, median, parallel_map,
    tune_single_r, EvalStats, Scale, Table,
};
use reissue_core::metrics::quantile;
use reissue_core::ReissuePolicy;
use simulator::{Balancer, Discipline};
use workloads::runner::{optimal_policy_static, single_d_static};
use workloads::{
    correlated, independent, queueing, queueing_custom, DistSpec, RunConfig, WorkloadSpec,
};

/// Tail percentile targeted by the §5 simulation figures.
const K: f64 = 0.95;

/// Budgets swept in Figure 3 (x-axis "Reissue Rate", 0–0.3).
const FIG3_BUDGETS: [f64; 9] = [0.01, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.25, 0.30];

/// Reissue-rate sweep for Figures 5b/5c (0–0.5).
const FIG5_BUDGETS: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5];

/// Figure 2a: inverse CDFs of the Original response-time distribution
/// vs the Primary / Reissue / SingleR distributions under a 30 % budget
/// on the correlated Queueing workload.
pub fn fig2a(scale: Scale) -> Vec<Table> {
    let spec = queueing(0.3, 0.5, 21);
    let queries = scale.queries(50_000);
    let seed = 77;

    let base = spec.run(
        &RunConfig {
            seed,
            ..RunConfig::new(queries)
        },
        &ReissuePolicy::None,
    );
    let adapted = tune_single_r(&spec, queries, seed, K, 0.30, scale.trials(6), 0.2);
    let tuned = spec.run(
        &RunConfig {
            seed: seed + 1,
            ..RunConfig::new(queries)
        },
        &adapted.policy,
    );

    let original = base.latencies();
    let singler = tuned.latencies();
    let primary = tuned.primaries();
    let reissue: Vec<f64> = tuned.pairs().iter().map(|p| p.1).collect();

    let mut t = Table::new(
        "fig2a_inverse_cdf",
        &["cdf", "original", "singler", "reissue", "primary"],
    );
    let mut level = 0.60;
    while level < 0.985 {
        t.push(vec![
            level,
            quantile(&original, level),
            quantile(&singler, level),
            if reissue.is_empty() {
                f64::NAN
            } else {
                quantile(&reissue, level)
            },
            quantile(&primary, level),
        ]);
        level += 0.02;
    }
    vec![t]
}

/// Figure 2b: convergence of the adaptive algorithm — predicted vs
/// actual P95 per adaptive trial (λ = 0.2, B = 30 %).
pub fn fig2b(scale: Scale) -> Vec<Table> {
    let spec = queueing(0.3, 0.5, 22);
    let queries = scale.queries(30_000);
    let result = tune_single_r(&spec, queries, 131, K, 0.30, scale.trials(10), 0.2);
    let mut t = Table::new(
        "fig2b_adaptive_convergence",
        &["trial", "predicted", "actual", "delay", "prob", "rate"],
    );
    for (i, trial) in result.trials.iter().enumerate() {
        t.push(vec![
            i as f64,
            trial.predicted,
            trial.observed,
            trial.delay,
            trial.probability,
            trial.reissue_rate,
        ]);
    }
    vec![t]
}

/// Which §5.1 workload a Figure-3 series belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum W {
    Independent,
    Correlated,
    Queueing,
}

impl W {
    fn spec(self, seed: u64) -> WorkloadSpec {
        match self {
            W::Independent => independent(seed),
            W::Correlated => correlated(0.5, seed),
            W::Queueing => queueing(0.3, 0.5, seed),
        }
    }

    fn label(self) -> &'static str {
        match self {
            W::Independent => "independent",
            W::Correlated => "correlated",
            W::Queueing => "queueing",
        }
    }
}

/// One Figure-3 measurement point.
struct Fig3Point {
    workload: W,
    budget: f64,
    /// Reduction ratio for SingleR / SingleD.
    reduction_r: f64,
    reduction_d: f64,
    single_r: EvalStats,
    single_d: EvalStats,
}

/// Figures 3a/3b/3c: tail-latency reduction ratio, remediation rate and
/// the optimal `(d, q)` per budget, for the three §5.1 workloads under
/// both SingleR and SingleD.
pub fn fig3(scale: Scale) -> Vec<Table> {
    let queries = scale.queries(50_000);
    let seeds = scale.seeds(3);
    let sample_n = scale.queries(100_000);

    // Baselines per workload (median across seeds).
    let baseline = |w: W| -> f64 {
        let vals: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let spec = w.spec(1);
                eval_policy(&spec, queries, &[s], K, &ReissuePolicy::None).0
            })
            .collect();
        median(&vals)
    };
    let base_ind = baseline(W::Independent);
    let base_cor = baseline(W::Correlated);
    let base_que = baseline(W::Queueing);
    let base_of = |w: W| match w {
        W::Independent => base_ind,
        W::Correlated => base_cor,
        W::Queueing => base_que,
    };

    let mut jobs = Vec::new();
    for w in [W::Independent, W::Correlated, W::Queueing] {
        for &b in &FIG3_BUDGETS {
            jobs.push((w, b));
        }
    }

    let seeds_ref = &seeds;
    let points: Vec<Fig3Point> = parallel_map(jobs, |(w, budget)| {
        let spec = w.spec(1);
        let (single_r, single_d) = match w {
            W::Queueing => (
                eval_tuned_single_r(&spec, queries, seeds_ref, K, budget, scale.trials(6), 0.5),
                eval_tuned_single_d(&spec, queries, seeds_ref, K, budget, scale.trials(6)),
            ),
            _ => {
                // Static workloads: one distribution-derived policy,
                // evaluated per seed.
                let opt = optimal_policy_static(&spec, sample_n, K, budget, 9);
                let sd = single_d_static(&spec, sample_n, budget, 9);
                (
                    eval_fixed(&spec, queries, seeds_ref, K, &opt.policy()),
                    eval_fixed(&spec, queries, seeds_ref, K, &sd),
                )
            }
        };
        Fig3Point {
            workload: w,
            budget,
            reduction_r: base_of(w) / single_r.latency,
            reduction_d: base_of(w) / single_d.latency,
            single_r,
            single_d,
        }
    });

    let mut tables = Vec::new();
    for w in [W::Independent, W::Correlated, W::Queueing] {
        let mut a = Table::new(
            format!("fig3a_{}", w.label()),
            &[
                "budget",
                "singler_rate",
                "singler_reduction",
                "singled_rate",
                "singled_reduction",
            ],
        );
        let mut b = Table::new(
            format!("fig3b_{}", w.label()),
            &["budget", "singler_remediation", "singled_remediation"],
        );
        let mut c = Table::new(
            format!("fig3c_{}", w.label()),
            &["budget", "outstanding_at_d", "reissue_prob"],
        );
        for p in points.iter().filter(|p| p.workload == w) {
            a.push(vec![
                p.budget,
                p.single_r.rate,
                p.reduction_r,
                p.single_d.rate,
                p.reduction_d,
            ]);
            b.push(vec![
                p.budget,
                p.single_r.remediation,
                p.single_d.remediation,
            ]);
            c.push(vec![
                p.budget,
                p.single_r.outstanding,
                p.single_r.probability,
            ]);
        }
        tables.push(a);
        tables.push(b);
        tables.push(c);
    }
    tables
}

/// Figure 4: primary-vs-reissue response-time scatter for the
/// Correlated and Queueing workloads (plus Pearson correlations).
pub fn fig4(scale: Scale) -> Vec<Table> {
    let n_points = 2_000usize;
    let queries = scale.queries(20_000);

    // Correlated: response time = service time; sample pairs directly.
    let cor_pairs = correlated(0.5, 31).sample_pairs(n_points, 11);

    // Queueing: run under an immediate probe policy so every query has
    // a (primary, reissue) response pair.
    let que = queueing(0.3, 0.5, 32);
    let run = que.run(
        &RunConfig {
            seed: 33,
            ..RunConfig::new(queries)
        },
        &ReissuePolicy::single_r(0.0, 0.3),
    );
    let que_pairs: Vec<(f64, f64)> = run.pairs().into_iter().take(n_points).collect();

    let mut t_cor = Table::new("fig4_correlated_scatter", &["primary", "reissue"]);
    for (x, y) in &cor_pairs {
        t_cor.push(vec![*x, *y]);
    }
    let mut t_que = Table::new("fig4_queueing_scatter", &["primary", "reissue"]);
    for (x, y) in &que_pairs {
        t_que.push(vec![*x, *y]);
    }
    let mut t_sum = Table::new("fig4_pearson", &["correlated", "queueing"]);
    t_sum.push(vec![
        distributions::pearson(&cor_pairs).unwrap_or(f64::NAN),
        distributions::pearson(&que_pairs).unwrap_or(f64::NAN),
    ]);
    vec![t_cor, t_que, t_sum]
}

/// Figure 5a: P95 vs the service-time correlation ratio `r` at a fixed
/// 25 % reissue budget (Queueing workload), with the no-reissue
/// baseline.
pub fn fig5a(scale: Scale) -> Vec<Table> {
    let queries = scale.queries(40_000);
    // Heavy-tail single-realization P95s are especially wild for this
    // sweep; median over more seeds than the other figures.
    let seeds = scale.seeds(5);
    let ratios: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();

    let seeds_ref = &seeds;
    let rows: Vec<Vec<f64>> = parallel_map(ratios, |r| {
        let spec = queueing(0.3, r, 41);
        let base = eval_policy(&spec, queries, seeds_ref, K, &ReissuePolicy::None).0;
        let tuned = eval_tuned_single_r(&spec, queries, seeds_ref, K, 0.25, scale.trials(6), 0.5);
        vec![r, tuned.latency, base, tuned.rate]
    });

    let mut t = Table::new(
        "fig5a_correlation",
        &["ratio", "p95_singler", "p95_noreissue", "rate"],
    );
    for row in rows {
        t.push(row);
    }
    vec![t]
}

/// Figure 5b: P95 vs reissue rate under the three load-balancing
/// strategies (Random / Min-of-Two / Min-of-All).
pub fn fig5b(scale: Scale) -> Vec<Table> {
    sweep_cluster_variants(
        scale,
        "fig5b_lb",
        &[
            ("random", Balancer::Random, Discipline::Fifo),
            ("min_of_two", Balancer::MinOfTwo, Discipline::Fifo),
            ("min_of_all", Balancer::MinOfAll, Discipline::Fifo),
        ],
    )
}

/// Figure 5c: P95 vs reissue rate under the three queue disciplines
/// (Baseline FIFO / Prioritized FIFO / Prioritized LIFO).
pub fn fig5c(scale: Scale) -> Vec<Table> {
    sweep_cluster_variants(
        scale,
        "fig5c_priority",
        &[
            ("baseline_fifo", Balancer::Random, Discipline::Fifo),
            (
                "prioritized_fifo",
                Balancer::Random,
                Discipline::PrioritizedFifo,
            ),
            (
                "prioritized_lifo",
                Balancer::Random,
                Discipline::PrioritizedLifo,
            ),
        ],
    )
}

fn sweep_cluster_variants(
    scale: Scale,
    prefix: &str,
    variants: &[(&str, Balancer, Discipline)],
) -> Vec<Table> {
    let queries = scale.queries(40_000);
    let seeds = scale.seeds(3);
    let dist = DistSpec::Pareto {
        shape: workloads::PAPER_PARETO_SHAPE,
        mode: workloads::PAPER_PARETO_MODE,
    };

    let mut jobs = Vec::new();
    for (vi, v) in variants.iter().enumerate() {
        for &b in &FIG5_BUDGETS {
            jobs.push((vi, *v, b));
        }
    }
    let seeds_ref = &seeds;
    let rows: Vec<(usize, f64, f64, f64)> = parallel_map(jobs, |(vi, (_, lb, disc), budget)| {
        // Figure 5 uses the Queueing workload *without* correlation.
        let spec = queueing_custom(dist, 0.0, 0.3, lb, disc, 51);
        if budget == 0.0 {
            let (lat, _) = eval_policy(&spec, queries, seeds_ref, K, &ReissuePolicy::None);
            (vi, budget, lat, 0.0)
        } else {
            let tuned =
                eval_tuned_single_r(&spec, queries, seeds_ref, K, budget, scale.trials(6), 0.5);
            (vi, budget, tuned.latency, tuned.rate)
        }
    });

    variants
        .iter()
        .enumerate()
        .map(|(vi, (name, _, _))| {
            let mut t = Table::new(
                format!("{prefix}_{name}"),
                &["budget", "p95", "measured_rate"],
            );
            for r in rows.iter().filter(|r| r.0 == vi) {
                t.push(vec![r.1, r.2, r.3]);
            }
            t
        })
        .collect()
}

/// Figure 6: P95 and P99 reduction ratios vs reissue rate for
/// LogNormal(1,1) and Exp(0.1) service times at 20/30/50 % utilization.
pub fn fig6(scale: Scale) -> Vec<Table> {
    let queries = scale.queries(40_000);
    let seeds = scale.seeds(2);
    let dists = [
        (
            "lognormal_1_1",
            DistSpec::LogNormal {
                mu: 1.0,
                sigma: 1.0,
            },
        ),
        ("exp_0_1", DistSpec::Exponential { rate: 0.1 }),
    ];
    let utils = [0.2, 0.3, 0.5];
    let budgets = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5];
    let percentiles = [0.95, 0.99];

    let mut jobs = Vec::new();
    for (di, d) in dists.iter().enumerate() {
        for &u in &utils {
            for &k in &percentiles {
                for &b in &budgets {
                    jobs.push((di, d.1, u, k, b));
                }
            }
        }
    }

    let seeds_ref = &seeds;
    let rows: Vec<(usize, f64, f64, f64, f64, f64)> =
        parallel_map(jobs, |(di, dist, util, k, budget)| {
            let spec = queueing_custom(dist, 0.0, util, Balancer::Random, Discipline::Fifo, 61);
            let base = eval_policy(&spec, queries, seeds_ref, k, &ReissuePolicy::None).0;
            let tuned =
                eval_tuned_single_r(&spec, queries, seeds_ref, k, budget, scale.trials(6), 0.5);
            (di, util, k, budget, base / tuned.latency, tuned.rate)
        });

    dists
        .iter()
        .enumerate()
        .flat_map(|(di, (name, _))| percentiles.iter().map(move |&k| (di, *name, k)))
        .map(|(di, name, k)| {
            let mut t = Table::new(
                format!("fig6_{}_p{}", name, (k * 100.0) as u32),
                &["budget", "util20", "util30", "util50"],
            );
            for &b in &budgets {
                let mut row = vec![b];
                for &u in &utils {
                    let v = rows
                        .iter()
                        .find(|r| r.0 == di && r.1 == u && r.2 == k && r.3 == b)
                        .map(|r| r.4)
                        .unwrap_or(f64::NAN);
                    row.push(v);
                }
                t.push(row);
            }
            t
        })
        .collect()
}
