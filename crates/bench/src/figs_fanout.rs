//! The sharded fan-out figure: aggregate-P99 compounding over fan-out
//! width, and per-shard hedging under a shared budget recovering it —
//! all through the real TCP scatter-gather path.
//!
//! A request that fans out to `N` shards completes when its slowest
//! leg does, so independent per-leg noise compounds: with a fraction
//! `p` of legs transiently slow, `1 − (1−p)^N` of fan-outs are slow
//! (§ "The Tail at Scale" regime the paper's single-group experiments
//! factor out). The *independent* noise in a scatter-gather is
//! per-machine, not per-query — every fan-out hits all groups at once,
//! so queueing is correlated across shards — and the figure models it
//! the way the harness always has: scripted transient slowness,
//! staggered across replicas so that ~5% of legs land on a currently
//! degraded replica at any moment regardless of width (see
//! [`sickness_script`]). [`figtcp_fanout`] sweeps fan-out width
//! {1, 10, 100} × reissue budget {2, 5, 8}%, each width served by a
//! `shard::ShardedCluster` of BM25 index shards (the shared
//! [`ShardedQueryWorkload`], identical traffic to the example and the
//! integration tests), comparing
//!
//! * **unhedged** — the compounding baseline;
//! * **online-correlated** — each leg runs the §4.2 censored-pair
//!   adapter, all legs drawing from one shared cross-shard
//!   `BudgetGovernor`;
//! * **static SingleR** — `(d*, q*)` frozen from the adapted run and
//!   replayed at equal governed budget.
//!
//! `HEDGE_TCP_QUERIES=<n>` overrides the per-phase fan-out count, as
//! for the other TCP figures. Output also lands in `BENCH_fanout.json`
//! (see the `figures` binary).
//!
//! Reading the output honestly: the recovery comparison is sharpest at
//! widths 1 and 10. Width 100 really serves 200 TCP servers from one
//! process and — at smoke counts — estimates each P99 from a handful
//! of samples, so its hedged columns are noisy; it is in the sweep
//! primarily to exercise (and keep honest) the scatter-gather plumbing
//! and the shared governor at scale, and its unhedged leg-vs-aggregate
//! gap still shows the compounding.

use crate::figs_tcp::tcp_queries;
use crate::{median, Scale, Table};

use hedge::harness::Arrivals;
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;
use searchengine::workload::QueryWorkloadConfig;
use searchengine::{CorpusConfig, ShardedQueryWorkload};
use shard::{
    run_fanout_load, FanoutClient, FanoutConfig, FanoutLoadConfig, FanoutLoadReport,
    FanoutSickness, ShardedCluster,
};

/// The fan-out experiments target P99, like the other §6 figures.
const K: f64 = 0.99;
/// Wall-clock service burn per postings-scan unit at width 1 (the
/// other TCP figures' per-op burn). Scaled by the width — see
/// [`nanos_per_op`].
const BASE_NANOS_PER_OP: u64 = 150;

/// Per-op burn for a given fan-out width. Every arrival costs the
/// *client* `width` leg dispatches, so width-independent service times
/// would saturate the single client process long before the servers at
/// width 100 (the harness shares one machine). Scaling the burn —
/// it's a wall-clock sleep, not CPU — slows the arrival rate linearly
/// while holding per-group utilization at [`UTIL`], so client work per
/// second is width-independent and the measured tails reflect the
/// serving path. Absolute P99s therefore differ across widths; the
/// cross-width story is in the *ratios* (aggregate vs leg, hedged vs
/// unhedged).
fn nanos_per_op(width: usize) -> u64 {
    BASE_NANOS_PER_OP * width as u64
}
/// Replicas per shard group — the minimum that lets a leg hedge.
const REPLICAS_PER_SHARD: usize = 2;
/// Per-group offered utilization (arrival rate × mean leg service /
/// replicas). Constant across widths: each arrival sends one query to
/// every group, so group load is width-independent by construction.
const UTIL: f64 = 0.40;
/// Bounded admission on concurrently outstanding *fan-outs*.
const MAX_IN_FLIGHT: usize = 64;

/// Fan-out widths swept (the (0.99)^N compounding axis).
const WIDTHS: [usize; 3] = [1, 10, 100];
/// Reissue budgets swept (per-leg fraction, shared across shards).
const BUDGETS: [f64; 3] = [0.02, 0.05, 0.08];

/// The shared sharded-search workload at bench scale: per-shard corpus
/// size is constant in the width, so the per-leg service distribution
/// has a width-independent *shape*; only its time scale stretches with
/// [`nanos_per_op`] (see there for why).
fn workload(scale: Scale, shards: usize) -> ShardedQueryWorkload {
    let (num_docs, vocab, mean_doc_len, base_ops, trace_len) = match scale {
        Scale::Full => (1_500, 20_000, 80.0, 6_000, 500),
        Scale::Fast => (400, 8_000, 50.0, 3_000, 300),
    };
    ShardedQueryWorkload::generate(
        shards,
        CorpusConfig {
            num_docs,
            vocab,
            mean_doc_len,
            seed: 0xFA27,
            ..CorpusConfig::default()
        },
        QueryWorkloadConfig {
            num_queries: trace_len,
            base_ops,
            top_k: 10,
            seed: 0xFA28,
            ..QueryWorkloadConfig::default()
        },
        nanos_per_op(shards) as f64,
    )
}

fn load_config(wl: &ShardedQueryWorkload, queries: usize, width: usize) -> FanoutLoadConfig {
    let mean_us = (wl.mean_leg_ms() * 1e3 / (REPLICAS_PER_SHARD as f64 * UTIL)).max(1.0) as u64;
    FanoutLoadConfig {
        queries,
        arrivals: Arrivals::Poisson { mean_us },
        max_in_flight: MAX_IN_FLIGHT,
        seed: 0x10AD ^ (width as u64) << 8,
        script: Vec::new(),
    }
}

/// Discarded fan-outs per phase before measurement starts: fills
/// connection pools, thread stacks, and replica-health EWMAs so
/// cold-start transients don't pollute a P99 that smoke counts
/// estimate from a handful of samples.
const WARMUP_QUERIES: usize = 60;

/// Measured fan-outs per phase at a given width.
///
/// Narrow widths get proportionally more samples: a width-1 phase at
/// the smoke count estimates its P99 from a handful of order
/// statistics, which is exactly the warmup-scale noise that produced
/// non-monotonic budget rows (a *larger* budget showing a *worse*
/// static P99 at width 1). A width-1 arrival costs the client one leg
/// dispatch where width-100 costs a hundred, so boosting the narrow
/// widths is roughly total-work-neutral and leaves the expensive
/// width-100 phases at the base count. Each table records its own
/// `queries_per_phase` so the JSON says how many samples stand behind
/// each width's rows.
fn fanout_queries(scale: Scale, width: usize) -> usize {
    let base = tcp_queries(scale);
    match width {
        0..=1 => base * 16,
        2..=10 => base * 2,
        _ => base,
    }
}

/// The transient per-machine slowness that makes the tail-at-scale
/// regime: 4× slow windows per replica (one at wide fan-outs, several
/// shorter ones at narrow — see the episode split below), staggered
/// across the middle half of the run so that at any instant
/// `width / 10` replicas are degraded — a constant ~5% of a fan-out's legs land on a currently
/// slow replica *regardless of width*, and the aggregate hit rate
/// compounds as `1 − 0.95^width` ({5%, 40%, 99%} at widths
/// {1, 10, 100}). This is the independent leg noise of "The Tail at
/// Scale": per-query cost is identical for primary and reissue (it is
/// the same query) and queueing is synchronized across groups (every
/// fan-out hits all of them), so *machine state* is what a reissue to
/// the sibling replica can actually dodge. Primaries are targeted
/// round-robin (blind); reissue targeting is health-EWMA-aware, so the
/// hedged phases route rescues to the healthy sibling while the
/// unhedged baseline eats every window.
fn sickness_script(width: usize, queries: usize) -> Vec<FanoutSickness> {
    let healthy = nanos_per_op(width);
    // Narrow fan-outs split their slow time into several shorter,
    // staggered episodes. At width 1 a single contiguous window means
    // every tail sample comes from one queue-buildup episode, so the
    // P99 estimate carries episode-level variance that no per-phase
    // sample count can average away (the other half of the
    // non-monotonic-budget-rows bug fixed by [`fanout_queries`]). The
    // split preserves both the total degraded time and the
    // instantaneous degraded fraction; wide fan-outs already get many
    // independent windows from the per-replica stagger.
    let episodes = (8 / width).max(1);
    let window = (queries / (20 * episodes)).max(4);
    let span = queries / 2;
    let slots = width * episodes;
    (0..slots)
        .flat_map(|i| {
            let s = i / episodes;
            let start = queries / 4 + i * span / slots;
            let replica = s % REPLICAS_PER_SHARD;
            [
                FanoutSickness {
                    at_query: start,
                    shard: s,
                    replica,
                    nanos_per_op: 4 * healthy,
                },
                FanoutSickness {
                    at_query: (start + window).min(queries.saturating_sub(1)),
                    shard: s,
                    replica,
                    nanos_per_op: healthy,
                },
            ]
        })
        .collect()
}

/// One phase: fresh fan-out client on the (reused) cluster, a
/// discarded warmup, then the measured open-loop run under the
/// staggered sickness script. Dropping the previous phase's client
/// first frees its runtime and connections; the cluster is healed
/// before handing the report back.
fn run_phase(
    cluster: &ShardedCluster<searchengine::SearchBackend>,
    wl: &ShardedQueryWorkload,
    queries: usize,
    cfg: FanoutConfig,
) -> (FanoutLoadReport, FanoutClient) {
    let client = FanoutClient::connect(cluster, cfg).expect("connect fan-out client");
    let warm = load_config(wl, WARMUP_QUERIES, cluster.shards());
    let _ = run_fanout_load(cluster, &client, &warm, wl.command_fn());
    let mut load = load_config(wl, queries, cluster.shards());
    load.script = sickness_script(cluster.shards(), queries);
    let report = run_fanout_load(cluster, &client, &load, wl.command_fn());
    cluster.heal_all();
    (report, client)
}

fn agg_p99(report: &FanoutLoadReport) -> f64 {
    report.quantile(K).unwrap_or(f64::NAN)
}

/// The adapted `(d*, q*)` to freeze for the static comparator: the
/// median over legs of each leg's online record (legs adapt
/// independently; the median is robust to a leg that never warmed up).
fn median_adapted_policy(client: &FanoutClient) -> (f64, f64) {
    let mut delays = Vec::new();
    let mut probs = Vec::new();
    for s in 0..client.shards() {
        if let Some(rec) = client.leg(s).online_policy() {
            delays.push(rec.delay);
            probs.push(rec.probability);
        }
    }
    if delays.is_empty() {
        return (1.0, 0.0);
    }
    (median(&delays), median(&probs))
}

/// Fan-out width × budget sweep over real TCP: aggregate-P99
/// compounding (unhedged) and its recovery by per-shard hedging under
/// one shared cross-shard budget.
pub fn figtcp_fanout(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();

    for &width in &WIDTHS {
        let queries = fanout_queries(scale, width);
        let mut t = Table::new(
            format!("figtcp_fanout_w{width}"),
            &[
                "width",
                "budget",
                "unhedged_leg_p99",
                "unhedged_agg_p99",
                "online_agg_p99",
                "online_rate",
                "static_agg_p99",
                "static_rate",
                "drop_frac",
            ],
        );
        t.queries_per_phase = Some(queries);
        let wl = workload(scale, width);
        let cluster = ShardedCluster::spawn(wl.backends(), REPLICAS_PER_SHARD, nanos_per_op(width))
            .expect("bind shard groups");

        // Unhedged baseline, once per width: both the per-leg and the
        // aggregate tail, so the table shows the compounding directly.
        let (base, base_client) = run_phase(&cluster, &wl, queries, FanoutConfig::default());
        let unhedged_leg_p99 = base.leg_quantile(K).unwrap_or(f64::NAN);
        let unhedged_agg_p99 = agg_p99(&base);
        drop(base_client);

        for &budget in &BUDGETS {
            // Per-leg online-correlated adaptation under the shared
            // cross-shard governor.
            let (online, online_client) = run_phase(
                &cluster,
                &wl,
                queries,
                FanoutConfig {
                    // A short window tracks the transient-slowness
                    // regime shifts; re-optimization is throttled at
                    // width 100, where 100 per-leg adapters would
                    // otherwise re-optimize about once per fan-out and
                    // that CPU lands on the serving core.
                    online: Some(OnlineConfig {
                        k: K,
                        budget,
                        window: 300,
                        reoptimize_every: if width >= 100 { 250 } else { 100 },
                        learning_rate: 0.5,
                        min_pairs: 32,
                        load: None,
                    }),
                    budget: Some(budget),
                    ..FanoutConfig::default()
                },
            );
            let online_p99 = agg_p99(&online);
            let online_rate = online_client.realized_reissue_rate();
            let (d_star, q_star) = median_adapted_policy(&online_client);
            drop(online_client);

            // Static SingleR frozen from the adapted artifacts, same
            // shared governed budget.
            let (stat, static_client) = run_phase(
                &cluster,
                &wl,
                queries,
                FanoutConfig {
                    policy: ReissuePolicy::single_r(d_star.max(0.1), q_star.clamp(0.001, 1.0)),
                    budget: Some(budget),
                    ..FanoutConfig::default()
                },
            );
            let static_p99 = agg_p99(&stat);
            let static_rate = static_client.realized_reissue_rate();
            drop(static_client);

            t.push(vec![
                width as f64,
                budget,
                unhedged_leg_p99,
                unhedged_agg_p99,
                online_p99,
                online_rate,
                static_p99,
                static_rate,
                online.drop_rate(),
            ]);
        }
        tables.push(t);
    }
    tables
}
