//! The load-ramp A/B: utilization-aware hedging across redundancy's
//! sign flip, through the real TCP serving path.
//!
//! Redundancy's benefit is load-dependent ("Low Latency via
//! Redundancy"): at low utilization a hedge races a fresh replica and
//! wins; near saturation the duplicate *is* the extra load and the
//! tail explodes. A latency-only online adapter cannot see which side
//! of that flip it is on — it keeps spending its reissue budget while
//! the cluster saturates. [`figtcp_ramp`] measures the fix: one
//! continuous run per policy whose offered rate is scripted from 30%
//! to 90% of cluster capacity mid-run (a [`RateEvent`] ramp, the
//! arrival-side analogue of the sickness script), reported per
//! utilization plateau.
//!
//! Four policies over the identical ramp, fresh cluster each:
//!
//! * **unhedged** — the floor at high load and the ceiling at low
//!   load; the aware policy must never be worse.
//! * **static SingleR** — `(d*, q*)` calibrated by a load-blind
//!   adapter at the middle plateau (60%), then frozen. Right in the
//!   middle, wrong at both ends.
//! * **blind online** — the §4.2 correlated adapter optimizing from
//!   latency samples alone: the load-blind behaviour under repair.
//! * **aware online** — the same adapter plus
//!   [`LoadSignal`](reissue_core::load::LoadSignal)-fed damping
//!   ([`LoadShaper`]): the effective budget shrinks as estimated
//!   utilization ρ̂ rises, so the realized reissue rate falls off
//!   toward saturation instead of feeding it.
//!
//! The committed `BENCH_ramp.json` carries one row per plateau; the
//! acceptance shape is aware P99 ≤ unhedged at every plateau, beating
//! static at both ends, with the aware reissue rate decreasing in ρ.
//! `HEDGE_RAMP_ASSERT=1` (the CI smoke) additionally asserts in-code
//! that the aware run's drop rate at the 90% plateau is no higher
//! than the unhedged run's.

use crate::figs_tcp::{
    online_config, run_phase, tcp_queries, TcpWorkload, MAX_IN_FLIGHT, NANOS_PER_OP,
};
use crate::{Scale, Table};
use hedge::harness::{Cluster, LoadConfig, LoadReport, RateEvent};
use hedge::{HedgeConfig, HedgedClient};
use reissue_core::load::LoadShaper;
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

/// The scripted utilization plateaus, in ramp order.
const UTILS: [f64; 3] = [0.3, 0.6, 0.9];
/// Replica count for every ramp run.
const REPLICAS: usize = 3;
/// Reissue budget handed to every hedging policy.
const BUDGET: f64 = 0.08;

/// The ramp schedule: `queries_per_phase` arrivals at each of
/// [`UTILS`], the rate switching (and a reporting segment opening) at
/// each phase boundary.
fn ramp_config(wl: &TcpWorkload, queries_per_phase: usize) -> LoadConfig {
    LoadConfig {
        queries: queries_per_phase * UTILS.len(),
        arrivals: wl.arrivals_for(REPLICAS, UTILS[0]),
        max_in_flight: MAX_IN_FLIGHT,
        seed: 0x4A3F,
        script: Vec::new(),
        rate_script: UTILS
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &util)| RateEvent {
                at_query: i * queries_per_phase,
                arrivals: wl.arrivals_for(REPLICAS, util),
            })
            .collect(),
    }
}

/// One continuous ramp run on a fresh cluster.
fn run_ramp(
    wl: &TcpWorkload,
    queries_per_phase: usize,
    cfg: HedgeConfig,
) -> (LoadReport, HedgedClient) {
    let cluster = Cluster::spawn(REPLICAS, &wl.store, NANOS_PER_OP).expect("bind replicas");
    let client = HedgedClient::connect(&cluster.addrs(), cfg).expect("connect client");
    let report = cluster.run_load(
        &client,
        &ramp_config(wl, queries_per_phase),
        wl.command_fn(),
    );
    (report, client)
}

/// The load-ramp figure: one row per utilization plateau, four
/// policies A/B'd over the identical scripted ramp.
pub fn figtcp_ramp(scale: Scale) -> Vec<Table> {
    let queries_per_phase = tcp_queries(scale);
    let wl = TcpWorkload::generate(queries_per_phase * UTILS.len());

    // Static comparator: let a load-blind adapter converge at the
    // middle plateau, then freeze its artifacts — the strongest
    // fixed policy available without load awareness.
    let (_, calib_client) = run_phase(
        &wl,
        queries_per_phase,
        REPLICAS,
        UTILS[1],
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(online_config(BUDGET)),
            ..HedgeConfig::default()
        },
    );
    let record = calib_client.online_policy().expect("calibration adapter");
    if std::env::var("HEDGE_RAMP_DEBUG").is_ok() {
        eprintln!(
            "[static calibration: d* {:.3} ms, q* {:.4}]",
            record.delay, record.probability
        );
    }
    let static_policy =
        ReissuePolicy::single_r(record.delay.max(0.1), record.probability.clamp(0.001, 1.0));

    let (unhedged, _) = run_ramp(
        &wl,
        queries_per_phase,
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: None,
            ..HedgeConfig::default()
        },
    );
    let (static_run, _) = run_ramp(
        &wl,
        queries_per_phase,
        HedgeConfig {
            policy: static_policy,
            online: None,
            budget_cap: Some(1.25 * BUDGET),
            ..HedgeConfig::default()
        },
    );
    let (blind, _) = run_ramp(
        &wl,
        queries_per_phase,
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(online_config(BUDGET)),
            ..HedgeConfig::default()
        },
    );
    let (aware, aware_client) = run_ramp(
        &wl,
        queries_per_phase,
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(OnlineConfig {
                load: Some(LoadShaper::default()),
                ..online_config(BUDGET)
            }),
            ..HedgeConfig::default()
        },
    );

    if std::env::var("HEDGE_RAMP_DEBUG").is_ok() {
        eprintln!("[aware load snapshot: {:?}]", aware_client.load_snapshot());
        // ρ̂ trajectory at 1/6-phase granularity (extra aware run).
        let cluster = Cluster::spawn(REPLICAS, &wl.store, NANOS_PER_OP).expect("bind replicas");
        let client = HedgedClient::connect(
            &cluster.addrs(),
            HedgeConfig {
                policy: ReissuePolicy::None,
                online: Some(OnlineConfig {
                    load: Some(LoadShaper::default()),
                    ..online_config(BUDGET)
                }),
                ..HedgeConfig::default()
            },
        )
        .expect("connect client");
        let mut cfg = ramp_config(&wl, queries_per_phase);
        let step = (queries_per_phase / 6).max(1);
        for at in (step..cfg.queries).step_by(step) {
            cfg.rate_script.push(RateEvent {
                at_query: at,
                arrivals: wl.arrivals_for(
                    REPLICAS,
                    UTILS[(at / queries_per_phase).min(UTILS.len() - 1)],
                ),
            });
        }
        let rep = cluster.run_load(&client, &cfg, wl.command_fn());
        for s in &rep.segments {
            eprintln!(
                "[seg {:>5}..{:>5} rho_end {:.3} rho_mean {:.3} rate {:.4} p99 {:>8.2}]",
                s.start,
                s.end,
                s.utilization_end,
                s.utilization_mean,
                s.reissue_rate(),
                s.quantile(0.99).unwrap_or(f64::NAN)
            );
        }
    }
    let mut t = Table::new(
        "figtcp_ramp",
        &[
            "util",
            "unhedged_p99",
            "static_p99",
            "static_rate",
            "blind_p99",
            "blind_rate",
            "aware_p99",
            "aware_rate",
            "aware_rho",
            "drop_unhedged",
            "drop_aware",
        ],
    );
    for (k, &util) in UTILS.iter().enumerate() {
        t.push(vec![
            util,
            unhedged.segments[k].quantile(0.99).unwrap_or(f64::NAN),
            static_run.segments[k].quantile(0.99).unwrap_or(f64::NAN),
            static_run.segments[k].reissue_rate(),
            blind.segments[k].quantile(0.99).unwrap_or(f64::NAN),
            blind.segments[k].reissue_rate(),
            aware.segments[k].quantile(0.99).unwrap_or(f64::NAN),
            aware.segments[k].reissue_rate(),
            aware.segments[k].utilization_mean,
            unhedged.segments[k].drop_rate(),
            aware.segments[k].drop_rate(),
        ]);
    }
    if std::env::var("HEDGE_RAMP_ASSERT").as_deref() == Ok("1") {
        let last = UTILS.len() - 1;
        let (da, du) = (
            aware.segments[last].drop_rate(),
            unhedged.segments[last].drop_rate(),
        );
        assert!(
            da <= du + 1e-9,
            "utilization-aware hedging must not shed more load than unhedged \
             at the saturated plateau: aware drop {da:.4} > unhedged drop {du:.4}"
        );
        eprintln!("[ramp assert ok: aware drop {da:.4} <= unhedged drop {du:.4} at util 0.9]");
    }
    vec![t]
}
