//! Figure-regeneration harness for the SPAA'17 reissue-policy paper.
//!
//! Every figure in the paper's evaluation (§5 simulation, §6 system
//! experiments) has a generator here that reproduces its data series
//! with this repository's substrates. Invoke via the `figures` binary:
//!
//! ```text
//! cargo run -p reissue-bench --release --bin figures -- all
//! cargo run -p reissue-bench --release --bin figures -- fig3a fig7a
//! cargo run -p reissue-bench --release --bin figures -- --fast all
//! ```
//!
//! Output: an aligned table per series on stdout and a CSV per table in
//! `target/figures/`. `--fast` shrinks run lengths ~10× for smoke
//! testing; EXPERIMENTS.md records full-mode results against the paper.

#![forbid(unsafe_code)]

pub mod figs_discipline;
pub mod figs_erasure;
pub mod figs_ext;
pub mod figs_fanout;
pub mod figs_ramp;
pub mod figs_sim;
pub mod figs_sys;
pub mod figs_tcp;
pub mod figs_throughput;

/// Process-wide heap-allocation counter fed by the counting global
/// allocator the `figures` binary installs (the lib crate forbids
/// `unsafe`, so the `GlobalAlloc` impl lives in the binary). In any
/// other host — unit tests, downstream crates — the counter stays at
/// zero and [`alloc_count::installed`] reports `false`.
pub mod alloc_count {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Total allocation *events* (alloc + alloc_zeroed + realloc)
    /// since process start. Incremented relaxed by the counting
    /// allocator; byte sizes are deliberately not tracked — the
    /// hot-path refactor targets allocation **count**, the per-event
    /// allocator-lock/metadata cost.
    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Current allocation-event count.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Whether a counting allocator is actually installed in this
    /// process (probes by forcing a heap allocation and watching the
    /// counter move).
    pub fn installed() -> bool {
        let before = allocations();
        let probe: Vec<u8> = Vec::with_capacity(64);
        std::hint::black_box(&probe);
        allocations() > before
    }
}

use reissue_core::adaptive::AdaptiveResult;
use reissue_core::ReissuePolicy;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use workloads::{RunConfig, WorkloadSpec};

/// One output table (≈ one curve/series of a paper figure).
#[derive(Clone, Debug)]
pub struct Table {
    /// Identifier, e.g. `fig3a_queueing_singler`.
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
    /// Measured queries per phase for *this* table, when it differs
    /// from (or refines) the figure-level count — e.g. the fan-out
    /// sweep boosts smoke counts at narrow widths, so a single global
    /// number would misdescribe its rows. Serialized per table in the
    /// BENCH JSON when set.
    pub queries_per_phase: Option<usize>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            name: name.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            queries_per_phase: None,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity doesn't match the header.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        let width = 14;
        for c in &self.columns {
            out.push_str(&format!("{c:>width$}"));
        }
        out.push('\n');
        for row in &self.rows {
            for v in row {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.001) {
                    out.push_str(&format!("{v:>width$.4e}"));
                } else {
                    out.push_str(&format!("{v:>width$.4}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV into `dir`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            writeln!(f, "{}", cells.join(","))?;
        }
        Ok(path)
    }
}

/// The default output directory, `target/figures`.
pub fn out_dir() -> PathBuf {
    PathBuf::from("target/figures")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    // JSON has no NaN/Infinity; absent measurements become null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Serializes figure tables as a machine-readable JSON document:
/// `{"figure": ..., "queries_per_phase": ..., "tables": [{"name",
/// "columns", "rows"}, ...]}`. Non-finite cells become `null`.
pub fn tables_to_json(figure: &str, queries_per_phase: usize, tables: &[Table]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"figure\": \"{}\",\n  \"queries_per_phase\": {queries_per_phase},\n  \"tables\": [",
        json_escape(figure)
    ));
    for (ti, t) in tables.iter().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        let cols: Vec<String> = t
            .columns
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect();
        let per_table_queries = t
            .queries_per_phase
            .map(|q| format!("\n      \"queries_per_phase\": {q},"))
            .unwrap_or_default();
        out.push_str(&format!(
            "\n    {{\n      \"name\": \"{}\",{per_table_queries}\n      \"columns\": [{}],\n      \"rows\": [",
            json_escape(&t.name),
            cols.join(", ")
        ));
        for (ri, row) in t.rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            let cells: Vec<String> = row.iter().map(|&v| json_num(v)).collect();
            out.push_str(&format!("\n        [{}]", cells.join(", ")));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes figure tables as JSON to `path` (e.g. `BENCH_fanout.json` at
/// the repo root) — the machine-readable record the figure runs emit
/// alongside the CSVs.
pub fn write_bench_json(
    path: &std::path::Path,
    figure: &str,
    queries_per_phase: usize,
    tables: &[Table],
) -> std::io::Result<()> {
    std::fs::write(path, tables_to_json(figure, queries_per_phase, tables))
}

/// Median of a non-empty slice (destructive on a copy).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Maps `f` over `items` on all available cores, preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(n.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken twice");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing result"))
        .collect()
}

/// Evaluation scale: full (paper-grade) or fast (smoke test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Full runs, as recorded in EXPERIMENTS.md.
    Full,
    /// ~10× smaller runs for quick iteration and tests.
    Fast,
}

impl Scale {
    /// Scales a query count.
    pub fn queries(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Fast => (full / 10).max(2_000),
        }
    }

    /// Seeds to median over.
    pub fn seeds(&self, full: usize) -> Vec<u64> {
        let n = match self {
            Scale::Full => full,
            Scale::Fast => 1,
        };
        (0..n as u64).map(|i| 1000 + 7 * i).collect()
    }

    /// Adaptive trials.
    pub fn trials(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Fast => (full / 2).max(2),
        }
    }
}

/// Runs `spec` under `policy` for each seed; returns
/// (median k-quantile, median reissue rate).
pub fn eval_policy(
    spec: &WorkloadSpec,
    queries: usize,
    seeds: &[u64],
    k: f64,
    policy: &ReissuePolicy,
) -> (f64, f64) {
    let results: Vec<(f64, f64)> = seeds
        .iter()
        .map(|&seed| {
            let run = RunConfig {
                seed,
                ..RunConfig::new(queries)
            };
            let r = spec.run(&run, policy);
            (r.quantile(k), r.reissue_rate())
        })
        .collect();
    (
        median(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
        median(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
    )
}

/// Everything a figure needs from one policy × workload measurement,
/// medianed across seeds.
#[derive(Clone, Copy, Debug)]
pub struct EvalStats {
    /// Median k-quantile of realized latency.
    pub latency: f64,
    /// Median measured reissue rate.
    pub rate: f64,
    /// Median remediation rate (Pr(X > t ∧ Y < t − d) over reissues,
    /// with t = the achieved latency of that run).
    pub remediation: f64,
    /// Median fraction of primaries outstanding at the reissue delay.
    pub outstanding: f64,
    /// Median reissue probability of the tuned policy.
    pub probability: f64,
    /// Median reissue delay of the tuned policy.
    pub delay: f64,
}

fn eval_stats_one(
    spec: &WorkloadSpec,
    queries: usize,
    seed: u64,
    k: f64,
    policy: &ReissuePolicy,
) -> EvalStats {
    let run = RunConfig {
        seed,
        ..RunConfig::new(queries)
    };
    let r = spec.run(&run, policy);
    let latency = r.quantile(k);
    let (delay, probability) = policy
        .stages()
        .first()
        .map_or((f64::NAN, 0.0), |s| (s.delay, s.prob));
    let primaries = r.primaries();
    let outstanding = if delay.is_finite() && !primaries.is_empty() {
        primaries.iter().filter(|&&x| x >= delay).count() as f64 / primaries.len() as f64
    } else {
        0.0
    };
    EvalStats {
        latency,
        rate: r.reissue_rate(),
        remediation: reissue_core::metrics::remediation_rate(
            &r.pairs(),
            latency,
            if delay.is_finite() { delay } else { 0.0 },
        ),
        outstanding,
        probability,
        delay: if delay.is_finite() { delay } else { 0.0 },
    }
}

fn median_stats(per_seed: &[EvalStats]) -> EvalStats {
    let m = |f: fn(&EvalStats) -> f64| median(&per_seed.iter().map(f).collect::<Vec<_>>());
    EvalStats {
        latency: m(|s| s.latency),
        rate: m(|s| s.rate),
        remediation: m(|s| s.remediation),
        outstanding: m(|s| s.outstanding),
        probability: m(|s| s.probability),
        delay: m(|s| s.delay),
    }
}

/// Evaluates a *fixed* policy across seeds (median of per-seed stats).
pub fn eval_fixed(
    spec: &WorkloadSpec,
    queries: usize,
    seeds: &[u64],
    k: f64,
    policy: &ReissuePolicy,
) -> EvalStats {
    let per_seed: Vec<EvalStats> = seeds
        .iter()
        .map(|&s| eval_stats_one(spec, queries, s, k, policy))
        .collect();
    median_stats(&per_seed)
}

/// Tunes SingleR *per seed* (the adaptive §4.3 loop with common random
/// numbers) and evaluates each tuned policy on its own realization,
/// then medians — mirroring how the paper tunes and measures on the
/// same testbed. Under heavy-tailed service times a delay tuned on one
/// realization does not transfer to another (upper quantiles are
/// realization-dominated), so per-seed tuning is essential.
pub fn eval_tuned_single_r(
    spec: &WorkloadSpec,
    queries: usize,
    seeds: &[u64],
    k: f64,
    budget: f64,
    trials: usize,
    learning_rate: f64,
) -> EvalStats {
    let per_seed: Vec<EvalStats> = seeds
        .iter()
        .map(|&s| {
            let run = RunConfig {
                seed: s,
                ..RunConfig::new(queries)
            };
            let tuned = workloads::adapt_policy(spec, &run, k, budget, learning_rate, trials);
            eval_stats_one(spec, queries, s, k, &tuned.policy)
        })
        .collect();
    median_stats(&per_seed)
}

/// Tunes SingleD per seed (delay fitted to the budget under load) and
/// evaluates on the same realization; medians across seeds.
pub fn eval_tuned_single_d(
    spec: &WorkloadSpec,
    queries: usize,
    seeds: &[u64],
    k: f64,
    budget: f64,
    trials: usize,
) -> EvalStats {
    let per_seed: Vec<EvalStats> = seeds
        .iter()
        .map(|&s| {
            let policy = tune_single_d(spec, queries, s, budget, trials);
            eval_stats_one(spec, queries, s, k, &policy)
        })
        .collect();
    median_stats(&per_seed)
}

/// Adaptively refines a SingleR policy on `spec` (the §4.3 loop) and
/// returns the final policy plus the trial telemetry.
pub fn tune_single_r(
    spec: &WorkloadSpec,
    queries: usize,
    seed: u64,
    k: f64,
    budget: f64,
    trials: usize,
    learning_rate: f64,
) -> AdaptiveResult {
    let run = RunConfig {
        seed,
        ..RunConfig::new(queries)
    };
    workloads::adapt_policy(spec, &run, k, budget, learning_rate, trials)
}

/// Adaptively fits a SingleD policy to a budget on a load-coupled
/// workload: repeatedly set `d` to the observed `(1−B)`-quantile of
/// primary response times under the current policy (the paper applies
/// the same refinement to SingleD so its measured rate meets the
/// budget, §5.1).
pub fn tune_single_d(
    spec: &WorkloadSpec,
    queries: usize,
    seed: u64,
    budget: f64,
    trials: usize,
) -> ReissuePolicy {
    if budget <= 0.0 {
        return ReissuePolicy::None;
    }
    let mut policy = ReissuePolicy::None;
    let mut d = f64::NAN;
    for _ in 0..trials.max(1) {
        // Common random numbers across refinement trials (see
        // `eval_tuned_single_r`).
        let run = RunConfig {
            seed,
            ..RunConfig::new(queries)
        };
        let r = spec.run(&run, &policy);
        let primaries = r.primaries();
        let target = reissue_core::metrics::quantile(&primaries, (1.0 - budget).clamp(0.0, 1.0));
        d = if d.is_finite() {
            d + 0.5 * (target - d)
        } else {
            target
        };
        policy = ReissuePolicy::single_d(d.max(0.0));
    }
    policy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_and_csv() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(vec![1.0, 2.0]);
        t.push(vec![3.0, 4.5]);
        let s = t.render();
        assert!(s.contains("demo") && s.contains("4.5"));
        let dir = std::env::temp_dir().join("reissue_bench_test");
        let path = t.write_csv(&dir).unwrap();
        let data = std::fs::read_to_string(path).unwrap();
        assert_eq!(data.lines().count(), 3);
        assert!(data.starts_with("x,y"));
    }

    #[test]
    fn tables_serialize_to_json_with_null_for_nan() {
        let mut t = Table::new("demo", &["x", "p99"]);
        t.push(vec![1.0, 2.5]);
        t.push(vec![2.0, f64::NAN]);
        let json = tables_to_json("fanout", 400, &[t]);
        assert!(json.contains("\"figure\": \"fanout\""));
        assert!(json.contains("\"queries_per_phase\": 400"));
        assert!(json.contains("\"columns\": [\"x\", \"p99\"]"));
        assert!(json.contains("[1, 2.5]"));
        assert!(json.contains("[2, null]"), "NaN must serialize as null");
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_arity_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn median_and_parallel_map() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[5.0]), 5.0);
        let out = parallel_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn scale_knobs() {
        assert_eq!(Scale::Full.queries(50_000), 50_000);
        assert_eq!(Scale::Fast.queries(50_000), 5_000);
        assert_eq!(Scale::Full.seeds(3).len(), 3);
        assert_eq!(Scale::Fast.seeds(3).len(), 1);
        assert!(Scale::Fast.trials(6) >= 2);
    }

    #[test]
    fn tune_single_d_converges_to_budget() {
        let spec = workloads::queueing(0.2, 0.0, 42);
        let policy = tune_single_d(&spec, 10_000, 1, 0.1, 4);
        let (_, rate) = eval_policy(&spec, 10_000, &[9], 0.95, &policy);
        assert!((rate - 0.1).abs() < 0.05, "rate={rate}");
    }
}
