//! Regenerates the paper's figures. See `reissue_bench` crate docs.
//!
//! ```text
//! figures [--fast] [--no-csv] <fig2a|fig2b|fig3|fig4|fig5a|fig5b|fig5c|fig6|fig7a|fig7b|fig7c|fig8|fig9|figtcp_62|figtcp_scaleout|tcp|fanout|ramp|discipline|erasure|throughput|all>...
//! ```
//!
//! `tcp` regenerates the §6.2 figures through the real TCP serving
//! path (see `figs_tcp`); `figtcp_62` and `figtcp_scaleout` select
//! one of the two TCP figures, `fanout` runs the sharded
//! scatter-gather width × budget sweep (see `figs_fanout`), and
//! `ramp` A/Bs utilization-aware hedging over a scripted 0.3 → 0.9
//! load ramp (see `figs_ramp`; persists `BENCH_ramp.json`;
//! `HEDGE_RAMP_ASSERT=1` adds the CI sanity assertion), and
//! `discipline` A/Bs cancellation style × server queue discipline
//! (see `figs_discipline`; persists `BENCH_discipline.json`;
//! `HEDGE_DISCIPLINE_ASSERT=1` adds the CI shape assertions), and
//! `erasure` A/Bs replica hedging vs fragment hedging at equal byte
//! budget (see `figs_erasure`; persists `BENCH_erasure.json`;
//! `HEDGE_ERASURE_ASSERT=1` adds the CI shape assertions).
//! `HEDGE_TCP_QUERIES=<n>` shrinks those runs for smoke testing.
//! The TCP/fan-out figures additionally persist machine-readable
//! results to `BENCH_tcp.json` / `BENCH_fanout.json` in the working
//! directory. `all` covers the simulator figures only — the TCP and
//! fan-out sweeps are wall-clock-bound (they really serve the load),
//! so they are requested explicitly.

use reissue_bench::{
    figs_discipline, figs_erasure, figs_ext, figs_fanout, figs_ramp, figs_sim, figs_sys, figs_tcp,
    figs_throughput, out_dir, write_bench_json, Scale, Table,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Counting global allocator for the allocations/request column of the
/// `throughput` figure (`reissue_bench::alloc_count` holds the counter;
/// the lib crate forbids `unsafe`, so the `GlobalAlloc` impl lives
/// here). Pure pass-through to [`System`] plus one relaxed increment
/// per allocation event — cheap enough to leave installed for every
/// figure.
struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the only
// addition is a relaxed atomic increment, which allocates nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        reissue_bench::alloc_count::ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        reissue_bench::alloc_count::ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        reissue_bench::alloc_count::ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let no_csv = args.iter().any(|a| a == "--no-csv");
    let scale = if fast { Scale::Fast } else { Scale::Full };
    let mut figs: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if figs.is_empty() {
        eprintln!(
            "usage: figures [--fast] [--no-csv] <fig2a|fig2b|fig3|fig4|fig5a|fig5b|fig5c|fig6|fig7a|fig7b|fig7c|fig8|fig9|figtcp_62|figtcp_scaleout|tcp|fanout|ramp|discipline|erasure|throughput|all>..."
        );
        std::process::exit(2);
    }
    if figs.iter().any(|f| f == "all") {
        figs = vec![
            "fig2a".into(),
            "fig2b".into(),
            "fig3".into(),
            "fig4".into(),
            "fig5a".into(),
            "fig5b".into(),
            "fig5c".into(),
            "fig6".into(),
            "fig7to9".into(),
            "ext".into(),
        ];
    }

    let dir = out_dir();
    for fig in figs {
        let start = Instant::now();
        let tables: Vec<Table> = match fig.as_str() {
            "fig2a" => figs_sim::fig2a(scale),
            "fig2b" => figs_sim::fig2b(scale),
            "fig3" | "fig3a" | "fig3b" | "fig3c" => figs_sim::fig3(scale),
            "fig4" => figs_sim::fig4(scale),
            "fig5a" => figs_sim::fig5a(scale),
            "fig5b" => figs_sim::fig5b(scale),
            "fig5c" => figs_sim::fig5c(scale),
            "fig6" => figs_sim::fig6(scale),
            "fig7a" => figs_sys::fig7a(scale),
            "fig7b" => figs_sys::fig7b(scale),
            "fig7c" => figs_sys::fig7c(scale),
            "fig8" => figs_sys::fig8(scale),
            "fig9" => figs_sys::fig9(scale),
            "fig7to9" => figs_sys::fig7_to_9(scale),
            "ext1" => figs_ext::ext1_cancellation(scale),
            "ext2" => figs_ext::ext2_routing(scale),
            "ext3" => figs_ext::ext3_multiple_r(scale),
            "ext4" => figs_ext::ext4_online_correlated(scale),
            "ext" => figs_ext::all(scale),
            "figtcp_62" => figs_tcp::figtcp_62(scale),
            "figtcp_scaleout" => figs_tcp::figtcp_scaleout(scale),
            "tcp" => figs_tcp::all(scale),
            "fanout" | "figtcp_fanout" => figs_fanout::figtcp_fanout(scale),
            "ramp" | "figtcp_ramp" => figs_ramp::figtcp_ramp(scale),
            "discipline" | "figtcp_discipline" => figs_discipline::figtcp_discipline_matrix(scale),
            "erasure" | "figtcp_erasure" => figs_erasure::figtcp_erasure(scale),
            "throughput" => figs_throughput::figtcp_throughput(scale),
            other => {
                eprintln!("unknown figure id: {other}");
                std::process::exit(2);
            }
        };
        let elapsed = start.elapsed();
        // The serving-path figures also persist machine-readable JSON
        // (P99s, realized budgets, drop fractions) at the repo root.
        let json_name = match fig.as_str() {
            "figtcp_62" | "figtcp_scaleout" | "tcp" => Some("BENCH_tcp.json"),
            "fanout" | "figtcp_fanout" => Some("BENCH_fanout.json"),
            "ramp" | "figtcp_ramp" => Some("BENCH_ramp.json"),
            "discipline" | "figtcp_discipline" => Some("BENCH_discipline.json"),
            "erasure" | "figtcp_erasure" => Some("BENCH_erasure.json"),
            "throughput" => Some("BENCH_throughput.json"),
            _ => None,
        };
        if let Some(name) = json_name {
            let queries = if fig == "throughput" {
                figs_throughput::throughput_queries(scale)
            } else {
                figs_tcp::tcp_queries(scale)
            };
            match write_bench_json(std::path::Path::new(name), &fig, queries, &tables) {
                Ok(()) => eprintln!("[{fig}: wrote {name}]"),
                Err(e) => eprintln!("warning: failed to write {name}: {e}"),
            }
        }
        for t in &tables {
            // Scatter tables are large; print only a summary line.
            if t.rows.len() > 60 {
                println!(
                    "== {} == ({} rows, see {}/{}.csv)",
                    t.name,
                    t.rows.len(),
                    dir.display(),
                    t.name
                );
            } else {
                println!("{}", t.render());
            }
            if !no_csv {
                if let Err(e) = t.write_csv(&dir) {
                    eprintln!("warning: failed to write {}: {e}", t.name);
                }
            }
        }
        eprintln!("[{} done in {:.1?}]", fig, elapsed);
    }
}
