//! Extension experiments beyond the paper's figures — the ablations
//! DESIGN.md calls out for design choices the paper leaves implicit.
//!
//! * `ext1` — **in-queue cancellation**: the paper lets every issued
//!   copy run to completion; production systems (and Lee et al., cited
//!   by the paper) often cancel the loser. How much tail and load does
//!   lazy in-queue cancellation recover?
//! * `ext2` — **reissue routing**: the paper's simulator routes
//!   reissues uniformly at random (possibly back onto the primary's
//!   server); classic hedging avoids the primary's replica. How much
//!   does `AvoidPrimary` matter at various budgets?
//! * `ext3` — **MultipleR in a queueing system**: Theorem 3.2 is proved
//!   in the static model; does one-shot SingleR still match a 3-stage
//!   MultipleR with the same measured budget under queueing feedback?
//! * `ext4` — **correlation-aware online adaptation from censored
//!   pairs**: the `OnlineAdapter` fed raced-hedge pairs (losers
//!   censored at their elapsed-at-cancel bound) vs the same adapter
//!   pinned to the §4.1 independence model, on a noise-band + stall
//!   workload where a correlated redraw wins nothing inside the band.

use crate::{eval_fixed, median, parallel_map, tune_single_r, Scale, Table};
use reissue_core::ReissuePolicy;
use simulator::ReissueRouting;
use workloads::{queueing, WorkloadSpec};

/// Tail percentile for the extension experiments.
const K: f64 = 0.95;

/// Per-seed paired comparison: tune one policy on `reference` for each
/// seed, evaluate it on both variants under the same seed, median the
/// per-seed results. Returns `(p95_a, p95_b, rate_a, rate_b)`.
fn paired_ab(
    reference: &WorkloadSpec,
    variant_b: &WorkloadSpec,
    queries: usize,
    seeds: &[u64],
    budget: f64,
    trials: usize,
) -> (f64, f64, f64, f64) {
    let mut la = Vec::new();
    let mut lb = Vec::new();
    let mut ra = Vec::new();
    let mut rb = Vec::new();
    for &seed in seeds {
        let tuned = tune_single_r(reference, queries, seed, K, budget, trials, 0.5);
        let a = eval_fixed(reference, queries, &[seed], K, &tuned.policy);
        let b = eval_fixed(variant_b, queries, &[seed], K, &tuned.policy);
        la.push(a.latency);
        lb.push(b.latency);
        ra.push(a.rate);
        rb.push(b.rate);
    }
    (median(&la), median(&lb), median(&ra), median(&rb))
}

/// ext1: lazy in-queue cancellation on/off, across budgets.
pub fn ext1_cancellation(scale: Scale) -> Vec<Table> {
    let queries = scale.queries(40_000);
    let seeds = scale.seeds(3);
    let budgets = [0.05, 0.1, 0.2, 0.3, 0.5];

    let seeds_ref = &seeds;
    let rows: Vec<Vec<f64>> = parallel_map(budgets.to_vec(), |budget| {
        let plain = queueing(0.3, 0.5, 61);
        let mut cancelling = plain.clone();
        cancelling.cluster.cancel_queued = true;

        // Tune on the paper's (no-cancel) system per seed, evaluate the
        // same policy under both variants — isolating the cancellation
        // mechanism from tuning differences. (Tuning *on* a cancelling
        // system is also confounded: dropped copies censor the primary
        // response log the optimizer consumes.)
        let (p, c, rp, rc) = paired_ab(
            &plain,
            &cancelling,
            queries,
            seeds_ref,
            budget,
            scale.trials(6),
        );
        vec![budget, p, c, rp, rc]
    });

    let mut t = Table::new(
        "ext1_cancellation",
        &[
            "budget",
            "p95_no_cancel",
            "p95_cancel",
            "rate_no_cancel",
            "rate_cancel",
        ],
    );
    for r in rows {
        t.push(r);
    }
    vec![t]
}

/// ext2: reissue routing — Any vs AvoidPrimary.
pub fn ext2_routing(scale: Scale) -> Vec<Table> {
    let queries = scale.queries(40_000);
    let seeds = scale.seeds(3);
    let budgets = [0.05, 0.1, 0.2, 0.3];

    let seeds_ref = &seeds;
    let rows: Vec<Vec<f64>> = parallel_map(budgets.to_vec(), |budget| {
        let any = queueing(0.3, 0.5, 62);
        let mut avoid = any.clone();
        avoid.cluster.reissue_routing = ReissueRouting::AvoidPrimary;

        // One policy per seed, two routing rules (see ext1 on why).
        let (a, v, _, _) = paired_ab(&any, &avoid, queries, seeds_ref, budget, scale.trials(6));
        vec![budget, a, v]
    });

    let mut t = Table::new("ext2_routing", &["budget", "p95_any", "p95_avoid_primary"]);
    for r in rows {
        t.push(r);
    }
    vec![t]
}

/// ext3: SingleR vs a 3-stage MultipleR with the same total measured
/// rate, under queueing feedback. Theorem 3.2 says the static-model
/// optimum needs only one stage; this measures whether splitting a
/// tuned policy's budget across stages helps or hurts in a live queue.
pub fn ext3_multiple_r(scale: Scale) -> Vec<Table> {
    let queries = scale.queries(40_000);
    let seeds = scale.seeds(3);
    let budgets = [0.1, 0.2, 0.3];

    let seeds_ref = &seeds;
    let rows: Vec<Vec<f64>> = parallel_map(budgets.to_vec(), |budget| {
        let spec = queueing(0.3, 0.5, 63);
        let mut ls = Vec::new();
        let mut lm = Vec::new();
        let mut rs = Vec::new();
        let mut rm = Vec::new();
        for &seed in seeds_ref {
            let tuned = tune_single_r(&spec, queries, seed, K, budget, scale.trials(6), 0.5);
            let (d, q) = match tuned.policy {
                ReissuePolicy::SingleR { delay, prob } => (delay.max(1e-6), prob),
                _ => (1e-6, 0.0),
            };
            // Split the tuned policy into three stages straddling its
            // delay, each with a third of the probability: same expected
            // number of coin wins, spread in time.
            let multi = ReissuePolicy::multiple_r(vec![
                (0.5 * d, q / 3.0),
                (d, q / 3.0),
                (1.5 * d, q / 3.0),
            ]);
            let single = ReissuePolicy::single_r(d, q);
            let s = eval_fixed(&spec, queries, &[seed], K, &single);
            let m = eval_fixed(&spec, queries, &[seed], K, &multi);
            ls.push(s.latency);
            lm.push(m.latency);
            rs.push(s.rate);
            rm.push(m.rate);
        }
        vec![budget, median(&ls), median(&lm), median(&rs), median(&rm)]
    });

    let mut t = Table::new(
        "ext3_multiple_r",
        &[
            "budget",
            "p95_singler",
            "p95_multipler3",
            "rate_singler",
            "rate_multipler3",
        ],
    );
    for r in rows {
        t.push(r);
    }
    vec![t]
}

/// ext4: correlation-aware online adaptation from censored race pairs.
///
/// Workload: a query's cost is a shared "noise band" component (a fast
/// mode of cheap lookups or a slow mode of heavy queries, jittered)
/// plus a rare *dispatch-specific* stall. A redraw re-samples only the
/// stall and jitter, so hedging inside the band wins nothing — but the
/// marginal reissue distribution is full of fast-mode samples, which
/// fools the independence model into parking `d` inside the band. Both
/// adapters see the identical censored race stream (the loser of each
/// race is censored at its elapsed-at-cancel bound, as the live
/// `hedge::HedgedClient` produces); only the optimizer differs. The
/// realized P95 under each learned policy, replayed on a fresh stream,
/// quantifies the gap the §4.2 correlated path closes.
pub fn ext4_online_correlated(scale: Scale) -> Vec<Table> {
    use distributions::rng::seeded;
    use distributions::{LogNormal, Sample};
    use rand::rngs::SmallRng;
    use rand::Rng;
    use reissue_core::metrics::quantile;
    use reissue_core::online::{OnlineAdapter, OnlineConfig, ReissueOutcome};

    let n = scale.queries(40_000);
    let stall_ps = [0.01, 0.03, 0.05];
    let rows: Vec<Vec<f64>> = parallel_map(stall_ps.to_vec(), |stall_p| {
        let jitter = LogNormal::new(0.0, 0.15);
        let sample_pair = |rng: &mut SmallRng| {
            let c = if rng.gen::<f64>() < 0.55 { 0.1 } else { 3.0 };
            let leg = |rng: &mut SmallRng| {
                c * jitter.sample(rng)
                    + if rng.gen::<f64>() < stall_p {
                        50.0
                    } else {
                        0.0
                    }
            };
            (leg(rng), leg(rng))
        };
        let base = OnlineConfig {
            k: K,
            budget: 0.1,
            window: 8_000,
            reoptimize_every: 2_000,
            learning_rate: 1.0,
            min_pairs: 200,
            load: None,
        };
        let mut corr = OnlineAdapter::new(base);
        let mut ind = OnlineAdapter::new(OnlineConfig {
            min_pairs: usize::MAX,
            ..base
        });
        let mut rng = seeded(0xE4 + (stall_p * 1e3) as u64);
        let d0 = 0.3; // the hypothetical race delay generating pairs
        for _ in 0..n {
            let (x, y) = sample_pair(&mut rng);
            for a in [&mut corr, &mut ind] {
                if x <= d0 {
                    a.observe_primary(x);
                } else if d0 + y < x {
                    a.observe_pair(x, ReissueOutcome::Completed(y));
                } else {
                    a.observe_pair(x, ReissueOutcome::Censored(x - d0));
                }
            }
        }
        // Replay a fresh stream under each learned policy.
        let (pc, pi) = (corr.policy(), ind.policy());
        let replay = |d: f64, q: f64, x: f64, y: f64, rng: &mut SmallRng| {
            if x > d && rng.gen::<f64>() < q {
                x.min(d + y)
            } else {
                x
            }
        };
        let (mut lat_un, mut lat_ind, mut lat_corr) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        for _ in 0..n {
            let (x, y) = sample_pair(&mut rng);
            lat_un.push(x);
            lat_ind.push(replay(pi.delay, pi.probability, x, y, &mut rng));
            lat_corr.push(replay(pc.delay, pc.probability, x, y, &mut rng));
        }
        vec![
            stall_p,
            pi.delay,
            pc.delay,
            quantile(&lat_un, K),
            quantile(&lat_ind, K),
            quantile(&lat_corr, K),
        ]
    });

    let mut t = Table::new(
        "ext4_online_correlated",
        &[
            "stall_p",
            "d_independent",
            "d_correlated",
            "p95_unhedged",
            "p95_independent",
            "p95_correlated",
        ],
    );
    for r in rows {
        t.push(r);
    }
    vec![t]
}

/// All extension tables.
pub fn all(scale: Scale) -> Vec<Table> {
    let mut tables = ext1_cancellation(scale);
    tables.extend(ext2_routing(scale));
    tables.extend(ext3_multiple_r(scale));
    tables.extend(ext4_online_correlated(scale));
    tables
}
