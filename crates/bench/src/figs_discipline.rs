//! Server-side scheduling A/B: cancellation style × queue discipline,
//! through the real TCP serving path.
//!
//! Two questions the committed `BENCH_discipline.json` answers:
//!
//! 1. **Cancellation** ([`figtcp_cancellation`]) — does dequeue-time
//!    peer cancellation (server-side *tied requests*, "The Tail at
//!    Scale") retract more speculative work before it executes than
//!    the client-driven `CANCEL` round trip? The client style can only
//!    retract a loser after the winner *completed* (winner service +
//!    reply + cancel hop); the tied style retracts the peer the moment
//!    either copy reaches the front of a run queue — and the tie
//!    *collapse* path retracts a reissue immediately when its primary
//!    turns out to be already executing, exactly the marginal
//!    just-past-`d` hedges the client style never catches in time.
//!    One row per utilization plateau, both styles at the identical
//!    aggressive hedge-at-the-median policy (the operating point tied
//!    requests exist for) under the same governed budget.
//!
//! 2. **Discipline** ([`figtcp_discipline`]) — with the reissue budget
//!    held equal, does a non-FIFO run-queue discipline beat FIFO's
//!    P99? The §6.2 workload's queries of death head-of-line-block a
//!    FIFO replica; `CostPriority` (shortest-estimated-job-first) and
//!    `ShortestBurn` (the same with an aging bound against starvation)
//!    let the cheap traffic overtake a *queued* monster, and
//!    `RoundRobin` isolates connections from each other. Two rows per
//!    utilization — an unhedged arm (budget 0, where the reordering
//!    win lives) and a hedged arm at the calibrated `(d*, q*)` (where
//!    the disciplines converge, because the reissue path already
//!    dodges the queued monster) — four disciplines per row on
//!    identical traces.
//!
//! `HEDGE_TCP_QUERIES=<n>` shrinks the runs for smoke testing;
//! `HEDGE_DISCIPLINE_ASSERT=1` (the CI smoke) asserts the acceptance
//! shape in-code: tied retracts at least as many reissues before
//! execution as client-driven at ρ ≥ 0.6, with server-side
//! retractions actually firing, and the best non-FIFO discipline's
//! P99 is no worse than FIFO's. At full scale the separation is
//! starker — the `exec_dup_ratio` column shows the client style
//! letting ≥ 2× more duplicates through to execution at ρ ≥ 0.6, and
//! its P99 degrading under the duplicate load tied mode retracts.

use crate::figs_tcp::{
    online_config, p99, realized_rate, tcp_queries, TcpWorkload, MAX_IN_FLIGHT, NANOS_PER_OP,
};
use crate::{Scale, Table};
use hedge::harness::{Cluster, LoadConfig, LoadReport};
use hedge::{CancellationStyle, Discipline, HedgeConfig, HedgedClient, TcpServerConfig, TieStats};
use reissue_core::policy::ReissuePolicy;

/// Replica count for every run.
const REPLICAS: usize = 3;
/// Reissue budget handed to every hedging arm.
const BUDGET: f64 = 0.08;
/// Utilization plateaus for the cancellation A/B; the acceptance
/// criterion reads the ρ ≥ 0.6 rows.
const CANCEL_UTILS: [f64; 3] = [0.45, 0.6, 0.75];
/// Utilizations for the discipline A/B. Reordering only matters when
/// queues are deep enough that cheap traffic actually sits behind a
/// monster the hedge path could not dodge, so this sweep runs hotter
/// than the cancellation one.
const DISCIPLINE_UTILS: [f64; 2] = [0.6, 0.85];
/// Aging rate for the `ShortestBurn` arm: cost units forgiven per ms
/// of waiting. At the workload's scale (monster ≈ 3.7M cost units) a
/// queued monster outranks fresh zero-cost arrivals only after
/// multiple seconds, so the SRPT-ish behaviour dominates while the
/// starvation bound stays finite.
const SRPT_BOOST: f64 = 1_000.0;

/// One serving run on a fresh cluster with an explicit queue
/// discipline. Returns the tie-table counters summed over the cluster
/// alongside the usual report, because the servers die with the
/// cluster.
fn run_disc(
    wl: &TcpWorkload,
    queries: usize,
    util: f64,
    discipline: Discipline,
    cfg: HedgeConfig,
) -> (LoadReport, HedgedClient, TieStats) {
    let cluster = Cluster::spawn_with(
        REPLICAS,
        &wl.store,
        TcpServerConfig {
            nanos_per_op: NANOS_PER_OP,
            discipline,
        },
    )
    .expect("bind replicas");
    let client = HedgedClient::connect(&cluster.addrs(), cfg).expect("connect client");
    let load = LoadConfig {
        queries,
        arrivals: wl.arrivals_for(REPLICAS, util),
        max_in_flight: MAX_IN_FLIGHT,
        seed: 0xD15C ^ (util * 100.0) as u64,
        script: Vec::new(),
        rate_script: Vec::new(),
    };
    let report = cluster.run_load(&client, &load, wl.command_fn());
    let mut ties = TieStats::default();
    for i in 0..cluster.len() {
        let s = cluster.server(i).tie_stats();
        ties.registered += s.registered;
        ties.peer_cancels_sent += s.peer_cancels_sent;
        ties.retractions += s.retractions;
        ties.collapses += s.collapses;
    }
    (report, client, ties)
}

/// Calibrates one static `(d*, q*)` at the middle plateau with a
/// load-blind online run, then freezes it — both A/B arms replay the
/// identical policy so the only variable is the thing under test.
/// Also returns the run's median latency, the anchor for the
/// aggressive tied-request operating point below.
fn calibrated_policy(wl: &TcpWorkload, queries: usize) -> (ReissuePolicy, f64) {
    let (report, client, _) = run_disc(
        wl,
        queries,
        CANCEL_UTILS[1],
        Discipline::RoundRobin { connections: 0 },
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(online_config(BUDGET)),
            ..HedgeConfig::default()
        },
    );
    let record = client.online_policy().expect("calibration adapter");
    let p50 = report.latency_ms.quantile(0.5).unwrap_or(1.0).max(0.5);
    (
        ReissuePolicy::single_r(record.delay.max(0.1), record.probability.clamp(0.001, 1.0)),
        p50,
    )
}

/// Confirmed in-time retractions per dispatched reissue, from the
/// client's own counters (`-ERR cancelled` markers received) — the
/// same metric for both styles, so the A/B is apples to apples.
fn retract_frac(client: &HedgedClient) -> f64 {
    let s = client.stats();
    s.cancelled_in_time as f64 / s.reissues.max(1) as f64
}

/// The cancellation-style A/B (see module docs). Also runs the
/// discipline sweep so one `figures -- discipline` invocation persists
/// the full matrix.
pub fn figtcp_discipline_matrix(scale: Scale) -> Vec<Table> {
    let queries = tcp_queries(scale);
    let wl = TcpWorkload::generate(queries);
    let (policy, p50) = calibrated_policy(&wl, queries);
    // The cancellation A/B runs at the *tied-request* operating point:
    // hedge at the median (à la "The Tail at Scale", which ties
    // requests precisely because it reissues aggressively), with the
    // governor holding both arms to the same realized budget. At the
    // tail-calibrated `(d*, q*)` there is nothing to separate — the
    // rare deep hedges chase primaries so stuck that either style
    // retracts the loser in time. Aggressive hedging is where the
    // styles differ: most duplicates are *marginal*, and whether they
    // burn a replica depends on cancelling before execution.
    let aggressive = ReissuePolicy::single_r(p50, 1.0);
    let assert_shape = std::env::var("HEDGE_DISCIPLINE_ASSERT").as_deref() == Ok("1");

    // --- Table 1: cancellation style × utilization -------------------
    let mut cancel_t = Table::new(
        "figtcp_cancellation",
        &[
            "util",
            "client_p99",
            "client_rate",
            "client_retract",
            "tied_p99",
            "tied_rate",
            "tied_retract",
            "tied_server_retractions",
            "tied_collapses",
            "retract_ratio",
            "exec_dup_ratio",
        ],
    );
    for &util in &CANCEL_UTILS {
        let arm = |style: CancellationStyle| {
            run_disc(
                &wl,
                queries,
                util,
                Discipline::RoundRobin { connections: 0 },
                HedgeConfig {
                    policy: aggressive.clone(),
                    online: None,
                    budget_cap: Some(1.25 * BUDGET),
                    cancellation: style,
                    ..HedgeConfig::default()
                },
            )
        };
        let (client_rep, client_cl, client_ties) = arm(CancellationStyle::Client);
        let (tied_rep, tied_cl, tied_ties) = arm(CancellationStyle::Tied);
        assert_eq!(
            client_ties.registered, 0,
            "client-driven arm must never register server-side ties"
        );
        let (cr, tr) = (retract_frac(&client_cl), retract_frac(&tied_cl));
        cancel_t.push(vec![
            util,
            p99(&client_rep),
            realized_rate(&client_cl),
            cr,
            p99(&tied_rep),
            realized_rate(&tied_cl),
            tr,
            tied_ties.retractions as f64,
            tied_ties.collapses as f64,
            if cr > 0.0 { tr / cr } else { f64::INFINITY },
            // Duplicates that burned a replica (reissues *not*
            // retracted before execution), client over tied — the
            // wasted-work factor dequeue-time cancellation removes.
            if tr < 1.0 {
                (1.0 - cr) / (1.0 - tr)
            } else {
                f64::INFINITY
            },
        ]);
        if assert_shape && util >= 0.6 {
            assert!(
                tr >= cr,
                "dequeue-time peer cancellation must retract at least as many \
                 reissues as client-driven CANCEL at util {util}: tied {tr:.4} < client {cr:.4}"
            );
            assert!(
                tied_ties.retractions + tied_ties.collapses > 0,
                "the tied arm must retract server-side at util {util}"
            );
        }
    }

    // --- Table 2: discipline × utilization at equal budget -----------
    let disciplines: [(&str, Discipline); 4] = [
        ("fifo", Discipline::Fifo),
        ("rr", Discipline::RoundRobin { connections: 0 }),
        ("cost", Discipline::CostPriority),
        ("srpt", Discipline::ShortestBurn { boost: SRPT_BOOST }),
    ];
    let mut disc_t = Table::new(
        "figtcp_discipline",
        &[
            "util",
            "hedged",
            "fifo_p99",
            "rr_p99",
            "cost_p99",
            "srpt_p99",
            "fifo_rate",
            "rr_rate",
            "cost_rate",
            "srpt_rate",
            "fifo_over_best",
        ],
    );
    // Each utilization gets an unhedged arm (reissue budget 0 — equal
    // across disciplines) and a hedged arm at the calibrated
    // `(d*, q*)` under the governed budget. The shape the acceptance
    // test pins lives in the unhedged rows: a cheap query stuck behind
    // a queued monster has no escape there, so the reordering
    // disciplines rescue the P99 FIFO forfeits. The hedged rows record
    // the interaction finding: a tail-calibrated reissue policy
    // *already* dodges the queued monster (the reissue lands on
    // another replica), so the disciplines converge — scheduling and
    // reissue are substitutes on this workload, not complements.
    for &util in &DISCIPLINE_UTILS {
        for hedged in [0.0f64, 1.0] {
            let mut p99s = Vec::new();
            let mut rates = Vec::new();
            for &(_, d) in &disciplines {
                let cfg = if hedged > 0.0 {
                    HedgeConfig {
                        policy: policy.clone(),
                        online: None,
                        budget_cap: Some(1.25 * BUDGET),
                        cancellation: CancellationStyle::Tied,
                        ..HedgeConfig::default()
                    }
                } else {
                    HedgeConfig {
                        policy: ReissuePolicy::None,
                        online: None,
                        ..HedgeConfig::default()
                    }
                };
                let (rep, cl, _) = run_disc(&wl, queries, util, d, cfg);
                p99s.push(p99(&rep));
                rates.push(realized_rate(&cl));
            }
            let best_non_fifo = p99s[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            let mut row = vec![util, hedged];
            row.extend(&p99s);
            row.extend(&rates);
            row.push(p99s[0] / best_non_fifo);
            disc_t.push(row);
            if assert_shape && hedged == 0.0 {
                assert!(
                    best_non_fifo <= p99s[0] * 1.05,
                    "some non-FIFO discipline must match or beat FIFO P99 unhedged at \
                     util {util}: fifo {:.2} ms vs best non-FIFO {best_non_fifo:.2} ms",
                    p99s[0]
                );
            }
        }
    }
    if assert_shape {
        eprintln!("[discipline assert ok: tied >= client retractions at rho >= 0.6, non-FIFO <= FIFO P99]");
    }
    vec![cancel_t, disc_t]
}
