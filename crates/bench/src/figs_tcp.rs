//! §6.2 system figures regenerated through the **real TCP path**, plus
//! the scale-out sweep.
//!
//! `figs_sys` drives the paper's §6 figures through the cluster
//! *simulator*; the generators here drive them through the serving
//! stack instead — `hedge::harness::Cluster` spins real `TcpServer`
//! replicas, an open-loop load generator offers the §6.2 kvstore
//! trace (rare queries of death included) over sockets, and
//! `hedge::HedgedClient` executes the policies with tied-request
//! cancellation, per-replica health targeting, and live online
//! adaptation. Latencies are wall-clock milliseconds out of the
//! shared log-bucketed histogram.
//!
//! Two figures:
//!
//! * [`figtcp_62`] — P99 vs reissue budget at 3 replicas / 40%
//!   utilization, four policies per point: unhedged, online-correlated
//!   SingleR (the §4.2 adapter), and static SingleR / DoubleR built
//!   from the adapted `(d*, q*)` (the §3 equal-budget comparison).
//! * [`figtcp_scaleout`] — P99 and reduction ratio over replica count
//!   {3, 6, 12} × utilization {0.3, 0.6, 0.85}: the measurement where
//!   redundancy's benefit flips sign with load ("Low Latency via
//!   Redundancy"), now through real sockets.
//!
//! `HEDGE_TCP_QUERIES=<n>` overrides the per-phase query count (the
//! CI smoke job runs a few hundred); at small counts the tables still
//! generate but the tails are noisy and the online adapter may not
//! warm up.

use crate::{Scale, Table};
use hedge::harness::{Arrivals, Cluster, LoadConfig, LoadReport};
use hedge::{HedgeConfig, HedgedClient};
use kvstore::dataset::{Dataset, DatasetConfig};
use kvstore::workload::{Trace, WorkloadConfig};
use kvstore::{Command, KvStore};
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

/// The §6 experiments target P99.
const K: f64 = 0.99;
/// Wall-clock service burn per elementary store operation.
pub(crate) const NANOS_PER_OP: u64 = 150;
/// One in this many queries is a "query of death" (§6.2): a monster
/// intersection whose service time head-of-line-blocks its replica.
const MONSTER_EVERY: usize = 500;
/// Bounded admission for every run; drops are reported per point.
pub(crate) const MAX_IN_FLIGHT: usize = 512;

/// Per-phase query count: `HEDGE_TCP_QUERIES` if set, otherwise
/// scale-dependent (6 000 full / 1 500 fast).
pub fn tcp_queries(scale: Scale) -> usize {
    std::env::var("HEDGE_TCP_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(match scale {
            Scale::Full => 6_000,
            Scale::Fast => 1_500,
        })
}

/// The §6.2 workload behind every TCP figure: a mid-scale instance of
/// the set-intersection dataset plus two monster sets, the query
/// trace, and the mean per-query service time (monsters included) the
/// utilization targeting needs.
pub(crate) struct TcpWorkload {
    pub(crate) store: KvStore,
    trace: Trace,
    /// Mean service time per query in microseconds, monster mass
    /// included.
    pub(crate) mean_service_us: f64,
}

impl TcpWorkload {
    pub(crate) fn generate(queries: usize) -> TcpWorkload {
        let dataset = Dataset::generate(DatasetConfig {
            num_sets: 300,
            universe: 100_000,
            card_mu: (300.0f64).ln(),
            card_sigma: 0.3,
            seed: 0x5e75,
        });
        let trace = Trace::generate(
            &dataset,
            WorkloadConfig {
                num_queries: queries,
                ns_per_op: NANOS_PER_OP as f64,
                seed: 0xbeef,
            },
        );
        // The one shared §6.2 store definition (monster sets
        // included), so these figures replay exactly the cluster
        // example's workload.
        let mut store = kvstore::workload::store_with_monsters(&dataset);
        // Measure the monster's cost the same way the server will
        // account it, then fold it into the trace mean at the monster
        // frequency.
        let (_, monster_ops) = store.execute(&Command::SInterCard(
            kvstore::workload::MONSTER_KEY_A.into(),
            kvstore::workload::MONSTER_KEY_B.into(),
        ));
        let monster_ms = monster_ops as f64 * NANOS_PER_OP as f64 / 1e6;
        let mean_ms = trace.mean_ms() + (monster_ms - trace.mean_ms()) / MONSTER_EVERY as f64;
        TcpWorkload {
            store,
            trace,
            mean_service_us: mean_ms * 1e3,
        }
    }

    /// The command for arrival `i`: the traced intersection, with the
    /// scripted query of death every [`MONSTER_EVERY`] arrivals.
    pub(crate) fn command_fn(&self) -> impl FnMut(usize) -> Command + Send + 'static {
        self.trace.monster_command_fn(MONSTER_EVERY)
    }

    /// Poisson arrival process hitting `util` of an `n`-replica
    /// cluster's service capacity.
    pub(crate) fn arrivals_for(&self, n: usize, util: f64) -> Arrivals {
        Arrivals::Poisson {
            mean_us: (self.mean_service_us / (n as f64 * util)).max(1.0) as u64,
        }
    }

    pub(crate) fn load_config(&self, queries: usize, n: usize, util: f64) -> LoadConfig {
        LoadConfig {
            queries,
            arrivals: self.arrivals_for(n, util),
            max_in_flight: MAX_IN_FLIGHT,
            seed: 0x10AD ^ (n as u64) << 8 ^ (util * 100.0) as u64,
            script: Vec::new(),
            rate_script: Vec::new(),
        }
    }
}

pub(crate) fn online_config(budget: f64) -> OnlineConfig {
    OnlineConfig {
        k: K,
        budget,
        window: 1_000,
        reoptimize_every: 250,
        learning_rate: 0.5,
        min_pairs: 48,
        load: None,
    }
}

/// One phase: spin a fresh cluster, run the open-loop trace through a
/// client with the given configuration, return the report and client.
pub(crate) fn run_phase(
    wl: &TcpWorkload,
    queries: usize,
    n: usize,
    util: f64,
    cfg: HedgeConfig,
) -> (LoadReport, HedgedClient) {
    let cluster = Cluster::spawn(n, &wl.store, NANOS_PER_OP).expect("bind replicas");
    let client = HedgedClient::connect(&cluster.addrs(), cfg).expect("connect client");
    let report = cluster.run_load(&client, &wl.load_config(queries, n, util), wl.command_fn());
    (report, client)
}

pub(crate) fn p99(report: &LoadReport) -> f64 {
    report.quantile(K).unwrap_or(f64::NAN)
}

pub(crate) fn realized_rate(client: &HedgedClient) -> f64 {
    let stats = client.stats();
    stats.reissues as f64 / stats.queries.max(1) as f64
}

/// §6.2 through TCP: P99 vs reissue budget at 3 replicas / 40%
/// utilization, four policies per budget point.
pub fn figtcp_62(scale: Scale) -> Vec<Table> {
    let queries = tcp_queries(scale);
    let wl = TcpWorkload::generate(queries);
    let (n, util) = (3, 0.40);
    let budgets = [0.02, 0.05, 0.08];

    // Unhedged baseline, measured once through the same path.
    let (base, _) = run_phase(
        &wl,
        queries,
        n,
        util,
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: None,
            ..HedgeConfig::default()
        },
    );
    let p99_unhedged = p99(&base);

    let mut t = Table::new(
        "figtcp_62_budget",
        &[
            "budget",
            "unhedged_p99",
            "online_p99",
            "online_rate",
            "singler_p99",
            "singler_rate",
            "doubler_p99",
            "doubler_rate",
            "drop_frac",
        ],
    );
    for &budget in &budgets {
        // Online-correlated adaptation at this budget.
        let (online, client) = run_phase(
            &wl,
            queries,
            n,
            util,
            HedgeConfig {
                policy: ReissuePolicy::None,
                online: Some(online_config(budget)),
                ..HedgeConfig::default()
            },
        );
        let record = client.online_policy().expect("online adapter active");
        let online_rate = realized_rate(&client);
        let online_p99 = p99(&online);
        // Static §3 comparators from the adapted artifacts, replayed
        // at equal governed budget (see the cluster example for the
        // identical-main-stage rationale).
        let d_star = record.delay.max(0.1);
        let q_star = record.probability.clamp(0.001, 1.0);
        let statics: Vec<(f64, f64)> = [
            ReissuePolicy::single_r(d_star, q_star),
            ReissuePolicy::double_r(d_star, q_star, 1.3 * d_star, 0.004),
        ]
        .into_iter()
        .map(|policy| {
            let (report, client) = run_phase(
                &wl,
                queries,
                n,
                util,
                HedgeConfig {
                    policy,
                    online: None,
                    budget_cap: Some(1.25 * budget),
                    ..HedgeConfig::default()
                },
            );
            (p99(&report), realized_rate(&client))
        })
        .collect();
        t.push(vec![
            budget,
            p99_unhedged,
            online_p99,
            online_rate,
            statics[0].0,
            statics[0].1,
            statics[1].0,
            statics[1].1,
            online.drop_rate(),
        ]);
    }
    vec![t]
}

/// The scale-out sweep: replica count × utilization, unhedged vs
/// online-correlated hedging at an 8% budget, all through TCP.
/// Backpressure is part of the result, not an artifact: the dropped
/// fraction of arrivals is a column, so over-capacity points report
/// their shed load instead of silently measuring a different rate.
pub fn figtcp_scaleout(scale: Scale) -> Vec<Table> {
    let queries = tcp_queries(scale);
    let wl = TcpWorkload::generate(queries);
    let budget = 0.08;
    let replicas = [3usize, 6, 12];
    let utils = [0.3, 0.6, 0.85];

    let mut t = Table::new(
        "figtcp_scaleout",
        &[
            "replicas",
            "util",
            "unhedged_p99",
            "hedged_p99",
            "reduction",
            "hedged_rate",
            "drop_unhedged",
            "drop_hedged",
        ],
    );
    for &n in &replicas {
        for &util in &utils {
            let (base, _) = run_phase(
                &wl,
                queries,
                n,
                util,
                HedgeConfig {
                    policy: ReissuePolicy::None,
                    online: None,
                    ..HedgeConfig::default()
                },
            );
            let (hedged, client) = run_phase(
                &wl,
                queries,
                n,
                util,
                HedgeConfig {
                    policy: ReissuePolicy::None,
                    online: Some(online_config(budget)),
                    ..HedgeConfig::default()
                },
            );
            let (pu, ph) = (p99(&base), p99(&hedged));
            t.push(vec![
                n as f64,
                util,
                pu,
                ph,
                if ph > 0.0 { pu / ph } else { f64::NAN },
                realized_rate(&client),
                base.drop_rate(),
                hedged.drop_rate(),
            ]);
        }
    }
    vec![t]
}

/// Both TCP figures.
pub fn all(scale: Scale) -> Vec<Table> {
    let mut tables = figtcp_62(scale);
    tables.extend(figtcp_scaleout(scale));
    tables
}
