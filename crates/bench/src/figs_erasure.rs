//! Replica hedging vs **fragment hedging at equal byte budget** — the
//! erasure tentpole's closing A/B, through the real TCP serving path.
//!
//! Two arms serve the same byte workload (8 KiB values, a 1 MiB
//! monster value every [`MONSTER_EVERY`]th arrival) from `n = 4`
//! servers whose service time is proportional to payload bytes
//! ([`erasure::StripedBackend`]):
//!
//! * **replica arm** — `n` full copies, `hedge::HedgedClient`: a
//!   reissue fetches a second whole value.
//! * **fragment arm** — one `(k = 2, n = 4)` stripe
//!   ([`shard::StripedGroup`]), `erasure::StripedClient`: a reissue
//!   fetches one parity fragment at `1/k` of the bytes.
//!
//! **Equal bytes by construction.** Both arms run an always-willing
//! `SingleR(d, q = 1)` policy behind a [`hedge::BudgetGovernor`]
//! pinned at the byte-equivalent caps: `RATE` reissues/query for the
//! replica arm, `fragment_budget(RATE, k) = k·RATE` for the fragment
//! arm ([`reissue_core::kofn::fragment_budget`]). The timers fire on
//! far more stragglers than the caps admit, so each arm's *realized*
//! rate converges to its cap and the per-query byte costs
//! ([`reissue_core::kofn::bytes_per_query`]) agree — the `budget_ok`
//! column gates each cell at ±5%
//! ([`reissue_core::kofn::budgets_match`]). At those equal bytes the
//! fragment arm affords `k×` the rescue attempts: that is the
//! erasure-coding trade this figure measures. Each arm's delay `d` is
//! its **own** unhedged P50 at the same utilization, so both timers
//! discriminate stragglers from their own bulk.
//!
//! Sweeps utilization {0.3, 0.6, 0.85}. `HEDGE_ERASURE_ASSERT=1` adds
//! the CI shape assertions (budgets match everywhere; fragment P99 ≤
//! replica P99 in at least one cell). `HEDGE_TCP_QUERIES=<n>` shrinks
//! the run for smoke testing (tails get noisy below a few thousand).

use crate::figs_tcp::{tcp_queries, MAX_IN_FLIGHT};
use crate::{Scale, Table};
use erasure::{StripedBackend, StripedClient, StripedConfig};
use hedge::harness::{Arrivals, Cluster, LoadConfig, LoadReport};
use hedge::rt::Runtime;
use hedge::{CancellationStyle, HedgeConfig, HedgedClient, TcpServerConfig};
use kvstore::{Command, KvStore};
use reissue_core::kofn::{budgets_match, bytes_per_query, fragment_budget};
use reissue_core::policy::ReissuePolicy;
use shard::StripedGroup;

use bytes::Bytes;

/// Stripe geometry: 2 data fragments + 2 parity clones.
const K_DATA: usize = 2;
/// Servers per arm (replica copies, or stripe slots).
const N_SLOTS: usize = 4;
/// Service burn per payload-byte unit (see [`StripedBackend`]).
const BYTES_PER_UNIT: u64 = 64;
/// Wall-clock burn per cost unit: a regular read ≈ 516 µs of
/// service, the monster ≈ 65 ms (≈ 33 ms per fragment on the striped
/// arm). Deliberately coarse enough that every burn crosses the
/// server's 200 µs sleep threshold — on a small CI box the sweeper
/// must park, not spin, or `n` "servers" of spin-burn saturate one
/// core at any nominal utilization and flatten the sweep.
const NANOS_PER_OP: u64 = 4_000;
/// Regular value size; fragments are half this plus a header.
const VALUE_LEN: usize = 8 * 1024;
/// The monster value: a whole-value read head-of-line-blocks its
/// server for ~13 ms — the query of death this workload hedges
/// against.
const MONSTER_LEN: usize = 1 << 20;
/// One arrival in this many reads the monster key (phase-shifted so
/// even short smoke runs see one).
const MONSTER_EVERY: usize = 500;
/// Distinct regular keys (spreads the rotated stripe placement over
/// every server).
const KEYS: usize = 64;
/// Replica-arm byte budget in reissues/query; the fragment arm's cap
/// is `fragment_budget(RATE, K_DATA)` = 2× this for the same bytes.
const RATE: f64 = 0.15;
/// Utilization sweep.
const UTILS: [f64; 3] = [0.3, 0.6, 0.85];

fn key(i: usize) -> Vec<u8> {
    format!("ec:{i:03}").into_bytes()
}

fn value(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (j as u32 ^ (i as u32).wrapping_mul(2654435761)) as u8)
        .collect()
}

/// Mean service cost per query in µs, summed over the servers that
/// touch it (the capacity a query consumes, whichever arm serves it):
/// both arms move ≈ the same bytes per primary wave, so one arrival
/// process drives both at the same offered utilization.
fn mean_service_us() -> f64 {
    let regular = 1.0 + (VALUE_LEN as f64 / BYTES_PER_UNIT as f64).ceil();
    let monster = 1.0 + (MONSTER_LEN as f64 / BYTES_PER_UNIT as f64).ceil();
    let mean_units = regular + (monster - regular) / MONSTER_EVERY as f64;
    mean_units * NANOS_PER_OP as f64 / 1e3
}

fn load_config(queries: usize, util: f64) -> LoadConfig {
    LoadConfig {
        queries,
        arrivals: Arrivals::Poisson {
            mean_us: (mean_service_us() / (N_SLOTS as f64 * util)).max(1.0) as u64,
        },
        max_in_flight: MAX_IN_FLIGHT,
        seed: 0xECAB ^ (util * 100.0) as u64,
        script: Vec::new(),
        rate_script: Vec::new(),
    }
}

/// The command for arrival `i`: the monster key once per
/// [`MONSTER_EVERY`] arrivals (offset so short runs still meet it),
/// otherwise a stride walk over the regular keys.
fn make_cmd(i: usize) -> Command {
    if i % MONSTER_EVERY == MONSTER_EVERY / 5 {
        Command::Get(Bytes::from_static(b"ec:monster"))
    } else {
        Command::Get(Bytes::from(key((i * 31) % KEYS)))
    }
}

fn server_config() -> TcpServerConfig {
    TcpServerConfig {
        nanos_per_op: NANOS_PER_OP,
        ..TcpServerConfig::default()
    }
}

/// One replica-arm run: `N_SLOTS` full copies behind a hedged client
/// on a figure-lifetime runtime (losers drain after teardown; the
/// caller's runtime clone keeps the workers alive past the last
/// client-held clone).
fn run_replica_arm(
    rt: &Runtime,
    queries: usize,
    util: f64,
    policy: ReissuePolicy,
    budget_cap: Option<f64>,
) -> (LoadReport, f64) {
    let mut store = KvStore::new();
    for i in 0..KEYS {
        store.execute(&Command::Set(
            Bytes::from(key(i)),
            Bytes::from(value(i, VALUE_LEN)),
        ));
    }
    store.execute(&Command::Set(
        Bytes::from_static(b"ec:monster"),
        Bytes::from(value(usize::MAX, MONSTER_LEN)),
    ));
    let backend = StripedBackend::new(store, BYTES_PER_UNIT);
    let cluster = Cluster::spawn_with(N_SLOTS, &backend, server_config()).expect("bind replicas");
    let client = HedgedClient::connect_with_runtime(
        rt.clone(),
        &cluster.addrs(),
        HedgeConfig {
            policy,
            online: None,
            budget_cap,
            cancellation: CancellationStyle::Tied,
            ..HedgeConfig::default()
        },
    )
    .expect("connect replica-arm client");
    // Cold-start warmup outside the pacer's clock: touch every key
    // (monster included) so connection pools and the page cache are
    // hot before the first measured arrival.
    for i in 0..KEYS {
        let _ = client.execute_blocking(Command::Get(Bytes::from(key(i))));
    }
    let _ = client.execute_blocking(Command::Get(Bytes::from_static(b"ec:monster")));
    let report = cluster.run_load(&client, &load_config(queries, util), make_cmd);
    let stats = client.stats();
    let rate = stats.reissues as f64 / stats.queries.max(1) as f64;
    (report, rate)
}

/// One fragment-arm run: a `(K_DATA, N_SLOTS)` striped group behind
/// the k-of-n client. Also returns the censored-pair count — evidence
/// the tied retraction path ran.
fn run_fragment_arm(
    rt: &Runtime,
    queries: usize,
    util: f64,
    policy: ReissuePolicy,
    budget_cap: Option<f64>,
) -> (LoadReport, f64, u64) {
    let group =
        StripedGroup::spawn(K_DATA, N_SLOTS, BYTES_PER_UNIT, NANOS_PER_OP).expect("bind stripe");
    for i in 0..KEYS {
        group
            .seed(&key(i), &value(i, VALUE_LEN))
            .expect("seed stripe");
    }
    group
        .seed(b"ec:monster", &value(usize::MAX, MONSTER_LEN))
        .expect("seed monster stripe");
    let client = StripedClient::connect_with_runtime(
        rt.clone(),
        &group.addrs(),
        StripedConfig {
            k: K_DATA,
            policy,
            budget_cap,
            cancellation: CancellationStyle::Tied,
            ..StripedConfig::default()
        },
    )
    .expect("connect fragment-arm client");
    // Same cold-start warmup as the replica arm.
    for i in 0..KEYS {
        let _ = client.execute_blocking(Command::Get(Bytes::from(key(i))));
    }
    let _ = client.execute_blocking(Command::Get(Bytes::from_static(b"ec:monster")));
    let report = group.run_load(&client, &load_config(queries, util), make_cmd);
    let stats = client.stats();
    let rate = stats.reissues as f64 / stats.queries.max(1) as f64;
    (report, rate, stats.pairs_censored)
}

fn p99(report: &LoadReport) -> f64 {
    report.quantile(0.99).unwrap_or(f64::NAN)
}

/// The A/B: replica hedging vs fragment hedging at equal byte budget,
/// per utilization.
pub fn figtcp_erasure(scale: Scale) -> Vec<Table> {
    let queries = tcp_queries(scale);
    let q_frag_cap = fragment_budget(RATE, K_DATA);
    // One runtime per arm for the whole figure: loser drains can
    // outlive their client, and the last runtime clone must not drop
    // on one of its own workers.
    let replica_rt = Runtime::new(4);
    let frag_rt = Runtime::new(4);
    let mut t = Table::new(
        "figtcp_erasure",
        &[
            "util",
            "replica_unhedged_p99",
            "frag_unhedged_p99",
            "replica_p99",
            "replica_rate",
            "replica_bytes",
            "frag_p99",
            "frag_rate",
            "frag_bytes",
            "frag_censored_pairs",
            "budget_ok",
        ],
    );
    let mut frag_won_somewhere = false;
    let mut budgets_ok_everywhere = true;
    for &util in &UTILS {
        // Per-arm delay calibration from each arm's own unhedged
        // median: the timer fires on every straggler (q = 1) and the
        // governor admits the first RATE (resp. k·RATE) per query.
        let (replica_base, _) =
            run_replica_arm(&replica_rt, queries, util, ReissuePolicy::None, None);
        let (frag_base, _, _) =
            run_fragment_arm(&frag_rt, queries, util, ReissuePolicy::None, None);
        let d_replica = replica_base.quantile(0.50).unwrap_or(1.0).max(0.05);
        let d_frag = frag_base.quantile(0.50).unwrap_or(1.0).max(0.05);

        let (replica, replica_rate) = run_replica_arm(
            &replica_rt,
            queries,
            util,
            ReissuePolicy::single_r(d_replica, 1.0),
            Some(RATE),
        );
        let (frag, frag_rate, frag_censored) = run_fragment_arm(
            &frag_rt,
            queries,
            util,
            ReissuePolicy::single_r(d_frag, 1.0),
            Some(q_frag_cap),
        );

        if std::env::var("HEDGE_ERASURE_DEBUG").as_deref() == Ok("1") {
            for (name, r) in [
                ("replica_base", &replica_base),
                ("frag_base", &frag_base),
                ("replica", &replica),
                ("frag", &frag),
            ] {
                eprintln!(
                    "[debug util={util} {name}: p50={:?} p90={:?} p99={:?} max={:?} drop={:.4} dispatched={} failed={}]",
                    r.quantile(0.50),
                    r.quantile(0.90),
                    r.quantile(0.99),
                    r.quantile(1.0),
                    r.drop_rate(),
                    r.dispatched,
                    r.failed,
                );
            }
        }
        // Realized per-query byte cost in units of the value size: the
        // replica arm's reissue moves a whole value (k = 1), the
        // fragment arm's a 1/k fragment.
        let replica_bytes = bytes_per_query(1, replica_rate);
        let frag_bytes = bytes_per_query(K_DATA, frag_rate);
        let ok = budgets_match(replica_bytes, frag_bytes, 0.05);
        budgets_ok_everywhere &= ok;
        let (rp, fp) = (p99(&replica), p99(&frag));
        frag_won_somewhere |= fp <= rp;
        t.push(vec![
            util,
            p99(&replica_base),
            p99(&frag_base),
            rp,
            replica_rate,
            replica_bytes,
            fp,
            frag_rate,
            frag_bytes,
            frag_censored as f64,
            if ok { 1.0 } else { 0.0 },
        ]);
    }
    if std::env::var("HEDGE_ERASURE_ASSERT").as_deref() == Ok("1") {
        assert!(
            budgets_ok_everywhere,
            "realized byte budgets diverged beyond ±5% in at least one cell:\n{}",
            t.render()
        );
        assert!(
            frag_won_somewhere,
            "fragment hedging beat replica hedging nowhere:\n{}",
            t.render()
        );
    }
    vec![t]
}
