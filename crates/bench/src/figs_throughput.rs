//! The hot-path throughput figure: single-replica max QPS and heap
//! allocations per request through the full serving stack.
//!
//! This is the measurement the hot-path refactor (thread-per-core
//! runtime, zero-copy RESP, pooled buffers) is judged by. One TCP
//! replica serves a preloaded kvstore with **zero** artificial service
//! burn, and a closed loop of concurrent issuers drives `GET`s through
//! the real [`hedge::HedgedClient`] path — executor, transport pool,
//! RESP codec, server sweep — as fast as the stack allows. With no
//! scripted sickness and no reissue policy, what the wall clock
//! measures is pure per-request overhead: the quantity that fan-out ×
//! shards × replicas multiplies.
//!
//! Allocations are counted by the `figures` binary's counting global
//! allocator (see [`crate::alloc_count`]); the reported figure is the
//! process-wide allocation delta across the measured window divided by
//! completed requests — client *and* server side, since both live in
//! this process, which is exactly the cost a colocated benchmark pays.
//! When the counting allocator is not installed (e.g. unit tests), the
//! column is NaN and serializes as `null`.
//!
//! `figures -- throughput` writes `BENCH_throughput.json`. The
//! committed copy at the repo root keeps the pre-refactor rows
//! (`post_refactor = 0`) alongside regenerated ones so the
//! before/after stays recorded; a fresh run emits only current-tree
//! rows.
//! `HEDGE_THROUGHPUT_QUERIES=<n>` shrinks the run for CI smoke, and
//! `HEDGE_ALLOC_BASELINE=<path>` makes the run fail if
//! allocations/request regress past the committed baseline (the CI
//! guard).

use crate::{alloc_count, Scale, Table};

use hedge::harness::Cluster;
use hedge::{HedgeConfig, HedgedClient};
use kvstore::{Command, KvStore, Reply};
use reissue_core::policy::ReissuePolicy;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Distinct keys preloaded into the store (cycled round-robin by the
/// issuers). Small enough to stay cache-resident: the figure measures
/// the serving stack, not the hash map.
const KEYS: usize = 512;
/// Value payload per key — a typical small-object RESP bulk body.
const VALUE_LEN: usize = 64;
/// Measured sweep points: `(conns, issuers, pipeline)`.
///
/// The first is strict request/reply with one issuer per connection —
/// latency-bound (QPS ≈ conns/RTT), reading the per-request wall
/// path. The second oversubscribes the pool and lets each connection
/// keep eight requests on the wire ([`HedgeConfig::pipeline`]), which
/// saturates the serving stack: frames coalesce into shared syscalls
/// on both sides, and per-request *CPU* — the thing the hot-path
/// refactor cuts — sets the ceiling.
const SWEEP: [(usize, usize, usize); 2] = [(8, 8, 1), (8, 64, 8)];
/// Executor workers on the client runtime.
const WORKERS: usize = 4;

/// Per-run query count: full runs measure a stable QPS; smoke runs
/// (`HEDGE_THROUGHPUT_QUERIES`) just exercise the path.
pub fn throughput_queries(scale: Scale) -> usize {
    if let Ok(v) = std::env::var("HEDGE_THROUGHPUT_QUERIES") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(100);
        }
    }
    match scale {
        Scale::Full => 200_000,
        Scale::Fast => 40_000,
    }
}

fn key(i: usize) -> String {
    format!("bench:k{i:04}")
}

fn preloaded_store() -> KvStore {
    let mut store = KvStore::new();
    let value = vec![b'v'; VALUE_LEN];
    for i in 0..KEYS {
        let (reply, _) = store.execute(&Command::Set(
            key(i).into_bytes().into(),
            value.clone().into(),
        ));
        assert!(matches!(reply, Reply::Ok));
    }
    store
}

/// Drives `queries` GETs through `client` closed-loop from `conns`
/// concurrent issuers; returns elapsed seconds.
fn closed_loop(client: &HedgedClient, conns: usize, queries: usize) -> f64 {
    let issued = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|_| {
            let client = client.clone();
            let issued = issued.clone();
            client.runtime().clone().spawn(async move {
                loop {
                    let i = issued.fetch_add(1, Ordering::Relaxed);
                    if i >= queries as u64 {
                        break;
                    }
                    let k = key(i as usize % KEYS);
                    let reply = client
                        .execute(Command::Get(k.into_bytes().into()))
                        .await
                        .expect("throughput GET failed");
                    assert!(
                        matches!(reply, Reply::Str(_)),
                        "preloaded key must resolve to a value"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        client.runtime().block_on(h);
    }
    start.elapsed().as_secs_f64()
}

/// Single-replica max-QPS + allocations/request measurement.
///
/// Columns: `post_refactor` (0 = committed pre-refactor baseline, 1 =
/// current tree), `conns`, `issuers`, `pipeline`, `queries`, `qps`,
/// `allocs_per_req`, `p50_us`, `p99_us`.
pub fn figtcp_throughput(scale: Scale) -> Vec<Table> {
    let queries = throughput_queries(scale);
    let mut t = Table::new(
        "throughput_single_replica",
        &[
            "post_refactor",
            "conns",
            "issuers",
            "pipeline",
            "queries",
            "qps",
            "allocs_per_req",
            "p50_us",
            "p99_us",
        ],
    );
    t.queries_per_phase = Some(queries);

    let store = preloaded_store();
    let cluster = Cluster::spawn(1, &store, 0).expect("bind throughput replica");
    let mut worst_allocs_per_req = f64::NAN;
    for &(conns, issuers, pipeline) in &SWEEP {
        let client = HedgedClient::connect(
            &cluster.addrs(),
            HedgeConfig {
                policy: ReissuePolicy::None,
                online: None,
                pool_per_replica: conns,
                pipeline,
                workers: WORKERS,
                ..HedgeConfig::default()
            },
        )
        .expect("connect throughput client");

        // Warmup: fill connection pools, fault in code paths, settle
        // the sweeper, then snapshot the allocation counter so
        // steady-state cost — not setup — is what gets divided by
        // `queries`.
        closed_loop(&client, issuers, (queries / 10).clamp(50, 5_000));
        let allocs_before = alloc_count::allocations();
        let elapsed = closed_loop(&client, issuers, queries);
        let allocs = alloc_count::allocations() - allocs_before;

        let qps = queries as f64 / elapsed;
        let allocs_per_req = if alloc_count::installed() {
            allocs as f64 / queries as f64
        } else {
            f64::NAN
        };
        // `f64::max` ignores NaN on either side, so the first finite
        // measurement replaces the NaN seed.
        worst_allocs_per_req = worst_allocs_per_req.max(allocs_per_req);
        let hist = client.latency_histogram();
        let p50_us = hist.quantile(0.50).map_or(f64::NAN, |ms| ms * 1e3);
        let p99_us = hist.quantile(0.99).map_or(f64::NAN, |ms| ms * 1e3);
        t.push(vec![
            1.0,
            conns as f64,
            issuers as f64,
            pipeline as f64,
            queries as f64,
            qps,
            allocs_per_req,
            p50_us,
            p99_us,
        ]);

        eprintln!(
            "[throughput] {qps:.0} qps, {allocs_per_req:.1} allocs/req, \
             p50 {p50_us:.0}us p99 {p99_us:.0}us ({queries} queries, {conns} conns, \
             {issuers} issuers, pipeline {pipeline})"
        );
    }

    if let Ok(baseline) = std::env::var("HEDGE_ALLOC_BASELINE") {
        // Guard with the worst sweep point: allocations/request must
        // hold across the whole concurrency range, not just the
        // friendliest row.
        check_alloc_regression(worst_allocs_per_req, std::path::Path::new(&baseline));
    }
    vec![t]
}

/// The CI allocation-regression guard: compares a fresh
/// allocations/request measurement against the committed
/// `BENCH_throughput.json` baseline and aborts the process when the
/// fresh number exceeds the committed post-refactor row by more than
/// [`ALLOC_SLACK`].
///
/// # Panics
/// Panics (failing the CI step) on regression or an unreadable /
/// unparseable baseline file.
pub fn check_alloc_regression(fresh_allocs_per_req: f64, baseline_path: &std::path::Path) {
    if !fresh_allocs_per_req.is_finite() {
        eprintln!(
            "[throughput] counting allocator not installed; skipping allocation guard \
             (run via the `figures` binary to enforce it)"
        );
        return;
    }
    let baseline = baseline_allocs_per_req(baseline_path).unwrap_or_else(|e| {
        panic!(
            "allocation guard: cannot read baseline from {}: {e}",
            baseline_path.display()
        )
    });
    let ceiling = baseline * ALLOC_SLACK;
    assert!(
        fresh_allocs_per_req <= ceiling,
        "allocation regression: {fresh_allocs_per_req:.1} allocs/request exceeds committed \
         baseline {baseline:.1} × {ALLOC_SLACK} = {ceiling:.1} (from {})",
        baseline_path.display()
    );
    eprintln!(
        "[throughput] allocation guard ok: {fresh_allocs_per_req:.1} <= {baseline:.1} × \
         {ALLOC_SLACK}"
    );
}

/// Headroom multiplier on the committed baseline before the guard
/// fires: allocation counts are deterministic per request on the hot
/// path but warmup truncation and pool growth add small run-to-run
/// noise at smoke query counts.
pub const ALLOC_SLACK: f64 = 1.30;

/// Extracts the `allocs_per_req` cell of the most recent
/// `post_refactor = 1` row (falling back to the last row) from a
/// `BENCH_throughput.json` written by [`crate::write_bench_json`].
/// Minimal scan for the writer's own fixed layout, not a general JSON
/// parser.
pub fn baseline_allocs_per_req(path: &std::path::Path) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let cols_start = text.find("\"columns\": [").ok_or("missing columns array")?;
    let cols_text = &text[cols_start + "\"columns\": [".len()..];
    let cols_end = cols_text.find(']').ok_or("unterminated columns array")?;
    let columns: Vec<String> = cols_text[..cols_end]
        .split(',')
        .map(|c| c.trim().trim_matches('"').to_string())
        .collect();
    let alloc_idx = columns
        .iter()
        .position(|c| c == "allocs_per_req")
        .ok_or("no allocs_per_req column")?;
    let phase_idx = columns.iter().position(|c| c == "post_refactor");

    let mut best: Option<f64> = None;
    let mut last: Option<f64> = None;
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('[') {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_start_matches('[')
            .trim_end_matches(',')
            .trim_end_matches(']')
            .split(',')
            .map(str::trim)
            .collect();
        if cells.len() != columns.len() {
            continue;
        }
        let val: f64 = match cells[alloc_idx].parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        last = Some(val);
        if let Some(pi) = phase_idx {
            if cells[pi].parse::<f64>() == Ok(1.0) {
                best = Some(val);
            }
        }
    }
    best.or(last).ok_or_else(|| "no data rows".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn baseline_extraction_prefers_post_refactor_row() {
        let mut t = Table::new(
            "throughput_single_replica",
            &[
                "post_refactor",
                "conns",
                "issuers",
                "pipeline",
                "queries",
                "qps",
                "allocs_per_req",
                "p50_us",
                "p99_us",
            ],
        );
        t.push(vec![
            0.0, 8.0, 8.0, 1.0, 1000.0, 50_000.0, 90.0, 100.0, 400.0,
        ]);
        t.push(vec![
            1.0, 8.0, 8.0, 1.0, 1000.0, 90_000.0, 30.0, 60.0, 250.0,
        ]);
        let json = crate::tables_to_json("throughput", 1000, &[t]);
        let path = std::env::temp_dir().join("reissue_bench_throughput_baseline_test.json");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(json.as_bytes()).unwrap();
        let v = baseline_allocs_per_req(&path).unwrap();
        assert!((v - 30.0).abs() < 1e-9, "want post-refactor row, got {v}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn guard_passes_under_and_panics_over_ceiling() {
        let mut t = Table::new("t", &["post_refactor", "allocs_per_req"]);
        t.push(vec![1.0, 40.0]);
        let json = crate::tables_to_json("throughput", 10, &[t]);
        let path = std::env::temp_dir().join("reissue_bench_throughput_guard_test.json");
        std::fs::write(&path, json).unwrap();
        check_alloc_regression(40.0 * ALLOC_SLACK - 1.0, &path);
        let over =
            std::panic::catch_unwind(|| check_alloc_regression(40.0 * ALLOC_SLACK + 1.0, &path));
        assert!(over.is_err(), "guard must fail past the ceiling");
        std::fs::remove_file(&path).ok();
    }
}
