//! Generators for the system-experiment figures (§6): Figures 7–9.
//!
//! The paper runs Redis and Lucene on a 10-server testbed; here the
//! engines are this repository's `kvstore` and `searchengine` crates,
//! whose *measured* per-query costs drive the cluster simulator (see
//! DESIGN.md for the substitution argument).

use crate::{
    eval_policy, eval_tuned_single_d, eval_tuned_single_r, parallel_map, tune_single_r, Scale,
    Table,
};
use reissue_core::budget::optimize_budget;
use reissue_core::metrics::{Histogram, LogHistogram};
use reissue_core::ReissuePolicy;
use workloads::{lucene_cluster, lucene_trace, redis_cluster, redis_trace, WorkloadSpec};

/// The §6 experiments target P99.
const K: f64 = 0.99;

/// The two systems under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sys {
    Redis,
    Lucene,
}

impl Sys {
    fn label(self) -> &'static str {
        match self {
            Sys::Redis => "redis",
            Sys::Lucene => "lucene",
        }
    }
}

/// Generates both engine traces once (expensive: real engine
/// executions) and returns `(redis_costs, lucene_costs)`.
pub fn traces(scale: Scale) -> (Vec<f64>, Vec<f64>) {
    match scale {
        Scale::Full => (redis_trace(1), lucene_trace(1)),
        Scale::Fast => {
            // Scaled-down engines for smoke runs.
            let dataset = kvstore::Dataset::generate(kvstore::DatasetConfig {
                num_sets: 300,
                ..kvstore::DatasetConfig::default()
            });
            let mut t = kvstore::Trace::generate(
                &dataset,
                kvstore::WorkloadConfig {
                    num_queries: 4_000,
                    ..kvstore::WorkloadConfig::default()
                },
            );
            t.calibrate_to_mean(2.366);
            let corpus = searchengine::Corpus::generate(searchengine::CorpusConfig {
                num_docs: 4_000,
                vocab: 8_000,
                ..searchengine::CorpusConfig::default()
            });
            let index = corpus.build_index();
            let mut q = searchengine::QueryTrace::generate(
                &index,
                searchengine::QueryWorkloadConfig {
                    num_queries: 2_000,
                    ..searchengine::QueryWorkloadConfig::default()
                },
                100.0,
            );
            q.calibrate_to_mean(39.73);
            (t.costs_ms, q.costs_ms)
        }
    }
}

fn cluster_for(sys: Sys, costs: &[f64], util: f64, seed: u64) -> WorkloadSpec {
    match sys {
        Sys::Redis => redis_cluster(costs.to_vec(), util, seed),
        Sys::Lucene => lucene_cluster(costs.to_vec(), util, seed),
    }
}

/// Figure 7a: P99 vs reissue rate (0–6 %), SingleR vs SingleD, both
/// systems at 40 % utilization.
pub fn fig7a(scale: Scale) -> Vec<Table> {
    let (redis_costs, lucene_costs) = traces(scale);
    fig7a_with(scale, &redis_costs, &lucene_costs)
}

/// Figure 7a with pre-generated traces (so `all` shares the engines).
pub fn fig7a_with(scale: Scale, redis_costs: &[f64], lucene_costs: &[f64]) -> Vec<Table> {
    let queries = scale.queries(40_000);
    let seeds = scale.seeds(3);
    let rates = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06];

    let mut jobs = Vec::new();
    for sys in [Sys::Redis, Sys::Lucene] {
        for &b in &rates {
            jobs.push((sys, b));
        }
    }
    let seeds_ref = &seeds;
    let rows: Vec<(Sys, f64, f64, f64, f64, f64)> = parallel_map(jobs, |(sys, budget)| {
        let costs = match sys {
            Sys::Redis => redis_costs,
            Sys::Lucene => lucene_costs,
        };
        let spec = cluster_for(sys, costs, 0.40, 71);
        if budget == 0.0 {
            let (lat, _) = eval_policy(&spec, queries, seeds_ref, K, &ReissuePolicy::None);
            (sys, budget, lat, 0.0, lat, 0.0)
        } else {
            let r = eval_tuned_single_r(&spec, queries, seeds_ref, K, budget, scale.trials(8), 0.5);
            let d = eval_tuned_single_d(&spec, queries, seeds_ref, K, budget, scale.trials(8));
            (sys, budget, r.latency, r.rate, d.latency, d.rate)
        }
    });

    [Sys::Redis, Sys::Lucene]
        .iter()
        .map(|&sys| {
            let mut t = Table::new(
                format!("fig7a_{}", sys.label()),
                &[
                    "budget",
                    "singler_p99",
                    "singler_rate",
                    "singled_p99",
                    "singled_rate",
                ],
            );
            for r in rows.iter().filter(|r| r.0 == sys) {
                t.push(vec![r.1, r.2, r.3, r.4, r.5]);
            }
            t
        })
        .collect()
}

/// Figure 7b: P99 vs reissue rate at 20/40/60 % utilization (SingleR).
pub fn fig7b(scale: Scale) -> Vec<Table> {
    let (redis_costs, lucene_costs) = traces(scale);
    fig7b_with(scale, &redis_costs, &lucene_costs)
}

/// Figure 7b with pre-generated traces.
pub fn fig7b_with(scale: Scale, redis_costs: &[f64], lucene_costs: &[f64]) -> Vec<Table> {
    let queries = scale.queries(40_000);
    let seeds = scale.seeds(2);
    let utils = [0.2, 0.4, 0.6];
    let rates = [0.0, 0.01, 0.02, 0.03, 0.05, 0.08];

    let mut jobs = Vec::new();
    for sys in [Sys::Redis, Sys::Lucene] {
        for &u in &utils {
            for &b in &rates {
                jobs.push((sys, u, b));
            }
        }
    }
    let seeds_ref = &seeds;
    let rows: Vec<(Sys, f64, f64, f64, f64)> = parallel_map(jobs, |(sys, util, budget)| {
        let costs = match sys {
            Sys::Redis => redis_costs,
            Sys::Lucene => lucene_costs,
        };
        let spec = cluster_for(sys, costs, util, 72);
        if budget == 0.0 {
            let (lat, _) = eval_policy(&spec, queries, seeds_ref, K, &ReissuePolicy::None);
            (sys, util, budget, lat, 0.0)
        } else {
            let tuned =
                eval_tuned_single_r(&spec, queries, seeds_ref, K, budget, scale.trials(8), 0.5);
            (sys, util, budget, tuned.latency, tuned.rate)
        }
    });

    [Sys::Redis, Sys::Lucene]
        .iter()
        .map(|&sys| {
            let mut t = Table::new(
                format!("fig7b_{}", sys.label()),
                &["budget", "p99_util20", "p99_util40", "p99_util60"],
            );
            for &b in &rates {
                let mut row = vec![b];
                for &u in &utils {
                    let v = rows
                        .iter()
                        .find(|r| r.0 == sys && r.1 == u && r.2 == b)
                        .map(|r| r.3)
                        .unwrap_or(f64::NAN);
                    row.push(v);
                }
                t.push(row);
            }
            t
        })
        .collect()
}

/// Figure 7c: best-budget P99 vs utilization (20–60 %), against the
/// no-reissue baseline. The best budget per utilization comes from the
/// §4.4 expanding binary search.
pub fn fig7c(scale: Scale) -> Vec<Table> {
    let (redis_costs, lucene_costs) = traces(scale);
    fig7c_with(scale, &redis_costs, &lucene_costs)
}

/// Figure 7c with pre-generated traces.
pub fn fig7c_with(scale: Scale, redis_costs: &[f64], lucene_costs: &[f64]) -> Vec<Table> {
    let queries = scale.queries(25_000);
    let utils = [0.2, 0.3, 0.4, 0.5, 0.6];
    let search_trials = scale.trials(10);

    let mut jobs = Vec::new();
    for sys in [Sys::Redis, Sys::Lucene] {
        for &u in &utils {
            jobs.push((sys, u));
        }
    }
    let rows: Vec<(Sys, f64, f64, f64, f64)> = parallel_map(jobs, |(sys, util)| {
        let costs = match sys {
            Sys::Redis => redis_costs,
            Sys::Lucene => lucene_costs,
        };
        let spec = cluster_for(sys, costs, util, 73);
        // Common random numbers: every budget probe tunes and measures
        // on the same realization, so probes are comparable.
        let seed = 2000;
        let base = eval_policy(&spec, queries, &[seed], K, &ReissuePolicy::None).0;
        let result = optimize_budget(
            |budget| {
                if budget == 0.0 {
                    return base;
                }
                let tuned = tune_single_r(&spec, queries, seed, K, budget, scale.trials(6), 0.5);
                eval_policy(&spec, queries, &[seed], K, &tuned.policy).0
            },
            0.01,
            0.3,
            search_trials,
        );
        (sys, util, result.best_budget, result.best_latency, base)
    });

    [Sys::Redis, Sys::Lucene]
        .iter()
        .map(|&sys| {
            let mut t = Table::new(
                format!("fig7c_{}", sys.label()),
                &["util", "best_budget", "best_p99", "noreissue_p99"],
            );
            for r in rows.iter().filter(|r| r.0 == sys) {
                t.push(vec![r.1, r.2, r.3, r.4]);
            }
            t
        })
        .collect()
}

/// Figure 8: the budget binary-search trace on the Redis workload at
/// 20 % utilization — probed budget and P99 per trial.
pub fn fig8(scale: Scale) -> Vec<Table> {
    let (redis_costs, _) = traces(scale);
    fig8_with(scale, &redis_costs)
}

/// Figure 8 with a pre-generated trace.
pub fn fig8_with(scale: Scale, redis_costs: &[f64]) -> Vec<Table> {
    let queries = scale.queries(25_000);
    let spec = redis_cluster(redis_costs.to_vec(), 0.20, 73);
    // Same realization as fig7c's 20%-util point, so the two figures
    // tell one consistent story (the expand/halve walk is sensitive to
    // whether its very first +1% probe lands well; the paper's Figure 8
    // likewise shows a single representative search).
    let seed = 2000;
    let result = optimize_budget(
        |budget| {
            if budget == 0.0 {
                return eval_policy(&spec, queries, &[seed], K, &ReissuePolicy::None).0;
            }
            let tuned = tune_single_r(&spec, queries, seed, K, budget, scale.trials(8), 0.5);
            eval_policy(&spec, queries, &[seed], K, &tuned.policy).0
        },
        0.01,
        0.3,
        scale.trials(14),
    );

    let mut t = Table::new(
        "fig8_budget_search",
        &["trial", "budget", "p99", "best_budget", "best_p99"],
    );
    for (i, trial) in result.trials.iter().enumerate() {
        t.push(vec![
            i as f64,
            trial.budget,
            trial.latency,
            trial.best_budget,
            trial.best_latency,
        ]);
    }
    vec![t]
}

/// Figure 9: service-time histograms (20 ms bins) of the Redis and
/// Lucene traces, plus summary moments matched against the paper's
/// measurements (µ_R = 2.366 ms, σ_R = 8.64; µ_L = 39.73 ms,
/// σ_L = 21.88).
pub fn fig9(scale: Scale) -> Vec<Table> {
    let (redis_costs, lucene_costs) = traces(scale);
    fig9_with(&redis_costs, &lucene_costs)
}

/// Figure 9 with pre-generated traces.
pub fn fig9_with(redis_costs: &[f64], lucene_costs: &[f64]) -> Vec<Table> {
    let mut tables = Vec::new();
    for (name, costs) in [("redis", redis_costs), ("lucene", lucene_costs)] {
        let mut h = Histogram::new(20.0, 12); // 20 ms bins to 240 ms
                                              // The shared streaming recorder carries the summary moments
                                              // exactly (and the >100 ms mass at its bucket resolution) —
                                              // this used to be a second hand-rolled pass over the costs.
        let mut stream = LogHistogram::latency_ms();
        for &c in costs {
            h.record(c);
            stream.record(c);
        }
        let mut t = Table::new(format!("fig9_{name}_hist"), &["bin_mid_ms", "count"]);
        for (mid, count) in h.bins() {
            t.push(vec![mid, count as f64]);
        }
        t.push(vec![f64::INFINITY, h.overflow() as f64]);
        tables.push(t);

        let mut s = Table::new(
            format!("fig9_{name}_stats"),
            &["mean_ms", "std_ms", "frac_above_100ms", "max_ms"],
        );
        s.push(vec![
            stream.mean().unwrap_or(f64::NAN),
            stream.std().unwrap_or(f64::NAN),
            // Exact, not `stream.count_over(100.0)`: 100 ms is not a
            // bucket boundary, and this is a published paper statistic
            // while the costs are in hand anyway.
            costs.iter().filter(|&&c| c > 100.0).count() as f64 / costs.len().max(1) as f64,
            stream.max().unwrap_or(f64::NAN),
        ]);
        tables.push(s);
    }
    tables
}

/// Runs all §6 figures sharing one pair of engine traces.
pub fn fig7_to_9(scale: Scale) -> Vec<Table> {
    let (redis_costs, lucene_costs) = traces(scale);
    let mut tables = Vec::new();
    tables.extend(fig7a_with(scale, &redis_costs, &lucene_costs));
    tables.extend(fig7b_with(scale, &redis_costs, &lucene_costs));
    tables.extend(fig7c_with(scale, &redis_costs, &lucene_costs));
    tables.extend(fig8_with(scale, &redis_costs));
    tables.extend(fig9_with(&redis_costs, &lucene_costs));
    tables
}
