//! Differential tests: the zero-copy RESP codec against the reference
//! (owned-`Vec`, pre-refactor) implementation preserved in
//! `resp::reference`.
//!
//! Random command/reply sequences are encoded by both encoders (must
//! be byte-identical) and decoded by both parsers with the stream
//! split at **every byte boundary** (must yield identical value/error
//! sequences and identical residual buffers). No external proptest
//! crate exists in this tree, so generation runs on a hand-rolled
//! xorshift PRNG with fixed seeds — failures reproduce exactly.

use bytes::BytesMut;
use kvstore::resp::{self, reference, RespError};
use kvstore::{Command, Hit, Reply};

/// xorshift64*: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| (self.next() & 0xFF) as u8).collect()
    }

    fn key(&mut self) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&self.bytes(12))
    }

    fn members(&mut self) -> Vec<u32> {
        let n = self.below(6) as usize;
        (0..n).map(|_| self.next() as u32).collect()
    }

    /// At least one member: `SADD key` with no members is wrong-arity
    /// by protocol, so it is outside the round-trip domain.
    fn members_nonempty(&mut self) -> Vec<u32> {
        let n = 1 + self.below(5) as usize;
        (0..n).map(|_| self.next() as u32).collect()
    }
}

fn random_addr(rng: &mut Rng) -> std::net::SocketAddr {
    // IPv4 and IPv6 display forms both round-trip through FromStr.
    if rng.below(4) == 0 {
        std::net::SocketAddr::from((
            std::net::Ipv6Addr::new(0, 0, 0, 0, 0, 0, 0, 1),
            (rng.next() % 65_536) as u16,
        ))
    } else {
        std::net::SocketAddr::from((
            std::net::Ipv4Addr::new(
                127,
                (rng.next() % 256) as u8,
                (rng.next() % 256) as u8,
                (rng.next() % 256) as u8,
            ),
            (rng.next() % 65_536) as u16,
        ))
    }
}

fn random_command(rng: &mut Rng) -> Command {
    match rng.below(15) {
        0 => Command::Ping,
        1 => Command::Get(rng.key()),
        2 => Command::Set(rng.key(), bytes::Bytes::copy_from_slice(&rng.bytes(40))),
        3 => Command::Del(rng.key()),
        4 => Command::SAdd(rng.key(), rng.members_nonempty()),
        5 => Command::SCard(rng.key()),
        6 => Command::SInter(rng.key(), rng.key()),
        7 => Command::SInterCard(rng.key(), rng.key()),
        8 => Command::Search {
            terms: rng.members(),
            k: rng.next() as u32 % 100,
        },
        9 => {
            let peer = if rng.below(2) == 0 {
                None
            } else {
                let addr = random_addr(rng);
                Some((addr, rng.next()))
            };
            Command::Tie {
                id: rng.next(),
                peer,
            }
        }
        10 => Command::TiePeer {
            id: rng.next(),
            peer_addr: random_addr(rng),
            peer_id: rng.next(),
        },
        11 => Command::CancelTie(rng.next()),
        12 => Command::FGet(rng.key(), rng.next() as u32 % 16),
        13 => Command::FSet(
            rng.key(),
            rng.next() as u32 % 16,
            bytes::Bytes::copy_from_slice(&rng.bytes(40)),
        ),
        _ => Command::Cancel(rng.next()),
    }
}

fn random_reply(rng: &mut Rng) -> Reply {
    match rng.below(8) {
        0 => Reply::Ok,
        1 => Reply::Pong,
        // Straddle the zero-copy threshold (1024) from both sides.
        2 => Reply::Str(bytes::Bytes::copy_from_slice(&rng.bytes(2048))),
        3 => match rng.below(4) {
            0 => Reply::Int(i64::MIN),
            1 => Reply::Int(i64::MAX),
            _ => Reply::Int(rng.next() as i64),
        },
        4 => Reply::Members(rng.members()),
        5 => {
            // Non-empty: an empty hit array is indistinguishable from
            // Members([]) on the wire, so it decodes as Members.
            let n = 1 + rng.below(4) as usize;
            Reply::Hits(
                (0..n)
                    .map(|_| Hit::new(rng.next(), (rng.next() % 1000) as f64 * 0.125))
                    .collect(),
            )
        }
        6 => Reply::Nil,
        _ => {
            // Error payloads are line-framed: keep them CRLF-free
            // printable ASCII, as the server does.
            let n = rng.below(20) as usize;
            let msg: String = (0..n)
                .map(|_| (b'a' + rng.below(26) as u8) as char)
                .collect();
            Reply::Error(msg)
        }
    }
}

/// A syntactically valid RESP array of arbitrary bulk strings — the
/// raw-frame generator for the error paths (unknown commands, wrong
/// arity, non-integer members, empty arrays).
fn raw_array(rng: &mut Rng, out: &mut BytesMut) {
    let n = rng.below(4) as usize;
    out.extend_from_slice(format!("*{n}\r\n").as_bytes());
    for _ in 0..n {
        let arg = match rng.below(4) {
            0 => b"GET".to_vec(),
            1 => b"BOGUS".to_vec(),
            2 => rng.bytes(6),
            _ => format!("{}", rng.next() % 100).into_bytes(),
        };
        out.extend_from_slice(format!("${}\r\n", arg.len()).as_bytes());
        out.extend_from_slice(&arg);
        out.extend_from_slice(b"\r\n");
    }
}

/// Drains one decoder until it wants more bytes, recording values and
/// errors. A decoder that errors without consuming input would loop
/// forever here; both implementations consume the offending frame, and
/// the guard asserts that stays true.
fn drain<T: std::fmt::Debug>(
    buf: &mut BytesMut,
    mut dec: impl FnMut(&mut BytesMut) -> Result<Option<T>, RespError>,
    out: &mut Vec<Result<T, RespError>>,
) {
    loop {
        let before = buf.len();
        match dec(buf) {
            Ok(Some(v)) => out.push(Ok(v)),
            Ok(None) => break,
            Err(e) => {
                assert!(buf.len() < before, "decoder errored without consuming");
                out.push(Err(e));
            }
        }
    }
}

/// Feeds `wire` to both decoders split at byte `i`, asserting the
/// decoded sequences and the residual buffers match at every stage.
fn assert_split_equivalence<T>(
    wire: &[u8],
    i: usize,
    new_dec: impl Fn(&mut BytesMut) -> Result<Option<T>, RespError> + Copy,
    ref_dec: impl Fn(&mut BytesMut) -> Result<Option<T>, RespError> + Copy,
) -> Vec<Result<T, RespError>>
where
    T: PartialEq + std::fmt::Debug,
{
    let (mut new_buf, mut ref_buf) = (BytesMut::new(), BytesMut::new());
    let (mut new_out, mut ref_out) = (Vec::new(), Vec::new());
    for chunk in [&wire[..i], &wire[i..]] {
        new_buf.extend_from_slice(chunk);
        ref_buf.extend_from_slice(chunk);
        drain(&mut new_buf, new_dec, &mut new_out);
        drain(&mut ref_buf, ref_dec, &mut ref_out);
        assert_eq!(new_out, ref_out, "split at byte {i}");
        assert_eq!(&new_buf[..], &ref_buf[..], "residual bytes at split {i}");
    }
    assert!(new_buf.is_empty(), "whole stream must decode");
    new_out
}

#[test]
fn encoders_byte_identical_on_random_values() {
    let mut rng = Rng(0xE9C0DE);
    for _ in 0..200 {
        let (mut a, mut b) = (BytesMut::new(), BytesMut::new());
        let cmd = random_command(&mut rng);
        resp::encode_command(&cmd, &mut a);
        reference::encode_command(&cmd, &mut b);
        assert_eq!(&a[..], &b[..], "command encoders diverged on {cmd:?}");

        let (mut a, mut b) = (BytesMut::new(), BytesMut::new());
        let reply = random_reply(&mut rng);
        resp::encode_reply(&reply, &mut a);
        reference::encode_reply(&reply, &mut b);
        assert_eq!(&a[..], &b[..], "reply encoders diverged on {reply:?}");
    }
}

#[test]
fn command_streams_round_trip_at_every_split_boundary() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..25 {
        let cmds: Vec<Command> = (0..3).map(|_| random_command(&mut rng)).collect();
        let mut wire = BytesMut::new();
        for c in &cmds {
            resp::encode_command(c, &mut wire);
        }
        for i in 0..=wire.len() {
            let out =
                assert_split_equivalence(&wire, i, resp::decode_command, reference::decode_command);
            let decoded: Vec<_> = out.into_iter().map(|r| r.expect("valid frame")).collect();
            assert_eq!(decoded, cmds, "round trip at split {i}");
        }
    }
}

#[test]
fn reply_streams_round_trip_at_every_split_boundary() {
    let mut rng = Rng(0x5EED);
    for _ in 0..25 {
        let replies: Vec<Reply> = (0..3).map(|_| random_reply(&mut rng)).collect();
        let mut wire = BytesMut::new();
        for r in &replies {
            resp::encode_reply(r, &mut wire);
        }
        // Ok and Error both encode error-style/simple frames that
        // decode back to themselves; Pong decodes to Pong, etc. The
        // expected decode of each reply is itself, except Ok which is
        // its own wire form. (All variants here round-trip exactly.)
        for i in 0..=wire.len() {
            let out =
                assert_split_equivalence(&wire, i, resp::decode_reply, reference::decode_reply);
            let decoded: Vec<_> = out.into_iter().map(|r| r.expect("valid frame")).collect();
            assert_eq!(decoded, replies, "round trip at split {i}");
        }
    }
}

#[test]
fn error_and_unknown_frames_agree_at_every_split_boundary() {
    let mut rng = Rng(0xBAD5EED);
    for _ in 0..25 {
        let mut wire = BytesMut::new();
        for _ in 0..3 {
            if rng.below(2) == 0 {
                resp::encode_command(&random_command(&mut rng), &mut wire);
            } else {
                raw_array(&mut rng, &mut wire);
            }
        }
        for i in 0..=wire.len() {
            // Agreement only: the raw frames may decode to commands,
            // UnknownCommand, BadArguments, or "empty command array",
            // and both parsers must say the same thing either way.
            assert_split_equivalence(&wire, i, resp::decode_command, reference::decode_command);
        }
    }
}
