//! A single-threaded, Redis-style server loop.
//!
//! [`MiniServer`] multiplexes RESP connections exactly the way Redis's
//! event loop does — and the way the paper's §6.2 analysis needs: the
//! server sweeps its connections round-robin, executing **one command
//! per connection with pending input per sweep**. A single
//! long-running `SINTER` therefore delays every other connection's
//! next command by the full intersection time — the head-of-line
//! blocking that turns rare "queries of death" into a fat response
//! tail. (`simulator::Discipline::RoundRobin` is the queueing-model
//! abstraction of this loop; this module is the concrete runnable
//! artifact, exercised by `examples/kv_set_intersection.rs` and the
//! integration tests.)
//!
//! Connections are in-process byte pipes guarded by `parking_lot`
//! mutexes, so clients may live on other threads.

use crate::resp::{decode_command, encode_reply, RespError};
use crate::store::{Backend, KvStore, Reply};
use bytes::BytesMut;
use parking_lot::Mutex;
use std::sync::Arc;

/// One in-process client connection: an inbound and an outbound byte
/// stream. Clone the handle freely; both ends see the same pipes.
#[derive(Clone, Debug)]
pub struct Connection {
    inbound: Arc<Mutex<BytesMut>>,
    outbound: Arc<Mutex<BytesMut>>,
}

impl Connection {
    fn new() -> Self {
        Connection {
            inbound: Arc::new(Mutex::new(BytesMut::new())),
            outbound: Arc::new(Mutex::new(BytesMut::new())),
        }
    }

    /// Client side: send raw RESP bytes (e.g. from
    /// [`crate::resp::encode_command`]). Pipelining is just writing
    /// several frames before reading.
    pub fn send_bytes(&self, bytes: &[u8]) {
        self.inbound.lock().extend_from_slice(bytes);
    }

    /// Client side: send one command.
    pub fn send(&self, cmd: &crate::store::Command) {
        let mut buf = BytesMut::new();
        crate::resp::encode_command(cmd, &mut buf);
        self.send_bytes(&buf);
    }

    /// Client side: drain everything the server has written so far.
    pub fn receive_bytes(&self) -> BytesMut {
        std::mem::take(&mut *self.outbound.lock())
    }

    /// Drains the outbound pipe by *appending* into `dst`, keeping the
    /// pipe's allocation for the next replies — the pooled-buffer
    /// alternative to [`receive_bytes`](Self::receive_bytes), whose
    /// `take` forces the pipe to reallocate on every flush cycle.
    pub fn drain_outbound_into(&self, dst: &mut BytesMut) {
        let mut out = self.outbound.lock();
        dst.extend_from_slice(&out);
        out.clear();
    }

    /// Bytes currently waiting in the inbound pipe (server-bound).
    pub fn pending_in(&self) -> usize {
        self.inbound.lock().len()
    }

    /// Atomically drains the inbound pipe, returning whatever bytes the
    /// server had not yet consumed. This is the tied-request
    /// *retraction* hook: a transport that still holds an undecoded
    /// request frame here can cancel it before it ever executes (the
    /// sweep decodes under the same lock, so the frame either comes
    /// back whole or has already been executed — never half of each).
    pub fn take_inbound(&self) -> BytesMut {
        std::mem::take(&mut *self.inbound.lock())
    }

    /// Transport side: appends raw bytes to the outbound pipe, after
    /// any replies the server has already written. Lets a transport
    /// layer emit its own in-order replies (e.g. a cancellation marker
    /// for a retracted request) through the same stream the server
    /// uses.
    pub fn push_outbound(&self, bytes: &[u8]) {
        self.outbound.lock().extend_from_slice(bytes);
    }
}

/// Statistics from a server run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Commands executed.
    pub commands: u64,
    /// Round-robin sweeps performed.
    pub sweeps: u64,
    /// Total execution cost (elementary ops) of executed commands.
    pub total_cost: u64,
    /// Protocol errors encountered (connection input was discarded).
    pub protocol_errors: u64,
}

/// The single-threaded server: a backend plus its connections.
///
/// Generic over the [`Backend`] it serves — [`KvStore`] by default, a
/// BM25 index shard for the scatter-gather fan-out workload, or any
/// other command interpreter with deterministic costs.
#[derive(Debug, Default)]
pub struct MiniServer<B: Backend = KvStore> {
    store: B,
    connections: Vec<Connection>,
    stats: ServerStats,
}

impl<B: Backend> MiniServer<B> {
    /// Creates a server around an existing backend.
    pub fn new(store: B) -> Self {
        MiniServer {
            store,
            connections: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// Accepts a new connection and returns the client handle.
    pub fn accept(&mut self) -> Connection {
        let conn = Connection::new();
        self.connections.push(conn.clone());
        conn
    }

    /// Number of connections.
    pub fn num_connections(&self) -> usize {
        self.connections.len()
    }

    /// Removes (and returns) the connection at `idx`; later indices
    /// shift down, mirroring `Vec::remove`. Transports that drive
    /// [`sweep_conn`](Self::sweep_conn) by index must remove their own
    /// per-connection state at the same position to stay aligned.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn remove_connection(&mut self, idx: usize) -> Connection {
        self.connections.remove(idx)
    }

    /// Direct access to the backend (loading datasets, assertions).
    pub fn store_mut(&mut self) -> &mut B {
        &mut self.store
    }

    /// Run statistics so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// One round-robin sweep: for each connection in order, decode and
    /// execute **at most one** complete command, writing its reply.
    /// Returns the number of commands executed (0 means the server is
    /// idle).
    pub fn sweep(&mut self) -> usize {
        self.stats.sweeps += 1;
        (0..self.connections.len())
            .filter(|&i| self.sweep_conn(i).is_some())
            .count()
    }

    /// The single-connection step of [`sweep`](Self::sweep): decodes
    /// and executes at most one complete command for connection `idx`,
    /// writing its reply. Returns the executed command's cost, or
    /// `None` if the connection had no complete frame (protocol errors
    /// consume the input and produce an error reply, also `None`).
    ///
    /// Transports that convert cost to wall-clock service time (e.g.
    /// `hedge::TcpServer`) drive this directly so each command's burn
    /// can be applied — and its reply released — individually while
    /// still sweeping connections round-robin.
    pub fn sweep_conn(&mut self, idx: usize) -> Option<u64> {
        let conn = &self.connections[idx];
        let mut inbound = conn.inbound.lock();
        match decode_command(&mut inbound) {
            Ok(Some(cmd)) => {
                drop(inbound); // do not hold the pipe during execution
                let (reply, cost) = self.store.execute(&cmd);
                self.stats.commands += 1;
                self.stats.total_cost += cost;
                let mut out = conn.outbound.lock();
                encode_reply(&reply, &mut out);
                Some(cost)
            }
            Ok(None) => None, // incomplete frame; wait for more bytes
            Err(err) => {
                // Redis replies with an error and drops the rest of
                // the unparseable buffer.
                self.stats.protocol_errors += 1;
                inbound.clear();
                drop(inbound);
                let mut out = conn.outbound.lock();
                encode_reply(&Reply::Error(err.to_string()), &mut out);
                None
            }
        }
    }

    /// Sweeps until every connection's input is drained (or `max_sweeps`
    /// is hit); returns total commands executed.
    pub fn run_until_idle(&mut self, max_sweeps: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_sweeps {
            let n = self.sweep();
            total += n;
            if n == 0 {
                break;
            }
        }
        total
    }
}

/// Convenience client-side reply parser: splits a raw outbound buffer
/// into human-readable reply descriptions (for tests and examples; a
/// real client would decode incrementally).
pub fn parse_replies(buf: &mut BytesMut) -> Result<Vec<String>, RespError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let head = buf[0];
        match head {
            b'+' | b'-' | b':' => {
                let end = find_crlf(buf)
                    .ok_or_else(|| RespError::Protocol("truncated simple frame".into()))?;
                out.push(String::from_utf8_lossy(&buf[..end]).into_owned());
                let _ = buf.split_to(end + 2);
            }
            b'$' => {
                let end = find_crlf(buf)
                    .ok_or_else(|| RespError::Protocol("truncated bulk header".into()))?;
                let len: i64 = std::str::from_utf8(&buf[1..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
                if len < 0 {
                    out.push("(nil)".into());
                    let _ = buf.split_to(end + 2);
                } else {
                    let total = end + 2 + len as usize + 2;
                    if buf.len() < total {
                        return Err(RespError::Protocol("truncated bulk body".into()));
                    }
                    out.push(
                        String::from_utf8_lossy(&buf[end + 2..end + 2 + len as usize]).into_owned(),
                    );
                    let _ = buf.split_to(total);
                }
            }
            b'*' => {
                let end = find_crlf(buf)
                    .ok_or_else(|| RespError::Protocol("truncated array header".into()))?;
                let n: usize = std::str::from_utf8(&buf[1..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError::Protocol("bad array length".into()))?;
                let _ = buf.split_to(end + 2);
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut inner = parse_replies_one(buf)?;
                    items.append(&mut inner);
                }
                out.push(format!("[{}]", items.join(", ")));
            }
            _ => return Err(RespError::Protocol("unknown frame type".into())),
        }
    }
    Ok(out)
}

fn parse_replies_one(buf: &mut BytesMut) -> Result<Vec<String>, RespError> {
    // Parse exactly one frame by temporarily splitting: reuse the main
    // parser on a prefix. Simplest correct approach for tests: parse
    // one bulk/simple frame.
    let head = *buf
        .first()
        .ok_or_else(|| RespError::Protocol("truncated nested frame".into()))?;
    match head {
        b'$' | b'+' | b'-' | b':' => {
            // Find frame extent.
            let end = find_crlf(buf)
                .ok_or_else(|| RespError::Protocol("truncated nested header".into()))?;
            let frame_len = if head == b'$' {
                let len: i64 = std::str::from_utf8(&buf[1..end])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
                if len < 0 {
                    end + 2
                } else {
                    end + 2 + len as usize + 2
                }
            } else {
                end + 2
            };
            if buf.len() < frame_len {
                return Err(RespError::Protocol("truncated nested frame".into()));
            }
            let mut frame = buf.split_to(frame_len);
            parse_replies(&mut frame)
        }
        _ => Err(RespError::Protocol("nested arrays unsupported".into())),
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Command;
    use bytes::Bytes;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn single_connection_roundtrip() {
        let mut server = MiniServer::new(KvStore::new());
        let client = server.accept();
        client.send(&Command::Set(b("k"), b("v")));
        client.send(&Command::Get(b("k")));
        let executed = server.run_until_idle(10);
        assert_eq!(executed, 2);
        let mut replies = client.receive_bytes();
        let parsed = parse_replies(&mut replies).unwrap();
        assert_eq!(parsed, vec!["+OK", "v"]);
    }

    #[test]
    fn round_robin_serves_one_command_per_connection_per_sweep() {
        let mut server = MiniServer::new(KvStore::new());
        let c1 = server.accept();
        let c2 = server.accept();
        // c1 pipelines three PINGs; c2 sends one.
        for _ in 0..3 {
            c1.send(&Command::Ping);
        }
        c2.send(&Command::Ping);
        // Sweep 1 must serve one command from EACH connection.
        assert_eq!(server.sweep(), 2);
        let mut r2 = c2.receive_bytes();
        assert_eq!(parse_replies(&mut r2).unwrap(), vec!["+PONG"]);
        let mut r1 = c1.receive_bytes();
        assert_eq!(parse_replies(&mut r1).unwrap(), vec!["+PONG"]);
        // Remaining two commands of c1 drain over two more sweeps.
        assert_eq!(server.sweep(), 1);
        assert_eq!(server.sweep(), 1);
        assert_eq!(server.sweep(), 0);
        assert_eq!(server.stats().commands, 4);
    }

    #[test]
    fn cost_accounting_reflects_monster_queries() {
        let mut server = MiniServer::new(KvStore::new());
        server
            .store_mut()
            .load_set("big1", crate::IntSet::from_unsorted((0..50_000).collect()));
        server.store_mut().load_set(
            "big2",
            crate::IntSet::from_unsorted((25_000..75_000).collect()),
        );
        let client = server.accept();
        client.send(&Command::SInterCard(b("big1"), b("big2")));
        server.run_until_idle(5);
        assert!(
            server.stats().total_cost > 50_000,
            "cost {}",
            server.stats().total_cost
        );
        let mut r = client.receive_bytes();
        assert_eq!(parse_replies(&mut r).unwrap(), vec![":25000"]);
    }

    #[test]
    fn protocol_error_clears_connection_and_replies() {
        let mut server = MiniServer::new(KvStore::new());
        let client = server.accept();
        client.send_bytes(b"GARBAGE\r\n");
        server.sweep();
        assert_eq!(server.stats().protocol_errors, 1);
        assert_eq!(client.pending_in(), 0, "bad input discarded");
        let mut r = client.receive_bytes();
        let parsed = parse_replies(&mut r).unwrap();
        assert!(parsed[0].starts_with("-ERR"));
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut server = MiniServer::new(KvStore::new());
        let client = server.accept();
        let mut full = BytesMut::new();
        crate::resp::encode_command(&Command::Ping, &mut full);
        client.send_bytes(&full[..3]); // partial
        assert_eq!(server.sweep(), 0);
        client.send_bytes(&full[3..]);
        assert_eq!(server.sweep(), 1);
    }

    #[test]
    fn concurrent_clients_from_threads() {
        let mut server = MiniServer::new(KvStore::new());
        let clients: Vec<Connection> = (0..4).map(|_| server.accept()).collect();
        std::thread::scope(|scope| {
            for (i, c) in clients.iter().enumerate() {
                let c = c.clone();
                scope.spawn(move || {
                    c.send(&Command::Set(
                        Bytes::from(format!("key{i}")),
                        Bytes::from(format!("val{i}")),
                    ));
                    c.send(&Command::Get(Bytes::from(format!("key{i}"))));
                });
            }
        });
        let executed = server.run_until_idle(100);
        assert_eq!(executed, 8);
        for (i, c) in clients.iter().enumerate() {
            let mut r = c.receive_bytes();
            let parsed = parse_replies(&mut r).unwrap();
            assert_eq!(parsed, vec!["+OK".to_string(), format!("val{i}")]);
        }
    }

    #[test]
    fn members_reply_parses_as_array() {
        let mut server = MiniServer::new(KvStore::new());
        let client = server.accept();
        client.send(&Command::SAdd(b("s"), vec![3, 1, 2]));
        client.send(&Command::SAdd(b("t"), vec![2, 3, 9]));
        client.send(&Command::SInter(b("s"), b("t")));
        server.run_until_idle(10);
        let mut r = client.receive_bytes();
        let parsed = parse_replies(&mut r).unwrap();
        assert_eq!(parsed, vec![":3", ":3", "[2, 3]"]);
    }
}
