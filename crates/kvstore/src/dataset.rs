//! The paper's synthetic set dataset (§6.2): 1 000 sets over
//! `1..=10⁶` with log-normal cardinalities.

use crate::sets::IntSet;
use crate::store::KvStore;
use distributions::rng::stream;
use distributions::{LogNormal, Sample};
use rand::rngs::SmallRng;
use rand::Rng;

/// Dataset generation parameters.
///
/// Defaults reproduce the paper's setup: 1 000 sets, universe
/// `1..=1_000_000`, log-normal cardinalities whose tail makes a couple
/// of percent of the sets "abnormally large" — so that roughly 20 of
/// 40 000 random pair intersections hit two large sets and become
/// "queries of death" (service time ≫ the 2.4 ms mean).
#[derive(Clone, Copy, Debug)]
pub struct DatasetConfig {
    /// Number of sets.
    pub num_sets: usize,
    /// Universe: members drawn from `1..=universe`.
    pub universe: u32,
    /// Log-normal `mu` of the cardinality distribution (log scale).
    pub card_mu: f64,
    /// Log-normal `sigma` of the cardinality distribution.
    pub card_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            // Median cardinality 1000 with sigma 2.4. Calibrated so the
            // resulting 40k-query intersection trace reproduces the
            // paper's measured service-time stats: σ_R ≈ 8.6 ms and
            // ~20 "queries of death" above 150 ms (both sets near the
            // 10⁶ universe cap).
            num_sets: 1000,
            universe: 1_000_000,
            card_mu: (1000.0f64).ln(),
            card_sigma: 2.4,
            seed: 0x5e75,
        }
    }
}

impl DatasetConfig {
    /// A scaled-down configuration for tests: 100 sets over `1..=10⁴`.
    pub fn small(seed: u64) -> Self {
        DatasetConfig {
            num_sets: 100,
            universe: 10_000,
            card_mu: (200.0f64).ln(),
            card_sigma: 1.5,
            seed,
        }
    }
}

/// A generated dataset: the sets plus their keys.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The sets, indexed by id; key `i` is `set:{i}`.
    pub sets: Vec<IntSet>,
    config: DatasetConfig,
}

impl Dataset {
    /// Generates a dataset deterministically from its config.
    pub fn generate(config: DatasetConfig) -> Self {
        assert!(config.num_sets > 0 && config.universe > 0);
        let mut rng_card = stream(config.seed, 1);
        let mut rng_fill = stream(config.seed, 2);
        let card_dist = LogNormal::new(config.card_mu, config.card_sigma);
        let sets = (0..config.num_sets)
            .map(|_| {
                let card = card_dist.sample(&mut rng_card) as usize;
                let card = card.clamp(1, config.universe as usize);
                random_subset(config.universe, card, &mut rng_fill)
            })
            .collect();
        Dataset { sets, config }
    }

    /// The generation parameters.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The key under which set `i` is stored.
    pub fn key(i: usize) -> String {
        format!("set:{i}")
    }

    /// Loads every set into a store under its key.
    pub fn load_into(&self, store: &mut KvStore) {
        for (i, s) in self.sets.iter().enumerate() {
            store.load_set(Self::key(i), s.clone());
        }
    }

    /// Summary statistics `(min, median, max)` of cardinalities.
    pub fn cardinality_stats(&self) -> (usize, usize, usize) {
        let mut cards: Vec<usize> = self.sets.iter().map(IntSet::len).collect();
        cards.sort_unstable();
        (cards[0], cards[cards.len() / 2], *cards.last().unwrap())
    }
}

/// Draws an approximately `card`-element random subset of
/// `1..=universe`, sorted.
///
/// For small `card` this samples-and-dedupes; for large `card`
/// (> ~1.5 % of the universe, where collisions bite) it switches to
/// Bernoulli inclusion with probability `card/universe`, which is both
/// `O(universe)` and collision-free. Cardinalities are therefore
/// approximate — exactly like real data.
fn random_subset(universe: u32, card: usize, rng: &mut SmallRng) -> IntSet {
    if card * 64 >= universe as usize {
        let p = card as f64 / universe as f64;
        let mut items = Vec::with_capacity(card + card / 8 + 8);
        for v in 1..=universe {
            if rng.gen::<f64>() < p {
                items.push(v);
            }
        }
        IntSet::from_unsorted(items)
    } else {
        let mut items = Vec::with_capacity(card);
        for _ in 0..card {
            items.push(rng.gen_range(1..=universe));
        }
        IntSet::from_unsorted(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetConfig::small(7));
        let b = Dataset::generate(DatasetConfig::small(7));
        assert_eq!(a.sets.len(), b.sets.len());
        for (x, y) in a.sets.iter().zip(b.sets.iter()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(DatasetConfig::small(1));
        let b = Dataset::generate(DatasetConfig::small(2));
        assert!(a
            .sets
            .iter()
            .zip(b.sets.iter())
            .any(|(x, y)| x.as_slice() != y.as_slice()));
    }

    #[test]
    fn members_in_universe() {
        let d = Dataset::generate(DatasetConfig::small(3));
        for s in &d.sets {
            for &v in s.as_slice() {
                assert!((1..=10_000).contains(&v));
            }
        }
    }

    #[test]
    fn cardinalities_are_heavy_tailed() {
        let d = Dataset::generate(DatasetConfig {
            num_sets: 400,
            ..DatasetConfig::default()
        });
        let (min, median, max) = d.cardinality_stats();
        assert!(min >= 1);
        // Median near 2000 (log-normal median), max far above it.
        assert!((500..=8000).contains(&median), "median={median}");
        assert!(max > 20 * median, "max={max} median={median}");
    }

    #[test]
    fn load_into_store() {
        let d = Dataset::generate(DatasetConfig::small(4));
        let mut kv = KvStore::new();
        d.load_into(&mut kv);
        assert_eq!(kv.len(), d.sets.len());
        let s = kv.get_set(Dataset::key(0).as_bytes()).unwrap();
        assert_eq!(s.as_slice(), d.sets[0].as_slice());
    }

    #[test]
    fn random_subset_bernoulli_path() {
        let mut rng = seeded(5);
        // card/universe = 50% → Bernoulli path.
        let s = random_subset(10_000, 5_000, &mut rng);
        let got = s.len() as f64;
        assert!((got - 5_000.0).abs() < 300.0, "got={got}");
        // Strictly increasing by construction.
        assert!(s.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn random_subset_sample_path() {
        let mut rng = seeded(6);
        let s = random_subset(1_000_000, 100, &mut rng);
        // Dedup shrink negligible at this density.
        assert!((95..=100).contains(&s.len()), "len={}", s.len());
    }
}
