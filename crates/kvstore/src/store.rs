//! The keyspace and command interpreter.

use crate::sets::IntSet;
use bytes::Bytes;
use std::collections::HashMap;

/// A stored value: a binary string or an integer set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A binary-safe string.
    Str(Bytes),
    /// A sorted integer set.
    Set(IntSet),
}

/// A command against the store — the subset of Redis the paper's
/// workload needs, plus basics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Liveness check.
    Ping,
    /// Read a string key.
    Get(Bytes),
    /// Write a string key.
    Set(Bytes, Bytes),
    /// Delete a key; replies with the number of keys removed.
    Del(Bytes),
    /// Add members to a set key; replies with the number newly added.
    SAdd(Bytes, Vec<u32>),
    /// Cardinality of a set key.
    SCard(Bytes),
    /// Intersect two set keys (the paper's stored-procedure workload).
    SInter(Bytes, Bytes),
    /// Cardinality of the intersection of two set keys.
    SInterCard(Bytes, Bytes),
    /// Top-k full-text retrieval over a search backend (term ids plus
    /// the result count). The kvstore itself does not index documents —
    /// it answers with an error — but the command travels the same RESP
    /// wire so a search [`Backend`] can serve scatter-gather fan-out.
    Search {
        /// Query term ids.
        terms: Vec<u32>,
        /// Number of hits requested.
        k: u32,
    },
    /// Read one erasure-coded fragment of a striped key: slot `slot`
    /// of `key`'s stripe (see `crates/erasure`). Fragments live in a
    /// reserved corner of the keyspace (see [`fragment_key`]) so a
    /// plain [`KvStore`] serves them; replies `Str` or `Nil` like
    /// [`Command::Get`].
    FGet(Bytes, u32),
    /// Write one erasure-coded fragment of a striped key (slot,
    /// payload). Idempotent like [`Command::Set`]; replies `+OK`.
    FSet(Bytes, u32, Bytes),
    /// Tied-request cancellation: retract the not-yet-executed request
    /// with this per-connection sequence number. Interpreted by the
    /// transport layer (`hedge::TcpServer`); if one reaches the store
    /// itself (no transport in between) it is a harmless no-op.
    Cancel(u64),
    /// Tied-request prefix ("The Tail at Scale" dequeue-time
    /// cancellation): the *next* request frame on this connection is
    /// tied under the client-global id `id`. A reissue additionally
    /// carries its peer's identity — the primary's server address and
    /// tie id — so the first server to dequeue either copy can retract
    /// the other over the server-to-server channel. Interpreted by the
    /// transport layer; a no-op at store level.
    Tie {
        /// Client-global tie id of the request this prefixes.
        id: u64,
        /// The peer copy's `(server address, tie id)`, present on
        /// reissues only.
        peer: Option<(std::net::SocketAddr, u64)>,
    },
    /// Server-to-server tie announce: the reissue holder tells the
    /// primary's server that queued entry `id` now has a peer
    /// (`peer_addr`, `peer_id`), *after* enqueueing the reissue — so a
    /// returned [`Command::CancelTie`] can never precede its target's
    /// enqueue. Interpreted by the transport layer; a no-op at store
    /// level.
    TiePeer {
        /// Tie id of the receiving server's queued entry.
        id: u64,
        /// The announcing server's listening address.
        peer_addr: std::net::SocketAddr,
        /// Tie id of the announcing server's queued reissue.
        peer_id: u64,
    },
    /// Server-to-server tied-request retraction: the peer copy of this
    /// tie id was dequeued for execution; retract this server's copy if
    /// it is still queued (reply `-ERR cancelled` to its client) and
    /// do nothing otherwise. Interpreted by the transport layer; a
    /// no-op at store level.
    CancelTie(u64),
}

/// One scored search result as carried in a [`Reply::Hits`].
///
/// The BM25 score is stored as raw `f64` bits so `Reply` keeps its
/// `Eq` derive and the value round-trips the wire exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    /// Global document id (unique across shards).
    pub doc: u64,
    score_bits: u64,
}

impl Hit {
    /// Creates a hit from a document id and score.
    pub fn new(doc: u64, score: f64) -> Self {
        Hit {
            doc,
            score_bits: score.to_bits(),
        }
    }

    /// Reconstructs a hit from the raw score bits (wire decoding).
    pub fn from_bits(doc: u64, score_bits: u64) -> Self {
        Hit { doc, score_bits }
    }

    /// The score as a float.
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }

    /// The raw score bits (wire encoding).
    pub fn score_bits(&self) -> u64 {
        self.score_bits
    }
}

/// A command reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `+OK`.
    Ok,
    /// `+PONG`.
    Pong,
    /// A bulk string.
    Str(Bytes),
    /// An integer.
    Int(i64),
    /// A set payload (member array).
    Members(Vec<u32>),
    /// Scored search results, best first (search backends only).
    Hits(Vec<Hit>),
    /// Key missing (`$-1`).
    Nil,
    /// An error, e.g. type mismatch.
    Error(String),
}

/// What a replica serves: any state machine that executes [`Command`]s
/// and reports a deterministic cost in elementary operations.
///
/// `hedge::TcpServer` and `MiniServer` are generic over this trait, so
/// the same RESP/TCP transport, cancellation, and sweep loop can front
/// a [`KvStore`], a BM25 index shard, or anything else. The cost is
/// what the server burns as service time (`cost × nanos_per_op`).
pub trait Backend: Send + 'static {
    /// Executes one command, returning the reply and its cost.
    fn execute(&mut self, cmd: &Command) -> (Reply, u64);

    /// Cheap *pre-execution* cost estimate for queue scheduling
    /// (`Discipline::CostPriority` / `Discipline::ShortestBurn` order
    /// by it). Must not mutate state and should be O(1)-ish — it runs
    /// at enqueue time on the reader path. The default claims every
    /// command costs 1, which degrades cost-aware disciplines to FIFO
    /// without breaking them.
    fn estimate_cost(&self, cmd: &Command) -> u64 {
        let _ = cmd;
        1
    }
}

impl Backend for KvStore {
    fn execute(&mut self, cmd: &Command) -> (Reply, u64) {
        KvStore::execute(self, cmd)
    }

    fn estimate_cost(&self, cmd: &Command) -> u64 {
        KvStore::estimate_cost(self, cmd)
    }
}

/// The in-memory store: a flat keyspace with command execution.
///
/// Every mutation or query returns `(Reply, cost)` where `cost` counts
/// elementary operations; key lookups cost 1 and set operations add
/// their intersection work. The workload layer converts cost to
/// service time deterministically.
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: HashMap<Bytes, Value>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore {
            map: HashMap::new(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the keyspace is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct (non-command) set insertion used by the dataset loader.
    pub fn load_set(&mut self, key: impl Into<Bytes>, set: IntSet) {
        self.map.insert(key.into(), Value::Set(set));
    }

    /// Borrow a set value if the key holds one.
    pub fn get_set(&self, key: &[u8]) -> Option<&IntSet> {
        match self.map.get(key) {
            Some(Value::Set(s)) => Some(s),
            _ => None,
        }
    }

    /// Borrow a string value if the key holds one (cost estimators use
    /// this for O(1) byte-size probes without executing the read).
    pub fn get_str(&self, key: &[u8]) -> Option<&Bytes> {
        match self.map.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Executes a command, returning the reply and its cost in
    /// elementary operations.
    pub fn execute(&mut self, cmd: &Command) -> (Reply, u64) {
        match cmd {
            Command::Ping => (Reply::Pong, 1),
            Command::Get(k) => match self.map.get(k) {
                Some(Value::Str(s)) => (Reply::Str(s.clone()), 1),
                Some(Value::Set(_)) => (Reply::Error("WRONGTYPE".into()), 1),
                None => (Reply::Nil, 1),
            },
            Command::Set(k, v) => {
                self.map.insert(k.clone(), Value::Str(v.clone()));
                (Reply::Ok, 1)
            }
            Command::Del(k) => {
                let n = i64::from(self.map.remove(k).is_some());
                (Reply::Int(n), 1)
            }
            Command::SAdd(k, members) => {
                let entry = self
                    .map
                    .entry(k.clone())
                    .or_insert_with(|| Value::Set(IntSet::new()));
                match entry {
                    Value::Set(s) => {
                        let mut added = 0;
                        for &m in members {
                            added += i64::from(s.insert(m));
                        }
                        (Reply::Int(added), 1 + members.len() as u64)
                    }
                    Value::Str(_) => (Reply::Error("WRONGTYPE".into()), 1),
                }
            }
            Command::SCard(k) => match self.map.get(k) {
                Some(Value::Set(s)) => (Reply::Int(s.len() as i64), 1),
                Some(Value::Str(_)) => (Reply::Error("WRONGTYPE".into()), 1),
                None => (Reply::Int(0), 1),
            },
            // SINTER costs follow Redis's iterate-small/probe-large
            // profile (see `IntSet::intersect_probe`); the result is
            // identical to the adaptive merge.
            Command::SInter(a, b) => match (self.map.get(a), self.map.get(b)) {
                (Some(Value::Set(sa)), Some(Value::Set(sb))) => {
                    let (r, cost) = sa.intersect_probe(sb);
                    (Reply::Members(r.as_slice().to_vec()), 2 + cost)
                }
                (None, _) | (_, None) => (Reply::Members(Vec::new()), 2),
                _ => (Reply::Error("WRONGTYPE".into()), 2),
            },
            Command::SInterCard(a, b) => match (self.map.get(a), self.map.get(b)) {
                (Some(Value::Set(sa)), Some(Value::Set(sb))) => {
                    let (r, cost) = sa.intersect_probe(sb);
                    (Reply::Int(r.len() as i64), 2 + cost)
                }
                (None, _) | (_, None) => (Reply::Int(0), 2),
                _ => (Reply::Error("WRONGTYPE".into()), 2),
            },
            Command::FGet(k, slot) => match self.map.get(&fragment_key(k, *slot)) {
                Some(Value::Str(s)) => (Reply::Str(s.clone()), 1),
                Some(Value::Set(_)) => (Reply::Error("WRONGTYPE".into()), 1),
                None => (Reply::Nil, 1),
            },
            Command::FSet(k, slot, v) => {
                self.map
                    .insert(fragment_key(k, *slot), Value::Str(v.clone()));
                (Reply::Ok, 1)
            }
            // The kvstore holds no inverted index; SEARCH belongs to a
            // search backend sharing the wire format.
            Command::Search { .. } => (Reply::Error("SEARCH unsupported by kvstore".into()), 1),
            // Nothing outstanding at store level: the transport already
            // consumed any retractable request before execution. The
            // tie-protocol frames are likewise transport-level control.
            Command::Cancel(_)
            | Command::Tie { .. }
            | Command::TiePeer { .. }
            | Command::CancelTie(_) => (Reply::Ok, 1),
        }
    }

    /// Pre-execution cost estimate mirroring [`KvStore::execute`]'s
    /// accounting without doing the work: intersections are bounded by
    /// the smaller operand's cardinality (the probe side of
    /// `IntSet::intersect_probe`), point operations cost 1.
    pub fn estimate_cost(&self, cmd: &Command) -> u64 {
        match cmd {
            Command::SInter(a, b) | Command::SInterCard(a, b) => {
                let card = |k: &[u8]| self.get_set(k).map(|s| s.len()).unwrap_or(0);
                2 + card(a).min(card(b)) as u64
            }
            Command::SAdd(_, members) => 1 + members.len() as u64,
            _ => 1,
        }
    }
}

/// The keyspace slot where fragment (`key`, `slot`) of a striped value
/// lives: `\0F<slot-le><key>`. The leading NUL keeps fragments out of
/// the way of ordinary keys (the workload generators never emit NUL
/// bytes in key names), and the fixed-width little-endian slot keeps
/// the mapping collision-free across slots of the same key.
pub fn fragment_key(key: &[u8], slot: u32) -> Bytes {
    let mut out = Vec::with_capacity(2 + 4 + key.len());
    out.push(0);
    out.push(b'F');
    out.extend_from_slice(&slot.to_le_bytes());
    out.extend_from_slice(key);
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn fragment_commands() {
        let mut kv = KvStore::new();
        assert_eq!(kv.execute(&Command::FGet(b("k"), 0)).0, Reply::Nil);
        assert_eq!(
            kv.execute(&Command::FSet(b("k"), 0, b("frag0"))).0,
            Reply::Ok
        );
        assert_eq!(
            kv.execute(&Command::FSet(b("k"), 1, b("frag1"))).0,
            Reply::Ok
        );
        // Slots are independent of each other and of the plain key.
        assert_eq!(
            kv.execute(&Command::FGet(b("k"), 0)).0,
            Reply::Str(b("frag0"))
        );
        assert_eq!(
            kv.execute(&Command::FGet(b("k"), 1)).0,
            Reply::Str(b("frag1"))
        );
        assert_eq!(kv.execute(&Command::Get(b("k"))).0, Reply::Nil);
        assert_eq!(kv.execute(&Command::FGet(b("k"), 2)).0, Reply::Nil);
        assert_eq!(kv.estimate_cost(&Command::FGet(b("k"), 0)), 1);
    }

    #[test]
    fn fragment_keys_distinct() {
        assert_ne!(fragment_key(b"k", 0), fragment_key(b"k", 1));
        assert_ne!(fragment_key(b"k", 0), fragment_key(b"j", 0));
        assert_ne!(fragment_key(b"k", 0), Bytes::from_static(b"k"));
    }

    #[test]
    fn string_roundtrip() {
        let mut kv = KvStore::new();
        assert_eq!(kv.execute(&Command::Get(b("k"))).0, Reply::Nil);
        assert_eq!(kv.execute(&Command::Set(b("k"), b("v"))).0, Reply::Ok);
        assert_eq!(kv.execute(&Command::Get(b("k"))).0, Reply::Str(b("v")));
        assert_eq!(kv.execute(&Command::Del(b("k"))).0, Reply::Int(1));
        assert_eq!(kv.execute(&Command::Del(b("k"))).0, Reply::Int(0));
    }

    #[test]
    fn set_commands() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.execute(&Command::SAdd(b("s"), vec![3, 1, 3])).0,
            Reply::Int(2)
        );
        assert_eq!(kv.execute(&Command::SCard(b("s"))).0, Reply::Int(2));
        assert_eq!(kv.execute(&Command::SCard(b("missing"))).0, Reply::Int(0));
    }

    #[test]
    fn sinter_returns_sorted_members() {
        let mut kv = KvStore::new();
        kv.execute(&Command::SAdd(b("a"), vec![1, 2, 3, 4]));
        kv.execute(&Command::SAdd(b("b"), vec![4, 2, 9]));
        let (reply, cost) = kv.execute(&Command::SInter(b("a"), b("b")));
        assert_eq!(reply, Reply::Members(vec![2, 4]));
        assert!(cost > 2);
        let (reply, _) = kv.execute(&Command::SInterCard(b("a"), b("b")));
        assert_eq!(reply, Reply::Int(2));
    }

    #[test]
    fn sinter_with_missing_key_is_empty() {
        let mut kv = KvStore::new();
        kv.execute(&Command::SAdd(b("a"), vec![1]));
        assert_eq!(
            kv.execute(&Command::SInter(b("a"), b("nope"))).0,
            Reply::Members(vec![])
        );
    }

    #[test]
    fn wrongtype_errors() {
        let mut kv = KvStore::new();
        kv.execute(&Command::Set(b("k"), b("v")));
        assert!(matches!(
            kv.execute(&Command::SAdd(b("k"), vec![1])).0,
            Reply::Error(_)
        ));
        assert!(matches!(
            kv.execute(&Command::SCard(b("k"))).0,
            Reply::Error(_)
        ));
        kv.execute(&Command::SAdd(b("s"), vec![1]));
        assert!(matches!(
            kv.execute(&Command::Get(b("s"))).0,
            Reply::Error(_)
        ));
        assert!(matches!(
            kv.execute(&Command::SInter(b("k"), b("s"))).0,
            Reply::Error(_)
        ));
    }

    #[test]
    fn cost_scales_with_set_size() {
        let mut kv = KvStore::new();
        kv.load_set("big1", IntSet::from_unsorted((0..10_000).collect()));
        kv.load_set("big2", IntSet::from_unsorted((5_000..15_000).collect()));
        kv.load_set("small1", IntSet::from_unsorted(vec![1, 2]));
        kv.load_set("small2", IntSet::from_unsorted(vec![2, 3]));
        let (_, big_cost) = kv.execute(&Command::SInter(b("big1"), b("big2")));
        let (_, small_cost) = kv.execute(&Command::SInter(b("small1"), b("small2")));
        assert!(
            big_cost > 100 * small_cost,
            "big={big_cost} small={small_cost}"
        );
    }

    #[test]
    fn estimate_cost_tracks_executed_cost_shape() {
        let mut kv = KvStore::new();
        kv.load_set("big1", IntSet::from_unsorted((0..10_000).collect()));
        kv.load_set("big2", IntSet::from_unsorted((5_000..15_000).collect()));
        kv.load_set("small", IntSet::from_unsorted(vec![1, 2]));
        let est_big = kv.estimate_cost(&Command::SInterCard(b("big1"), b("big2")));
        let est_small = kv.estimate_cost(&Command::SInterCard(b("big1"), b("small")));
        assert!(est_big > 100 * est_small, "big={est_big} small={est_small}");
        // The estimate must not mutate and must stay cheap for control
        // frames.
        assert_eq!(kv.estimate_cost(&Command::Ping), 1);
        assert_eq!(kv.estimate_cost(&Command::CancelTie(7)), 1);
        // Tie frames execute as store-level no-ops.
        let addr: std::net::SocketAddr = "127.0.0.1:80".parse().unwrap();
        assert_eq!(
            kv.execute(&Command::Tie {
                id: 1,
                peer: Some((addr, 2))
            })
            .0,
            Reply::Ok
        );
        assert_eq!(
            kv.execute(&Command::TiePeer {
                id: 1,
                peer_addr: addr,
                peer_id: 2
            })
            .0,
            Reply::Ok
        );
        assert_eq!(kv.execute(&Command::CancelTie(1)).0, Reply::Ok);
    }

    #[test]
    fn ping_and_len() {
        let mut kv = KvStore::new();
        assert!(kv.is_empty());
        assert_eq!(kv.execute(&Command::Ping).0, Reply::Pong);
        kv.execute(&Command::Set(b("a"), b("1")));
        assert_eq!(kv.len(), 1);
    }
}
