//! Minimal RESP2 (REdis Serialization Protocol) codec.
//!
//! Enough of the wire protocol to run [`crate::KvStore`] as an actual
//! network server: commands arrive as RESP arrays of bulk strings and
//! replies are encoded as simple strings, errors, integers, bulk
//! strings or arrays. Incremental parsing: [`decode_command`] returns
//! `Ok(None)` until a full frame is buffered.

use crate::store::{Command, Hit, Reply};
use bytes::{Buf, Bytes, BytesMut};

/// Errors from protocol handling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RespError {
    /// The frame is syntactically invalid RESP.
    Protocol(String),
    /// The frame parsed but isn't a command we support.
    UnknownCommand(String),
    /// Argument count or type is wrong for the command.
    BadArguments(&'static str),
}

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespError::Protocol(m) => write!(f, "protocol error: {m}"),
            RespError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            RespError::BadArguments(c) => write!(f, "wrong arguments for '{c}'"),
        }
    }
}

impl std::error::Error for RespError {}

/// Encodes a reply into `out`.
pub fn encode_reply(reply: &Reply, out: &mut BytesMut) {
    match reply {
        Reply::Ok => out.extend_from_slice(b"+OK\r\n"),
        Reply::Pong => out.extend_from_slice(b"+PONG\r\n"),
        Reply::Str(s) => {
            out.extend_from_slice(format!("${}\r\n", s.len()).as_bytes());
            out.extend_from_slice(s);
            out.extend_from_slice(b"\r\n");
        }
        Reply::Int(i) => out.extend_from_slice(format!(":{i}\r\n").as_bytes()),
        Reply::Members(ms) => {
            out.extend_from_slice(format!("*{}\r\n", ms.len()).as_bytes());
            for m in ms {
                let s = m.to_string();
                out.extend_from_slice(format!("${}\r\n{s}\r\n", s.len()).as_bytes());
            }
        }
        // Hits travel as `doc@score_bits` bulk strings; the `@` is what
        // lets the client-side decoder tell them from `Members`.
        Reply::Hits(hits) => {
            out.extend_from_slice(format!("*{}\r\n", hits.len()).as_bytes());
            for h in hits {
                let s = format!("{}@{}", h.doc, h.score_bits());
                out.extend_from_slice(format!("${}\r\n{s}\r\n", s.len()).as_bytes());
            }
        }
        Reply::Nil => out.extend_from_slice(b"$-1\r\n"),
        Reply::Error(e) => {
            out.extend_from_slice(b"-ERR ");
            out.extend_from_slice(e.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
}

/// Attempts to decode one command frame from `buf`.
///
/// Returns `Ok(Some(cmd))` and consumes the frame on success,
/// `Ok(None)` if more bytes are needed (buffer untouched), or an error
/// for malformed or unsupported input (buffer consumed through the
/// frame when determinable).
pub fn decode_command(buf: &mut BytesMut) -> Result<Option<Command>, RespError> {
    let mut probe = Cursor { buf, pos: 0 };
    let args = match probe.parse_array()? {
        Some(a) => a,
        None => return Ok(None),
    };
    let consumed = probe.pos;
    buf.advance(consumed);

    if args.is_empty() {
        return Err(RespError::Protocol("empty command array".into()));
    }
    let name = String::from_utf8_lossy(&args[0]).to_ascii_uppercase();
    let arity = args.len() - 1;
    let arg = |i: usize| Bytes::copy_from_slice(&args[i]);
    let int_arg = |i: usize| -> Result<u32, RespError> {
        std::str::from_utf8(&args[i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(RespError::BadArguments("integer member expected"))
    };

    match name.as_str() {
        "PING" => Ok(Some(Command::Ping)),
        "GET" if arity == 1 => Ok(Some(Command::Get(arg(1)))),
        "SET" if arity == 2 => Ok(Some(Command::Set(arg(1), arg(2)))),
        "DEL" if arity == 1 => Ok(Some(Command::Del(arg(1)))),
        "SADD" if arity >= 2 => {
            let mut members = Vec::with_capacity(arity - 1);
            for i in 2..args.len() {
                members.push(int_arg(i)?);
            }
            Ok(Some(Command::SAdd(arg(1), members)))
        }
        "SCARD" if arity == 1 => Ok(Some(Command::SCard(arg(1)))),
        // SEARCH <k> <term>... — zero terms is a legal (empty) query.
        "SEARCH" if arity >= 1 => {
            let k = int_arg(1)?;
            let mut terms = Vec::with_capacity(arity - 1);
            for i in 2..args.len() {
                terms.push(int_arg(i)?);
            }
            Ok(Some(Command::Search { terms, k }))
        }
        "SINTER" if arity == 2 => Ok(Some(Command::SInter(arg(1), arg(2)))),
        "SINTERCARD" if arity == 2 => Ok(Some(Command::SInterCard(arg(1), arg(2)))),
        "CANCEL" if arity == 1 => {
            let seq = std::str::from_utf8(&args[1])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(RespError::BadArguments("sequence number expected"))?;
            Ok(Some(Command::Cancel(seq)))
        }
        "GET" | "SET" | "DEL" | "SADD" | "SCARD" | "SEARCH" | "SINTER" | "SINTERCARD"
        | "CANCEL" => Err(RespError::BadArguments("wrong arity")),
        other => Err(RespError::UnknownCommand(other.to_string())),
    }
}

/// Encodes a command as a RESP array (client side).
pub fn encode_command(cmd: &Command, out: &mut BytesMut) {
    fn bulk(out: &mut BytesMut, s: &[u8]) {
        out.extend_from_slice(format!("${}\r\n", s.len()).as_bytes());
        out.extend_from_slice(s);
        out.extend_from_slice(b"\r\n");
    }
    let parts: Vec<Vec<u8>> = match cmd {
        Command::Ping => vec![b"PING".to_vec()],
        Command::Get(k) => vec![b"GET".to_vec(), k.to_vec()],
        Command::Set(k, v) => vec![b"SET".to_vec(), k.to_vec(), v.to_vec()],
        Command::Del(k) => vec![b"DEL".to_vec(), k.to_vec()],
        Command::SAdd(k, ms) => {
            let mut p = vec![b"SADD".to_vec(), k.to_vec()];
            p.extend(ms.iter().map(|m| m.to_string().into_bytes()));
            p
        }
        Command::SCard(k) => vec![b"SCARD".to_vec(), k.to_vec()],
        Command::Search { terms, k } => {
            let mut p = vec![b"SEARCH".to_vec(), k.to_string().into_bytes()];
            p.extend(terms.iter().map(|t| t.to_string().into_bytes()));
            p
        }
        Command::SInter(a, b) => vec![b"SINTER".to_vec(), a.to_vec(), b.to_vec()],
        Command::SInterCard(a, b) => {
            vec![b"SINTERCARD".to_vec(), a.to_vec(), b.to_vec()]
        }
        Command::Cancel(seq) => {
            vec![b"CANCEL".to_vec(), seq.to_string().into_bytes()]
        }
    };
    out.extend_from_slice(format!("*{}\r\n", parts.len()).as_bytes());
    for p in parts {
        bulk(out, &p);
    }
}

/// Attempts to decode one typed [`Reply`] frame from `buf` (client
/// side). Incremental like [`decode_command`]: returns `Ok(None)` and
/// leaves the buffer untouched until a full frame is available.
///
/// Member arrays are decoded back into `Reply::Members` (each element
/// must be an integer bulk string, which is all `encode_reply` emits);
/// `-ERR msg` decodes to `Reply::Error(msg)`.
pub fn decode_reply(buf: &mut BytesMut) -> Result<Option<Reply>, RespError> {
    let mut probe = Cursor { buf, pos: 0 };
    let reply = match probe.parse_reply()? {
        Some(r) => r,
        None => return Ok(None),
    };
    let consumed = probe.pos;
    buf.advance(consumed);
    Ok(Some(reply))
}

/// A non-consuming parse cursor over the input buffer.
struct Cursor<'a> {
    buf: &'a BytesMut,
    pos: usize,
}

impl Cursor<'_> {
    fn line(&mut self) -> Result<Option<&[u8]>, RespError> {
        let rest = &self.buf[self.pos..];
        match rest.windows(2).position(|w| w == b"\r\n") {
            Some(i) => {
                let line = &rest[..i];
                self.pos += i + 2;
                Ok(Some(line))
            }
            None => Ok(None),
        }
    }

    fn parse_array(&mut self) -> Result<Option<Vec<Vec<u8>>>, RespError> {
        let header = match self.line()? {
            Some(l) => l.to_vec(),
            None => return Ok(None),
        };
        if header.first() != Some(&b'*') {
            return Err(RespError::Protocol("expected array".into()));
        }
        let n: usize = std::str::from_utf8(&header[1..])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| RespError::Protocol("bad array length".into()))?;
        if n > 1_000_000 {
            return Err(RespError::Protocol("array too large".into()));
        }
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            match self.parse_bulk()? {
                Some(b) => items.push(b),
                None => return Ok(None),
            }
        }
        Ok(Some(items))
    }

    fn parse_reply(&mut self) -> Result<Option<Reply>, RespError> {
        let Some(&head) = self.buf.get(self.pos) else {
            return Ok(None);
        };
        match head {
            b'+' => {
                let line = match self.line()? {
                    Some(l) => l.to_vec(),
                    None => return Ok(None),
                };
                match &line[1..] {
                    b"OK" => Ok(Some(Reply::Ok)),
                    b"PONG" => Ok(Some(Reply::Pong)),
                    other => Err(RespError::Protocol(format!(
                        "unexpected simple string '{}'",
                        String::from_utf8_lossy(other)
                    ))),
                }
            }
            b'-' => {
                let line = match self.line()? {
                    Some(l) => l.to_vec(),
                    None => return Ok(None),
                };
                let msg = String::from_utf8_lossy(&line[1..]);
                let msg = msg.strip_prefix("ERR ").unwrap_or(&msg);
                Ok(Some(Reply::Error(msg.to_string())))
            }
            b':' => {
                let line = match self.line()? {
                    Some(l) => l.to_vec(),
                    None => return Ok(None),
                };
                let i: i64 = std::str::from_utf8(&line[1..])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError::Protocol("bad integer".into()))?;
                Ok(Some(Reply::Int(i)))
            }
            b'$' => {
                // Peek the header to distinguish nil from a bulk body.
                let start = self.pos;
                let header = match self.line()? {
                    Some(l) => l.to_vec(),
                    None => return Ok(None),
                };
                let len: i64 = std::str::from_utf8(&header[1..])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
                if len < 0 {
                    return Ok(Some(Reply::Nil));
                }
                self.pos = start;
                match self.parse_bulk()? {
                    Some(data) => Ok(Some(Reply::Str(Bytes::from(data)))),
                    None => Ok(None),
                }
            }
            b'*' => {
                let items = match self.parse_array()? {
                    Some(items) => items,
                    None => return Ok(None),
                };
                // `doc@bits` elements are scored hits; plain integers
                // are set members. An empty array is ambiguous and
                // decodes as `Members(vec![])` — callers expecting hits
                // must treat that as zero hits.
                if items.iter().any(|i| i.contains(&b'@')) {
                    let mut hits = Vec::with_capacity(items.len());
                    for item in items {
                        let s = std::str::from_utf8(&item)
                            .map_err(|_| RespError::Protocol("non-utf8 hit in array".into()))?;
                        let (doc, bits) = s
                            .split_once('@')
                            .and_then(|(d, b)| Some((d.parse().ok()?, b.parse().ok()?)))
                            .ok_or_else(|| RespError::Protocol("malformed hit in array".into()))?;
                        hits.push(Hit::from_bits(doc, bits));
                    }
                    return Ok(Some(Reply::Hits(hits)));
                }
                let mut members = Vec::with_capacity(items.len());
                for item in items {
                    let m: u32 = std::str::from_utf8(&item)
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| RespError::Protocol("non-integer member in array".into()))?;
                    members.push(m);
                }
                Ok(Some(Reply::Members(members)))
            }
            other => Err(RespError::Protocol(format!(
                "unknown reply type byte 0x{other:02x}"
            ))),
        }
    }

    fn parse_bulk(&mut self) -> Result<Option<Vec<u8>>, RespError> {
        let header = match self.line()? {
            Some(l) => l.to_vec(),
            None => return Ok(None),
        };
        if header.first() != Some(&b'$') {
            return Err(RespError::Protocol("expected bulk string".into()));
        }
        let len: usize = std::str::from_utf8(&header[1..])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
        if len > 64 * 1024 * 1024 {
            return Err(RespError::Protocol("bulk too large".into()));
        }
        if self.buf.len() < self.pos + len + 2 {
            return Ok(None);
        }
        let data = self.buf[self.pos..self.pos + len].to_vec();
        if &self.buf[self.pos + len..self.pos + len + 2] != b"\r\n" {
            return Err(RespError::Protocol("missing bulk terminator".into()));
        }
        self.pos += len + 2;
        Ok(Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(s: &[u8]) -> BytesMut {
        BytesMut::from(s)
    }

    #[test]
    fn decode_simple_get() {
        let mut b = buf(b"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n");
        let cmd = decode_command(&mut b).unwrap().unwrap();
        assert_eq!(cmd, Command::Get(Bytes::from_static(b"foo")));
        assert!(b.is_empty(), "frame fully consumed");
    }

    #[test]
    fn decode_incremental() {
        let full = b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n";
        for cut in 1..full.len() {
            let mut b = buf(&full[..cut]);
            assert_eq!(decode_command(&mut b).unwrap(), None, "cut={cut}");
            assert_eq!(b.len(), cut, "partial input untouched");
        }
        let mut b = buf(full);
        assert!(decode_command(&mut b).unwrap().is_some());
    }

    #[test]
    fn decode_sadd_with_members() {
        let mut b = buf(b"*4\r\n$4\r\nSADD\r\n$1\r\ns\r\n$1\r\n7\r\n$2\r\n42\r\n");
        let cmd = decode_command(&mut b).unwrap().unwrap();
        assert_eq!(cmd, Command::SAdd(Bytes::from_static(b"s"), vec![7, 42]));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut b = buf(b"+OK\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::Protocol(_))
        ));
        let mut b = buf(b"*1\r\n$7\r\nFLUSHDB\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::UnknownCommand(_))
        ));
        let mut b = buf(b"*1\r\n$3\r\nGET\r\n"); // missing key
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::BadArguments(_))
        ));
        let mut b = buf(b"*3\r\n$4\r\nSADD\r\n$1\r\ns\r\n$3\r\nabc\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::BadArguments(_))
        ));
    }

    #[test]
    fn command_roundtrip_through_codec() {
        let cmds = vec![
            Command::Ping,
            Command::Get(Bytes::from_static(b"k")),
            Command::Set(Bytes::from_static(b"k"), Bytes::from_static(b"value")),
            Command::Del(Bytes::from_static(b"k")),
            Command::SAdd(Bytes::from_static(b"s"), vec![1, 2, 3]),
            Command::SCard(Bytes::from_static(b"s")),
            Command::SInter(Bytes::from_static(b"a"), Bytes::from_static(b"b")),
            Command::SInterCard(Bytes::from_static(b"a"), Bytes::from_static(b"b")),
        ];
        for cmd in cmds {
            let mut wire = BytesMut::new();
            encode_command(&cmd, &mut wire);
            let decoded = decode_command(&mut wire).unwrap().unwrap();
            assert_eq!(decoded, cmd);
            assert!(wire.is_empty());
        }
    }

    #[test]
    fn encode_replies() {
        let cases: Vec<(Reply, &[u8])> = vec![
            (Reply::Ok, b"+OK\r\n"),
            (Reply::Pong, b"+PONG\r\n"),
            (Reply::Int(-7), b":-7\r\n"),
            (Reply::Nil, b"$-1\r\n"),
            (Reply::Str(Bytes::from_static(b"hi")), b"$2\r\nhi\r\n"),
            (
                Reply::Members(vec![10, 2]),
                b"*2\r\n$2\r\n10\r\n$1\r\n2\r\n",
            ),
            (Reply::Error("boom".into()), b"-ERR boom\r\n"),
        ];
        for (reply, want) in cases {
            let mut out = BytesMut::new();
            encode_reply(&reply, &mut out);
            assert_eq!(&out[..], want);
        }
    }

    #[test]
    fn search_command_roundtrip() {
        let cmds = vec![
            Command::Search {
                terms: vec![15, 40, 200],
                k: 10,
            },
            Command::Search {
                terms: vec![],
                k: 3,
            },
        ];
        for cmd in cmds {
            let mut wire = BytesMut::new();
            encode_command(&cmd, &mut wire);
            assert_eq!(decode_command(&mut wire).unwrap().unwrap(), cmd);
            assert!(wire.is_empty());
        }
        // Bare SEARCH (no k) is an arity error.
        let mut b = buf(b"*1\r\n$6\r\nSEARCH\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::BadArguments(_))
        ));
    }

    #[test]
    fn hits_reply_roundtrip_exact_scores() {
        let hits = vec![
            Hit::new(42, 3.25190381),
            Hit::new(7_000_000_123, -0.5),
            Hit::new(0, f64::MAX),
        ];
        let mut wire = BytesMut::new();
        encode_reply(&Reply::Hits(hits.clone()), &mut wire);
        let decoded = decode_reply(&mut wire).unwrap().unwrap();
        assert_eq!(decoded, Reply::Hits(hits.clone()));
        match decoded {
            Reply::Hits(got) => {
                for (g, w) in got.iter().zip(&hits) {
                    assert_eq!(g.score().to_bits(), w.score().to_bits());
                }
            }
            other => panic!("expected hits, got {other:?}"),
        }
        // Empty hit arrays are indistinguishable from empty member
        // arrays on the wire and decode as Members.
        let mut wire = BytesMut::new();
        encode_reply(&Reply::Hits(vec![]), &mut wire);
        assert_eq!(
            decode_reply(&mut wire).unwrap().unwrap(),
            Reply::Members(vec![])
        );
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut b = buf(b"*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$1\r\nx\r\n");
        assert_eq!(decode_command(&mut b).unwrap(), Some(Command::Ping));
        assert_eq!(
            decode_command(&mut b).unwrap(),
            Some(Command::Get(Bytes::from_static(b"x")))
        );
        assert_eq!(decode_command(&mut b).unwrap(), None);
    }
}
