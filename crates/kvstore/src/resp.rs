//! Minimal RESP2 (REdis Serialization Protocol) codec, zero-copy.
//!
//! Enough of the wire protocol to run [`crate::KvStore`] as an actual
//! network server: commands arrive as RESP arrays of bulk strings and
//! replies are encoded as simple strings, errors, integers, bulk
//! strings or arrays. Incremental parsing: [`decode_command`] returns
//! `Ok(None)` until a full frame is buffered.
//!
//! ## Hot-path design
//!
//! Parsing works on **borrowed views**: a frame is first scanned in
//! place over the connection read buffer, producing byte *ranges* for
//! each argument (held in a per-thread scratch vector — no
//! intermediate owned `Vec<u8>` per line or per argument). Owned bytes
//! are materialized exactly once, at the typed boundary:
//!
//! * [`decode_command`] copies each argument into its [`Bytes`] slot
//!   when the [`crate::store::Command`] is built (the store keeps
//!   those, so they must own their storage);
//! * [`decode_reply`] copies small bulk bodies but hands back **views**
//!   into the frozen read buffer for large ones
//!   ([`ZERO_COPY_STR_THRESHOLD`]) — an O(1) `freeze` + `slice` under
//!   the `compat` bytes shim, so a big `GET` reply is never memcpy'd
//!   on the client side;
//! * [`peek_command`] validates a frame and classifies it (`CANCEL`
//!   vs. anything else) **without materializing arguments at all**, so
//!   a server front-end can forward the raw frame bytes downstream and
//!   let the executing side do the single real decode.
//!
//! Encoding ([`encode_command`] / [`encode_reply`]) appends straight
//! into the caller's (poolable) `BytesMut` with stack-buffer integer
//! formatting — no `format!` temporaries on the wire path.
//!
//! The previous owned-`Vec` implementation is preserved verbatim in
//! [`reference`] as a differential oracle: the equivalence suite in
//! `tests/resp_equivalence.rs` drives both decoders over random frame
//! sequences split at every byte boundary.

use crate::store::{Command, Hit, Reply};
use bytes::{Buf, Bytes, BytesMut};
use std::cell::RefCell;

/// Errors from protocol handling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RespError {
    /// The frame is syntactically invalid RESP.
    Protocol(String),
    /// The frame parsed but isn't a command we support.
    UnknownCommand(String),
    /// Argument count or type is wrong for the command.
    BadArguments(&'static str),
}

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespError::Protocol(m) => write!(f, "protocol error: {m}"),
            RespError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            RespError::BadArguments(c) => write!(f, "wrong arguments for '{c}'"),
        }
    }
}

impl std::error::Error for RespError {}

/// Upper bound on RESP array element counts.
const MAX_ARRAY: usize = 1_000_000;
/// Upper bound on a bulk string body.
const MAX_BULK: usize = 64 * 1024 * 1024;

/// Bulk reply bodies at or past this size decode as zero-copy views
/// into the frozen read buffer; smaller ones are copied out so the
/// read buffer keeps its capacity and isn't pinned by tiny values.
pub const ZERO_COPY_STR_THRESHOLD: usize = 1024;

thread_local! {
    // Scratch for argument/element byte ranges during a parse: reused
    // across frames so the steady-state decode performs no allocation
    // for parsing itself. Never borrowed re-entrantly (the parser does
    // not recurse into the public entry points).
    static RANGE_SCRATCH: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

// ---------------------------------------------------------------------------
// Integer and frame encoding helpers (no `format!` temporaries).
// ---------------------------------------------------------------------------

/// Decimal digits of `v` in the tail of a stack buffer; returns the
/// buffer and the start index of the digits.
#[inline]
fn u64_digits(v: u64) -> ([u8; 20], usize) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    let mut v = v;
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    (tmp, i)
}

#[inline]
fn put_uint(out: &mut BytesMut, v: u64) {
    let (tmp, i) = u64_digits(v);
    out.extend_from_slice(&tmp[i..]);
}

#[inline]
fn put_int(out: &mut BytesMut, v: i64) {
    if v < 0 {
        out.extend_from_slice(b"-");
    }
    put_uint(out, v.unsigned_abs());
}

/// `$<len>\r\n<body>\r\n`
#[inline]
fn put_bulk(out: &mut BytesMut, body: &[u8]) {
    out.extend_from_slice(b"$");
    put_uint(out, body.len() as u64);
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out.extend_from_slice(b"\r\n");
}

/// A bulk string whose body is the decimal rendering of `v`.
#[inline]
fn put_bulk_uint(out: &mut BytesMut, v: u64) {
    let (tmp, i) = u64_digits(v);
    put_bulk(out, &tmp[i..]);
}

/// `*<n>\r\n`
#[inline]
fn put_array_header(out: &mut BytesMut, n: usize) {
    out.extend_from_slice(b"*");
    put_uint(out, n as u64);
    out.extend_from_slice(b"\r\n");
}

/// Encodes a reply into `out`.
pub fn encode_reply(reply: &Reply, out: &mut BytesMut) {
    match reply {
        Reply::Ok => out.extend_from_slice(b"+OK\r\n"),
        Reply::Pong => out.extend_from_slice(b"+PONG\r\n"),
        Reply::Str(s) => put_bulk(out, s),
        Reply::Int(i) => {
            out.extend_from_slice(b":");
            put_int(out, *i);
            out.extend_from_slice(b"\r\n");
        }
        Reply::Members(ms) => {
            put_array_header(out, ms.len());
            for m in ms {
                put_bulk_uint(out, u64::from(*m));
            }
        }
        // Hits travel as `doc@score_bits` bulk strings; the `@` is what
        // lets the client-side decoder tell them from `Members`.
        Reply::Hits(hits) => {
            put_array_header(out, hits.len());
            for h in hits {
                let (doc, ds) = u64_digits(h.doc);
                let (bits, bs) = u64_digits(h.score_bits());
                let dl = doc.len() - ds;
                let bl = bits.len() - bs;
                let mut body = [0u8; 41]; // 20 digits + '@' + 20 digits
                body[..dl].copy_from_slice(&doc[ds..]);
                body[dl] = b'@';
                body[dl + 1..dl + 1 + bl].copy_from_slice(&bits[bs..]);
                put_bulk(out, &body[..dl + 1 + bl]);
            }
        }
        Reply::Nil => out.extend_from_slice(b"$-1\r\n"),
        Reply::Error(e) => {
            out.extend_from_slice(b"-ERR ");
            out.extend_from_slice(e.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
}

/// Encodes a command as a RESP array (client side).
pub fn encode_command(cmd: &Command, out: &mut BytesMut) {
    match cmd {
        Command::Ping => {
            put_array_header(out, 1);
            put_bulk(out, b"PING");
        }
        Command::Get(k) => {
            put_array_header(out, 2);
            put_bulk(out, b"GET");
            put_bulk(out, k);
        }
        Command::Set(k, v) => {
            put_array_header(out, 3);
            put_bulk(out, b"SET");
            put_bulk(out, k);
            put_bulk(out, v);
        }
        Command::Del(k) => {
            put_array_header(out, 2);
            put_bulk(out, b"DEL");
            put_bulk(out, k);
        }
        Command::SAdd(k, ms) => {
            put_array_header(out, 2 + ms.len());
            put_bulk(out, b"SADD");
            put_bulk(out, k);
            for m in ms {
                put_bulk_uint(out, u64::from(*m));
            }
        }
        Command::SCard(k) => {
            put_array_header(out, 2);
            put_bulk(out, b"SCARD");
            put_bulk(out, k);
        }
        Command::Search { terms, k } => {
            put_array_header(out, 2 + terms.len());
            put_bulk(out, b"SEARCH");
            put_bulk_uint(out, u64::from(*k));
            for t in terms {
                put_bulk_uint(out, u64::from(*t));
            }
        }
        Command::SInter(a, b) => {
            put_array_header(out, 3);
            put_bulk(out, b"SINTER");
            put_bulk(out, a);
            put_bulk(out, b);
        }
        Command::SInterCard(a, b) => {
            put_array_header(out, 3);
            put_bulk(out, b"SINTERCARD");
            put_bulk(out, a);
            put_bulk(out, b);
        }
        Command::FGet(k, slot) => {
            put_array_header(out, 3);
            put_bulk(out, b"FGET");
            put_bulk(out, k);
            put_bulk_uint(out, u64::from(*slot));
        }
        Command::FSet(k, slot, v) => {
            put_array_header(out, 4);
            put_bulk(out, b"FSET");
            put_bulk(out, k);
            put_bulk_uint(out, u64::from(*slot));
            put_bulk(out, v);
        }
        Command::Cancel(seq) => {
            put_array_header(out, 2);
            put_bulk(out, b"CANCEL");
            put_bulk_uint(out, *seq);
        }
        Command::Tie { id, peer } => match peer {
            None => {
                put_array_header(out, 2);
                put_bulk(out, b"TIE");
                put_bulk_uint(out, *id);
            }
            Some((addr, peer_id)) => {
                put_array_header(out, 4);
                put_bulk(out, b"TIE");
                put_bulk_uint(out, *id);
                put_bulk(out, addr.to_string().as_bytes());
                put_bulk_uint(out, *peer_id);
            }
        },
        Command::TiePeer {
            id,
            peer_addr,
            peer_id,
        } => {
            put_array_header(out, 4);
            put_bulk(out, b"TIEPEER");
            put_bulk_uint(out, *id);
            put_bulk(out, peer_addr.to_string().as_bytes());
            put_bulk_uint(out, *peer_id);
        }
        Command::CancelTie(id) => {
            put_array_header(out, 2);
            put_bulk(out, b"CANCELTIE");
            put_bulk_uint(out, *id);
        }
    }
}

// ---------------------------------------------------------------------------
// View-based parsing core.
// ---------------------------------------------------------------------------

#[inline]
fn parse_num<T: std::str::FromStr>(b: &[u8]) -> Option<T> {
    std::str::from_utf8(b).ok().and_then(|s| s.parse().ok())
}

/// Parses argument `i` as a socket address (the tie-protocol frames
/// carry peer server addresses in display form).
fn addr_arg(
    buf: &[u8],
    args: &[(usize, usize)],
    i: usize,
) -> Result<std::net::SocketAddr, RespError> {
    parse_num(&buf[args[i].0..args[i].1]).ok_or(RespError::BadArguments("socket address expected"))
}

/// A non-consuming scan position over a borrowed input buffer. All
/// productions return byte *ranges* into `buf`; nothing is copied.
struct Slicer<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Slicer<'_> {
    /// Range of the next CRLF-terminated line's content (CRLF excluded,
    /// scan advanced past it), or `None` if no full line is buffered.
    fn line(&mut self) -> Option<(usize, usize)> {
        let rest = &self.buf[self.pos..];
        let i = rest.windows(2).position(|w| w == b"\r\n")?;
        let start = self.pos;
        self.pos += i + 2;
        Some((start, start + i))
    }

    /// Body range of one `$<len>\r\n<body>\r\n` bulk string.
    fn bulk(&mut self) -> Result<Option<(usize, usize)>, RespError> {
        let Some((hs, he)) = self.line() else {
            return Ok(None);
        };
        let header = &self.buf[hs..he];
        if header.first() != Some(&b'$') {
            return Err(RespError::Protocol("expected bulk string".into()));
        }
        let len: usize =
            parse_num(&header[1..]).ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
        if len > MAX_BULK {
            return Err(RespError::Protocol("bulk too large".into()));
        }
        if self.buf.len() < self.pos + len + 2 {
            return Ok(None);
        }
        let body = (self.pos, self.pos + len);
        if &self.buf[body.1..body.1 + 2] != b"\r\n" {
            return Err(RespError::Protocol("missing bulk terminator".into()));
        }
        self.pos += len + 2;
        Ok(Some(body))
    }

    /// One `*<n>\r\n` array of bulk strings; element body ranges are
    /// pushed onto `out`. `Ok(Some(()))` only when the frame is
    /// complete.
    fn array(&mut self, out: &mut Vec<(usize, usize)>) -> Result<Option<()>, RespError> {
        let Some((hs, he)) = self.line() else {
            return Ok(None);
        };
        let header = &self.buf[hs..he];
        if header.first() != Some(&b'*') {
            return Err(RespError::Protocol("expected array".into()));
        }
        let n: usize = parse_num(&header[1..])
            .ok_or_else(|| RespError::Protocol("bad array length".into()))?;
        if n > MAX_ARRAY {
            return Err(RespError::Protocol("array too large".into()));
        }
        for _ in 0..n {
            match self.bulk()? {
                Some(r) => out.push(r),
                None => return Ok(None),
            }
        }
        Ok(Some(()))
    }
}

/// Builds the typed [`Command`] from argument ranges. With
/// `materialize` false, byte arguments become empty placeholders —
/// full validation (names, arities, integer arguments) still runs, so
/// [`peek_command`] accepts exactly the frames [`decode_command`]
/// accepts, without copying argument bodies.
fn build_command(
    buf: &[u8],
    args: &[(usize, usize)],
    materialize: bool,
) -> Result<Command, RespError> {
    let name = &buf[args[0].0..args[0].1];
    let arity = args.len() - 1;
    let field = |i: usize| -> Bytes {
        if materialize {
            Bytes::copy_from_slice(&buf[args[i].0..args[i].1])
        } else {
            Bytes::new()
        }
    };
    let int_arg = |i: usize| -> Result<u32, RespError> {
        parse_num(&buf[args[i].0..args[i].1])
            .ok_or(RespError::BadArguments("integer member expected"))
    };
    let is = |upper: &[u8]| name.eq_ignore_ascii_case(upper);

    if is(b"PING") {
        Ok(Command::Ping)
    } else if is(b"GET") {
        if arity == 1 {
            Ok(Command::Get(field(1)))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"SET") {
        if arity == 2 {
            Ok(Command::Set(field(1), field(2)))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"DEL") {
        if arity == 1 {
            Ok(Command::Del(field(1)))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"SADD") {
        if arity >= 2 {
            let mut members = Vec::with_capacity(arity - 1);
            for i in 2..args.len() {
                members.push(int_arg(i)?);
            }
            Ok(Command::SAdd(field(1), members))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"SCARD") {
        if arity == 1 {
            Ok(Command::SCard(field(1)))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"SEARCH") {
        // SEARCH <k> <term>... — zero terms is a legal (empty) query.
        if arity >= 1 {
            let k = int_arg(1)?;
            let mut terms = Vec::with_capacity(arity - 1);
            for i in 2..args.len() {
                terms.push(int_arg(i)?);
            }
            Ok(Command::Search { terms, k })
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"SINTER") {
        if arity == 2 {
            Ok(Command::SInter(field(1), field(2)))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"SINTERCARD") {
        if arity == 2 {
            Ok(Command::SInterCard(field(1), field(2)))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"FGET") {
        if arity == 2 {
            Ok(Command::FGet(field(1), int_arg(2)?))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"FSET") {
        if arity == 3 {
            Ok(Command::FSet(field(1), int_arg(2)?, field(3)))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"CANCEL") {
        if arity == 1 {
            let seq = parse_num(&buf[args[1].0..args[1].1])
                .ok_or(RespError::BadArguments("sequence number expected"))?;
            Ok(Command::Cancel(seq))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"TIE") {
        // TIE <id> | TIE <id> <peer_addr> <peer_id> — the tie ids and
        // address parse in peek mode too, so validation matches.
        let id_arg = |i: usize| -> Result<u64, RespError> {
            parse_num(&buf[args[i].0..args[i].1]).ok_or(RespError::BadArguments("tie id expected"))
        };
        match arity {
            1 => Ok(Command::Tie {
                id: id_arg(1)?,
                peer: None,
            }),
            3 => Ok(Command::Tie {
                id: id_arg(1)?,
                peer: Some((addr_arg(buf, args, 2)?, id_arg(3)?)),
            }),
            _ => Err(RespError::BadArguments("wrong arity")),
        }
    } else if is(b"TIEPEER") {
        let id_arg = |i: usize| -> Result<u64, RespError> {
            parse_num(&buf[args[i].0..args[i].1]).ok_or(RespError::BadArguments("tie id expected"))
        };
        if arity == 3 {
            Ok(Command::TiePeer {
                id: id_arg(1)?,
                peer_addr: addr_arg(buf, args, 2)?,
                peer_id: id_arg(3)?,
            })
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else if is(b"CANCELTIE") {
        if arity == 1 {
            let id = parse_num(&buf[args[1].0..args[1].1])
                .ok_or(RespError::BadArguments("tie id expected"))?;
            Ok(Command::CancelTie(id))
        } else {
            Err(RespError::BadArguments("wrong arity"))
        }
    } else {
        Err(RespError::UnknownCommand(
            String::from_utf8_lossy(name).to_ascii_uppercase(),
        ))
    }
}

/// Attempts to decode one command frame from `buf`.
///
/// Returns `Ok(Some(cmd))` and consumes the frame on success,
/// `Ok(None)` if more bytes are needed (buffer untouched), or an error
/// for malformed or unsupported input (buffer consumed through the
/// frame when determinable).
pub fn decode_command(buf: &mut BytesMut) -> Result<Option<Command>, RespError> {
    let parsed = RANGE_SCRATCH.with(|scratch| {
        let mut args = scratch.borrow_mut();
        args.clear();
        let data = &buf[..];
        let mut sl = Slicer { buf: data, pos: 0 };
        match sl.array(&mut args)? {
            None => Ok(None),
            Some(()) => {
                let built = if args.is_empty() {
                    Err(RespError::Protocol("empty command array".into()))
                } else {
                    build_command(data, &args, true)
                };
                Ok(Some((sl.pos, built)))
            }
        }
    })?;
    let Some((consumed, built)) = parsed else {
        return Ok(None);
    };
    buf.advance(consumed);
    built.map(Some)
}

/// Classification of a validated command frame, for front-ends that
/// forward raw bytes instead of decoding twice (see [`peek_command`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommandFrame {
    /// `CANCEL <seq>` — transport-level retraction, handled in-line by
    /// the reader rather than forwarded.
    Cancel(u64),
    /// Any other valid command.
    Request,
}

/// Validates (but does **not** consume or materialize) the next
/// command frame in `buf`.
///
/// Accepts exactly the frames [`decode_command`] accepts — full
/// syntax, command-name, arity, and integer-argument validation — but
/// allocates nothing for argument bodies. On success returns the
/// frame's classification plus its total encoded length, so a server
/// front-end can forward `&buf[..len]` verbatim to the executing side
/// (which then performs the single materializing decode) and advance
/// the read buffer itself.
pub fn peek_command(buf: &[u8]) -> Result<Option<(CommandFrame, usize)>, RespError> {
    RANGE_SCRATCH.with(|scratch| {
        let mut args = scratch.borrow_mut();
        args.clear();
        let mut sl = Slicer { buf, pos: 0 };
        match sl.array(&mut args)? {
            None => Ok(None),
            Some(()) => {
                if args.is_empty() {
                    return Err(RespError::Protocol("empty command array".into()));
                }
                let frame = match build_command(buf, &args, false)? {
                    Command::Cancel(seq) => CommandFrame::Cancel(seq),
                    _ => CommandFrame::Request,
                };
                Ok(Some((frame, sl.pos)))
            }
        }
    })
}

/// Outcome of a reply-frame scan: everything but bulk bodies is built
/// during the scan; bulk bodies stay as ranges so [`decode_reply`] can
/// choose copy vs. zero-copy view.
enum ParsedReply {
    Ready(Reply),
    StrBody(usize, usize),
}

/// Scans one reply frame at the start of `buf` without consuming.
fn parse_reply_at(buf: &[u8]) -> Result<Option<(ParsedReply, usize)>, RespError> {
    let Some(&head) = buf.first() else {
        return Ok(None);
    };
    let mut sl = Slicer { buf, pos: 0 };
    match head {
        b'+' => {
            let Some((s, e)) = sl.line() else {
                return Ok(None);
            };
            match &buf[s + 1..e] {
                b"OK" => Ok(Some((ParsedReply::Ready(Reply::Ok), sl.pos))),
                b"PONG" => Ok(Some((ParsedReply::Ready(Reply::Pong), sl.pos))),
                other => Err(RespError::Protocol(format!(
                    "unexpected simple string '{}'",
                    String::from_utf8_lossy(other)
                ))),
            }
        }
        b'-' => {
            let Some((s, e)) = sl.line() else {
                return Ok(None);
            };
            let msg = String::from_utf8_lossy(&buf[s + 1..e]);
            let msg = msg.strip_prefix("ERR ").unwrap_or(&msg);
            Ok(Some((
                ParsedReply::Ready(Reply::Error(msg.to_string())),
                sl.pos,
            )))
        }
        b':' => {
            let Some((s, e)) = sl.line() else {
                return Ok(None);
            };
            let i: i64 = parse_num(&buf[s + 1..e])
                .ok_or_else(|| RespError::Protocol("bad integer".into()))?;
            Ok(Some((ParsedReply::Ready(Reply::Int(i)), sl.pos)))
        }
        b'$' => {
            let Some((hs, he)) = sl.line() else {
                return Ok(None);
            };
            let len: i64 = parse_num(&buf[hs + 1..he])
                .ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
            if len < 0 {
                return Ok(Some((ParsedReply::Ready(Reply::Nil), sl.pos)));
            }
            let len = len as usize;
            if len > MAX_BULK {
                return Err(RespError::Protocol("bulk too large".into()));
            }
            if buf.len() < sl.pos + len + 2 {
                return Ok(None);
            }
            let body = (sl.pos, sl.pos + len);
            if &buf[body.1..body.1 + 2] != b"\r\n" {
                return Err(RespError::Protocol("missing bulk terminator".into()));
            }
            Ok(Some((ParsedReply::StrBody(body.0, body.1), body.1 + 2)))
        }
        b'*' => RANGE_SCRATCH.with(|scratch| {
            let mut items = scratch.borrow_mut();
            items.clear();
            match sl.array(&mut items)? {
                None => Ok(None),
                Some(()) => {
                    // `doc@bits` elements are scored hits; plain
                    // integers are set members. An empty array is
                    // ambiguous and decodes as `Members(vec![])` —
                    // callers expecting hits must treat that as zero
                    // hits.
                    if items.iter().any(|&(s, e)| buf[s..e].contains(&b'@')) {
                        let mut hits = Vec::with_capacity(items.len());
                        for &(s, e) in items.iter() {
                            let item = std::str::from_utf8(&buf[s..e])
                                .map_err(|_| RespError::Protocol("non-utf8 hit in array".into()))?;
                            let (doc, bits) = item
                                .split_once('@')
                                .and_then(|(d, b)| Some((d.parse().ok()?, b.parse().ok()?)))
                                .ok_or_else(|| {
                                    RespError::Protocol("malformed hit in array".into())
                                })?;
                            hits.push(Hit::from_bits(doc, bits));
                        }
                        return Ok(Some((ParsedReply::Ready(Reply::Hits(hits)), sl.pos)));
                    }
                    let mut members = Vec::with_capacity(items.len());
                    for &(s, e) in items.iter() {
                        let m: u32 = parse_num(&buf[s..e]).ok_or_else(|| {
                            RespError::Protocol("non-integer member in array".into())
                        })?;
                        members.push(m);
                    }
                    Ok(Some((ParsedReply::Ready(Reply::Members(members)), sl.pos)))
                }
            }
        }),
        other => Err(RespError::Protocol(format!(
            "unknown reply type byte 0x{other:02x}"
        ))),
    }
}

/// Attempts to decode one typed [`Reply`] frame from `buf` (client
/// side). Incremental like [`decode_command`]: returns `Ok(None)` and
/// leaves the buffer untouched until a full frame is available.
///
/// Member arrays are decoded back into `Reply::Members` (each element
/// must be an integer bulk string, which is all `encode_reply` emits);
/// `-ERR msg` decodes to `Reply::Error(msg)`. Bulk bodies of at least
/// [`ZERO_COPY_STR_THRESHOLD`] bytes come back as zero-copy views into
/// the (frozen) read buffer; any unconsumed pipelined tail is
/// re-staged into `buf`.
pub fn decode_reply(buf: &mut BytesMut) -> Result<Option<Reply>, RespError> {
    match parse_reply_at(&buf[..])? {
        None => Ok(None),
        Some((ParsedReply::Ready(r), consumed)) => {
            buf.advance(consumed);
            Ok(Some(r))
        }
        Some((ParsedReply::StrBody(s, e), consumed)) => {
            if e - s >= ZERO_COPY_STR_THRESHOLD {
                // Freeze the whole read buffer (O(1): the Vec moves
                // into the shared allocation) and return a view of the
                // body. The tail — usually empty — is copied back so
                // decoding can continue.
                let full = std::mem::take(buf).freeze();
                let body = full.slice(s..e);
                if full.len() > consumed {
                    buf.extend_from_slice(&full[consumed..]);
                }
                Ok(Some(Reply::Str(body)))
            } else {
                let body = Bytes::copy_from_slice(&buf[s..e]);
                buf.advance(consumed);
                Ok(Some(Reply::Str(body)))
            }
        }
    }
}

/// The pre-refactor owned-`Vec` codec, preserved as the differential
/// oracle for the zero-copy implementation above: identical public
/// behavior (accepted frames, consumption semantics, error cases), so
/// the equivalence property tests drive both over the same inputs.
pub mod reference {
    use super::RespError;
    use crate::store::{Command, Hit, Reply};
    use bytes::{Buf, Bytes, BytesMut};

    /// Encodes a reply into `out` (old `format!`-based path).
    pub fn encode_reply(reply: &Reply, out: &mut BytesMut) {
        match reply {
            Reply::Ok => out.extend_from_slice(b"+OK\r\n"),
            Reply::Pong => out.extend_from_slice(b"+PONG\r\n"),
            Reply::Str(s) => {
                out.extend_from_slice(format!("${}\r\n", s.len()).as_bytes());
                out.extend_from_slice(s);
                out.extend_from_slice(b"\r\n");
            }
            Reply::Int(i) => out.extend_from_slice(format!(":{i}\r\n").as_bytes()),
            Reply::Members(ms) => {
                out.extend_from_slice(format!("*{}\r\n", ms.len()).as_bytes());
                for m in ms {
                    let s = m.to_string();
                    out.extend_from_slice(format!("${}\r\n{s}\r\n", s.len()).as_bytes());
                }
            }
            Reply::Hits(hits) => {
                out.extend_from_slice(format!("*{}\r\n", hits.len()).as_bytes());
                for h in hits {
                    let s = format!("{}@{}", h.doc, h.score_bits());
                    out.extend_from_slice(format!("${}\r\n{s}\r\n", s.len()).as_bytes());
                }
            }
            Reply::Nil => out.extend_from_slice(b"$-1\r\n"),
            Reply::Error(e) => {
                out.extend_from_slice(b"-ERR ");
                out.extend_from_slice(e.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
        }
    }

    /// Old owned-`Vec` command decoder.
    pub fn decode_command(buf: &mut BytesMut) -> Result<Option<Command>, RespError> {
        let mut probe = Cursor { buf, pos: 0 };
        let args = match probe.parse_array()? {
            Some(a) => a,
            None => return Ok(None),
        };
        let consumed = probe.pos;
        buf.advance(consumed);

        if args.is_empty() {
            return Err(RespError::Protocol("empty command array".into()));
        }
        let name = String::from_utf8_lossy(&args[0]).to_ascii_uppercase();
        let arity = args.len() - 1;
        let arg = |i: usize| Bytes::copy_from_slice(&args[i]);
        let int_arg = |i: usize| -> Result<u32, RespError> {
            std::str::from_utf8(&args[i])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(RespError::BadArguments("integer member expected"))
        };

        match name.as_str() {
            "PING" => Ok(Some(Command::Ping)),
            "GET" if arity == 1 => Ok(Some(Command::Get(arg(1)))),
            "SET" if arity == 2 => Ok(Some(Command::Set(arg(1), arg(2)))),
            "DEL" if arity == 1 => Ok(Some(Command::Del(arg(1)))),
            "SADD" if arity >= 2 => {
                let mut members = Vec::with_capacity(arity - 1);
                for i in 2..args.len() {
                    members.push(int_arg(i)?);
                }
                Ok(Some(Command::SAdd(arg(1), members)))
            }
            "SCARD" if arity == 1 => Ok(Some(Command::SCard(arg(1)))),
            "SEARCH" if arity >= 1 => {
                let k = int_arg(1)?;
                let mut terms = Vec::with_capacity(arity - 1);
                for i in 2..args.len() {
                    terms.push(int_arg(i)?);
                }
                Ok(Some(Command::Search { terms, k }))
            }
            "SINTER" if arity == 2 => Ok(Some(Command::SInter(arg(1), arg(2)))),
            "SINTERCARD" if arity == 2 => Ok(Some(Command::SInterCard(arg(1), arg(2)))),
            "FGET" if arity == 2 => Ok(Some(Command::FGet(arg(1), int_arg(2)?))),
            "FSET" if arity == 3 => Ok(Some(Command::FSet(arg(1), int_arg(2)?, arg(3)))),
            "CANCEL" if arity == 1 => {
                let seq = std::str::from_utf8(&args[1])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or(RespError::BadArguments("sequence number expected"))?;
                Ok(Some(Command::Cancel(seq)))
            }
            "TIE" if arity == 1 => Ok(Some(Command::Tie {
                id: ref_parse(&args[1], "tie id expected")?,
                peer: None,
            })),
            "TIE" if arity == 3 => Ok(Some(Command::Tie {
                id: ref_parse(&args[1], "tie id expected")?,
                peer: Some((
                    ref_parse(&args[2], "socket address expected")?,
                    ref_parse(&args[3], "tie id expected")?,
                )),
            })),
            "TIEPEER" if arity == 3 => Ok(Some(Command::TiePeer {
                id: ref_parse(&args[1], "tie id expected")?,
                peer_addr: ref_parse(&args[2], "socket address expected")?,
                peer_id: ref_parse(&args[3], "tie id expected")?,
            })),
            "CANCELTIE" if arity == 1 => Ok(Some(Command::CancelTie(ref_parse(
                &args[1],
                "tie id expected",
            )?))),
            "GET" | "SET" | "DEL" | "SADD" | "SCARD" | "SEARCH" | "SINTER" | "SINTERCARD"
            | "FGET" | "FSET" | "CANCEL" | "TIE" | "TIEPEER" | "CANCELTIE" => {
                Err(RespError::BadArguments("wrong arity"))
            }
            other => Err(RespError::UnknownCommand(other.to_string())),
        }
    }

    /// Parses one owned argument, mirroring the zero-copy path's
    /// `parse_num`-based validation (including the tie frames' socket
    /// addresses).
    fn ref_parse<T: std::str::FromStr>(b: &[u8], err: &'static str) -> Result<T, RespError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(RespError::BadArguments(err))
    }

    /// Old `format!`-based command encoder.
    pub fn encode_command(cmd: &Command, out: &mut BytesMut) {
        fn bulk(out: &mut BytesMut, s: &[u8]) {
            out.extend_from_slice(format!("${}\r\n", s.len()).as_bytes());
            out.extend_from_slice(s);
            out.extend_from_slice(b"\r\n");
        }
        let parts: Vec<Vec<u8>> = match cmd {
            Command::Ping => vec![b"PING".to_vec()],
            Command::Get(k) => vec![b"GET".to_vec(), k.to_vec()],
            Command::Set(k, v) => vec![b"SET".to_vec(), k.to_vec(), v.to_vec()],
            Command::Del(k) => vec![b"DEL".to_vec(), k.to_vec()],
            Command::SAdd(k, ms) => {
                let mut p = vec![b"SADD".to_vec(), k.to_vec()];
                p.extend(ms.iter().map(|m| m.to_string().into_bytes()));
                p
            }
            Command::SCard(k) => vec![b"SCARD".to_vec(), k.to_vec()],
            Command::Search { terms, k } => {
                let mut p = vec![b"SEARCH".to_vec(), k.to_string().into_bytes()];
                p.extend(terms.iter().map(|t| t.to_string().into_bytes()));
                p
            }
            Command::SInter(a, b) => vec![b"SINTER".to_vec(), a.to_vec(), b.to_vec()],
            Command::SInterCard(a, b) => {
                vec![b"SINTERCARD".to_vec(), a.to_vec(), b.to_vec()]
            }
            Command::FGet(k, slot) => {
                vec![b"FGET".to_vec(), k.to_vec(), slot.to_string().into_bytes()]
            }
            Command::FSet(k, slot, v) => vec![
                b"FSET".to_vec(),
                k.to_vec(),
                slot.to_string().into_bytes(),
                v.to_vec(),
            ],
            Command::Cancel(seq) => {
                vec![b"CANCEL".to_vec(), seq.to_string().into_bytes()]
            }
            Command::Tie { id, peer } => match peer {
                None => vec![b"TIE".to_vec(), id.to_string().into_bytes()],
                Some((addr, peer_id)) => vec![
                    b"TIE".to_vec(),
                    id.to_string().into_bytes(),
                    addr.to_string().into_bytes(),
                    peer_id.to_string().into_bytes(),
                ],
            },
            Command::TiePeer {
                id,
                peer_addr,
                peer_id,
            } => vec![
                b"TIEPEER".to_vec(),
                id.to_string().into_bytes(),
                peer_addr.to_string().into_bytes(),
                peer_id.to_string().into_bytes(),
            ],
            Command::CancelTie(id) => {
                vec![b"CANCELTIE".to_vec(), id.to_string().into_bytes()]
            }
        };
        out.extend_from_slice(format!("*{}\r\n", parts.len()).as_bytes());
        for p in parts {
            bulk(out, &p);
        }
    }

    /// Old owned-`Vec` reply decoder.
    pub fn decode_reply(buf: &mut BytesMut) -> Result<Option<Reply>, RespError> {
        let mut probe = Cursor { buf, pos: 0 };
        let reply = match probe.parse_reply()? {
            Some(r) => r,
            None => return Ok(None),
        };
        let consumed = probe.pos;
        buf.advance(consumed);
        Ok(Some(reply))
    }

    struct Cursor<'a> {
        buf: &'a BytesMut,
        pos: usize,
    }

    impl Cursor<'_> {
        fn line(&mut self) -> Result<Option<&[u8]>, RespError> {
            let rest = &self.buf[self.pos..];
            match rest.windows(2).position(|w| w == b"\r\n") {
                Some(i) => {
                    let line = &rest[..i];
                    self.pos += i + 2;
                    Ok(Some(line))
                }
                None => Ok(None),
            }
        }

        fn parse_array(&mut self) -> Result<Option<Vec<Vec<u8>>>, RespError> {
            let header = match self.line()? {
                Some(l) => l.to_vec(),
                None => return Ok(None),
            };
            if header.first() != Some(&b'*') {
                return Err(RespError::Protocol("expected array".into()));
            }
            let n: usize = std::str::from_utf8(&header[1..])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| RespError::Protocol("bad array length".into()))?;
            if n > super::MAX_ARRAY {
                return Err(RespError::Protocol("array too large".into()));
            }
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                match self.parse_bulk()? {
                    Some(b) => items.push(b),
                    None => return Ok(None),
                }
            }
            Ok(Some(items))
        }

        fn parse_reply(&mut self) -> Result<Option<Reply>, RespError> {
            let Some(&head) = self.buf.get(self.pos) else {
                return Ok(None);
            };
            match head {
                b'+' => {
                    let line = match self.line()? {
                        Some(l) => l.to_vec(),
                        None => return Ok(None),
                    };
                    match &line[1..] {
                        b"OK" => Ok(Some(Reply::Ok)),
                        b"PONG" => Ok(Some(Reply::Pong)),
                        other => Err(RespError::Protocol(format!(
                            "unexpected simple string '{}'",
                            String::from_utf8_lossy(other)
                        ))),
                    }
                }
                b'-' => {
                    let line = match self.line()? {
                        Some(l) => l.to_vec(),
                        None => return Ok(None),
                    };
                    let msg = String::from_utf8_lossy(&line[1..]);
                    let msg = msg.strip_prefix("ERR ").unwrap_or(&msg);
                    Ok(Some(Reply::Error(msg.to_string())))
                }
                b':' => {
                    let line = match self.line()? {
                        Some(l) => l.to_vec(),
                        None => return Ok(None),
                    };
                    let i: i64 = std::str::from_utf8(&line[1..])
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| RespError::Protocol("bad integer".into()))?;
                    Ok(Some(Reply::Int(i)))
                }
                b'$' => {
                    let start = self.pos;
                    let header = match self.line()? {
                        Some(l) => l.to_vec(),
                        None => return Ok(None),
                    };
                    let len: i64 = std::str::from_utf8(&header[1..])
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
                    if len < 0 {
                        return Ok(Some(Reply::Nil));
                    }
                    self.pos = start;
                    match self.parse_bulk()? {
                        Some(data) => Ok(Some(Reply::Str(Bytes::from(data)))),
                        None => Ok(None),
                    }
                }
                b'*' => {
                    let items = match self.parse_array()? {
                        Some(items) => items,
                        None => return Ok(None),
                    };
                    if items.iter().any(|i| i.contains(&b'@')) {
                        let mut hits = Vec::with_capacity(items.len());
                        for item in items {
                            let s = std::str::from_utf8(&item)
                                .map_err(|_| RespError::Protocol("non-utf8 hit in array".into()))?;
                            let (doc, bits) = s
                                .split_once('@')
                                .and_then(|(d, b)| Some((d.parse().ok()?, b.parse().ok()?)))
                                .ok_or_else(|| {
                                    RespError::Protocol("malformed hit in array".into())
                                })?;
                            hits.push(Hit::from_bits(doc, bits));
                        }
                        return Ok(Some(Reply::Hits(hits)));
                    }
                    let mut members = Vec::with_capacity(items.len());
                    for item in items {
                        let m: u32 = std::str::from_utf8(&item)
                            .ok()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| {
                                RespError::Protocol("non-integer member in array".into())
                            })?;
                        members.push(m);
                    }
                    Ok(Some(Reply::Members(members)))
                }
                other => Err(RespError::Protocol(format!(
                    "unknown reply type byte 0x{other:02x}"
                ))),
            }
        }

        fn parse_bulk(&mut self) -> Result<Option<Vec<u8>>, RespError> {
            let header = match self.line()? {
                Some(l) => l.to_vec(),
                None => return Ok(None),
            };
            if header.first() != Some(&b'$') {
                return Err(RespError::Protocol("expected bulk string".into()));
            }
            let len: usize = std::str::from_utf8(&header[1..])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| RespError::Protocol("bad bulk length".into()))?;
            if len > super::MAX_BULK {
                return Err(RespError::Protocol("bulk too large".into()));
            }
            if self.buf.len() < self.pos + len + 2 {
                return Ok(None);
            }
            let data = self.buf[self.pos..self.pos + len].to_vec();
            if &self.buf[self.pos + len..self.pos + len + 2] != b"\r\n" {
                return Err(RespError::Protocol("missing bulk terminator".into()));
            }
            self.pos += len + 2;
            Ok(Some(data))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(s: &[u8]) -> BytesMut {
        BytesMut::from(s)
    }

    #[test]
    fn decode_simple_get() {
        let mut b = buf(b"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n");
        let cmd = decode_command(&mut b).unwrap().unwrap();
        assert_eq!(cmd, Command::Get(Bytes::from_static(b"foo")));
        assert!(b.is_empty(), "frame fully consumed");
    }

    #[test]
    fn decode_incremental() {
        let full = b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n";
        for cut in 1..full.len() {
            let mut b = buf(&full[..cut]);
            assert_eq!(decode_command(&mut b).unwrap(), None, "cut={cut}");
            assert_eq!(b.len(), cut, "partial input untouched");
        }
        let mut b = buf(full);
        assert!(decode_command(&mut b).unwrap().is_some());
    }

    #[test]
    fn decode_sadd_with_members() {
        let mut b = buf(b"*4\r\n$4\r\nSADD\r\n$1\r\ns\r\n$1\r\n7\r\n$2\r\n42\r\n");
        let cmd = decode_command(&mut b).unwrap().unwrap();
        assert_eq!(cmd, Command::SAdd(Bytes::from_static(b"s"), vec![7, 42]));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut b = buf(b"+OK\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::Protocol(_))
        ));
        let mut b = buf(b"*1\r\n$7\r\nFLUSHDB\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::UnknownCommand(_))
        ));
        let mut b = buf(b"*1\r\n$3\r\nGET\r\n"); // missing key
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::BadArguments(_))
        ));
        let mut b = buf(b"*3\r\n$4\r\nSADD\r\n$1\r\ns\r\n$3\r\nabc\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::BadArguments(_))
        ));
    }

    #[test]
    fn command_roundtrip_through_codec() {
        let cmds = vec![
            Command::Ping,
            Command::Get(Bytes::from_static(b"k")),
            Command::Set(Bytes::from_static(b"k"), Bytes::from_static(b"value")),
            Command::Del(Bytes::from_static(b"k")),
            Command::SAdd(Bytes::from_static(b"s"), vec![1, 2, 3]),
            Command::SCard(Bytes::from_static(b"s")),
            Command::SInter(Bytes::from_static(b"a"), Bytes::from_static(b"b")),
            Command::SInterCard(Bytes::from_static(b"a"), Bytes::from_static(b"b")),
            Command::FGet(Bytes::from_static(b"k"), 3),
            Command::FSet(Bytes::from_static(b"k"), 2, Bytes::from_static(b"frag")),
        ];
        for cmd in cmds {
            let mut wire = BytesMut::new();
            encode_command(&cmd, &mut wire);
            let decoded = decode_command(&mut wire).unwrap().unwrap();
            assert_eq!(decoded, cmd);
            assert!(wire.is_empty());
        }
    }

    #[test]
    fn encode_replies() {
        let cases: Vec<(Reply, &[u8])> = vec![
            (Reply::Ok, b"+OK\r\n"),
            (Reply::Pong, b"+PONG\r\n"),
            (Reply::Int(-7), b":-7\r\n"),
            (Reply::Nil, b"$-1\r\n"),
            (Reply::Str(Bytes::from_static(b"hi")), b"$2\r\nhi\r\n"),
            (
                Reply::Members(vec![10, 2]),
                b"*2\r\n$2\r\n10\r\n$1\r\n2\r\n",
            ),
            (Reply::Error("boom".into()), b"-ERR boom\r\n"),
        ];
        for (reply, want) in cases {
            let mut out = BytesMut::new();
            encode_reply(&reply, &mut out);
            assert_eq!(&out[..], want);
        }
    }

    #[test]
    fn search_command_roundtrip() {
        let cmds = vec![
            Command::Search {
                terms: vec![15, 40, 200],
                k: 10,
            },
            Command::Search {
                terms: vec![],
                k: 3,
            },
        ];
        for cmd in cmds {
            let mut wire = BytesMut::new();
            encode_command(&cmd, &mut wire);
            assert_eq!(decode_command(&mut wire).unwrap().unwrap(), cmd);
            assert!(wire.is_empty());
        }
        // Bare SEARCH (no k) is an arity error.
        let mut b = buf(b"*1\r\n$6\r\nSEARCH\r\n");
        assert!(matches!(
            decode_command(&mut b),
            Err(RespError::BadArguments(_))
        ));
    }

    #[test]
    fn hits_reply_roundtrip_exact_scores() {
        let hits = vec![
            Hit::new(42, 3.25190381),
            Hit::new(7_000_000_123, -0.5),
            Hit::new(0, f64::MAX),
        ];
        let mut wire = BytesMut::new();
        encode_reply(&Reply::Hits(hits.clone()), &mut wire);
        let decoded = decode_reply(&mut wire).unwrap().unwrap();
        assert_eq!(decoded, Reply::Hits(hits.clone()));
        match decoded {
            Reply::Hits(got) => {
                for (g, w) in got.iter().zip(&hits) {
                    assert_eq!(g.score().to_bits(), w.score().to_bits());
                }
            }
            other => panic!("expected hits, got {other:?}"),
        }
        // Empty hit arrays are indistinguishable from empty member
        // arrays on the wire and decode as Members.
        let mut wire = BytesMut::new();
        encode_reply(&Reply::Hits(vec![]), &mut wire);
        assert_eq!(
            decode_reply(&mut wire).unwrap().unwrap(),
            Reply::Members(vec![])
        );
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut b = buf(b"*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$1\r\nx\r\n");
        assert_eq!(decode_command(&mut b).unwrap(), Some(Command::Ping));
        assert_eq!(
            decode_command(&mut b).unwrap(),
            Some(Command::Get(Bytes::from_static(b"x")))
        );
        assert_eq!(decode_command(&mut b).unwrap(), None);
    }

    #[test]
    fn peek_classifies_without_consuming() {
        let mut wire = BytesMut::new();
        encode_command(&Command::Get(Bytes::from_static(b"k")), &mut wire);
        let get_len = wire.len();
        encode_command(&Command::Cancel(77), &mut wire);
        let (frame, len) = peek_command(&wire[..]).unwrap().unwrap();
        assert_eq!(frame, CommandFrame::Request);
        assert_eq!(len, get_len, "consumed length covers exactly one frame");
        // Buffer untouched: the caller advances.
        let (frame2, _) = peek_command(&wire[len..]).unwrap().unwrap();
        assert_eq!(frame2, CommandFrame::Cancel(77));
        // Partial frames report None at every prefix.
        for cut in 1..get_len {
            assert_eq!(peek_command(&wire[..cut]).unwrap(), None, "cut={cut}");
        }
        // Validation matches decode_command: bad args rejected.
        let bad = b"*1\r\n$3\r\nGET\r\n";
        assert!(matches!(
            peek_command(&bad[..]),
            Err(RespError::BadArguments(_))
        ));
    }

    #[test]
    fn large_str_reply_is_zero_copy_and_restages_tail() {
        let body = vec![b'x'; ZERO_COPY_STR_THRESHOLD + 100];
        let mut wire = BytesMut::new();
        encode_reply(&Reply::Str(Bytes::from(body.clone())), &mut wire);
        encode_reply(&Reply::Pong, &mut wire); // pipelined tail
        let r1 = decode_reply(&mut wire).unwrap().unwrap();
        assert_eq!(r1, Reply::Str(Bytes::from(body)));
        let r2 = decode_reply(&mut wire).unwrap().unwrap();
        assert_eq!(r2, Reply::Pong);
        assert_eq!(decode_reply(&mut wire).unwrap(), None);
    }

    #[test]
    fn new_and_reference_encoders_agree() {
        let cmds = vec![
            Command::Ping,
            Command::Get(Bytes::from_static(b"key")),
            Command::Set(Bytes::from_static(b"k"), Bytes::from_static(b"v")),
            Command::SAdd(Bytes::from_static(b"s"), vec![0, 1, u32::MAX]),
            Command::Search {
                terms: vec![9, 8],
                k: 5,
            },
            Command::Cancel(u64::MAX),
        ];
        for cmd in &cmds {
            let (mut a, mut b) = (BytesMut::new(), BytesMut::new());
            encode_command(cmd, &mut a);
            reference::encode_command(cmd, &mut b);
            assert_eq!(&a[..], &b[..], "command encoders diverge on {cmd:?}");
        }
        let replies = vec![
            Reply::Ok,
            Reply::Int(i64::MIN),
            Reply::Int(i64::MAX),
            Reply::Members(vec![3, 0, 7]),
            Reply::Hits(vec![Hit::new(u64::MAX, -1.5)]),
            Reply::Str(Bytes::from_static(b"payload")),
            Reply::Nil,
            Reply::Error("bad".into()),
        ];
        for reply in &replies {
            let (mut a, mut b) = (BytesMut::new(), BytesMut::new());
            encode_reply(reply, &mut a);
            reference::encode_reply(reply, &mut b);
            assert_eq!(&a[..], &b[..], "reply encoders diverge on {reply:?}");
        }
    }
}
