//! A Redis-like in-memory key-value store with set operations.
//!
//! This crate is the reproduction's stand-in for the Redis server used
//! in §6.2 of *Optimal Reissue Policies for Reducing Tail Latency*. It
//! implements the pieces of Redis that the paper's evaluation actually
//! exercises:
//!
//! * a string/set keyspace with `GET`/`SET`/`DEL`/`SADD`/`SCARD`/
//!   `SINTER`/`SINTERCARD` ([`KvStore`], [`Command`], [`Reply`]);
//! * integer sets stored sorted with adaptive two-pointer/galloping
//!   intersection, instrumented with an operation count used as a
//!   deterministic service-cost model ([`IntSet`]);
//! * a minimal RESP2 wire protocol ([`resp`]) so the store can be used
//!   as an actual server (see `examples/kv_set_intersection.rs`);
//! * the paper's synthetic dataset — 1 000 sets of integers from
//!   `1..=10⁶` with log-normal cardinalities — and its query trace of
//!   40 000 random pair intersections ([`dataset`], [`workload`]).
//!
//! The paper's tail-latency story for Redis hinges on two mechanisms,
//! both reproduced here: rare intersections of two abnormally large
//! sets ("queries of death"), and Redis's round-robin servicing of
//! client connections, which lets one slow command delay every other
//! connection (modelled by `simulator::Discipline::RoundRobin`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod resp;
pub mod server;
pub mod workload;

mod sets;
mod store;

pub use dataset::{Dataset, DatasetConfig};
pub use server::{Connection, MiniServer, ServerStats};
pub use sets::IntSet;
pub use store::{fragment_key, Backend, Command, Hit, KvStore, Reply};
pub use workload::{Trace, WorkloadConfig};
