//! Sorted integer sets with cost-instrumented intersection.

/// A set of `u32` values stored as a sorted vector.
///
/// Intersection is the workhorse of the paper's Redis workload. It uses
/// a size-adaptive algorithm: a linear two-pointer merge when the
/// operands are comparable and galloping (exponential probing into the
/// larger set) when one side is much smaller — the same strategy
/// production engines use. Every operation returns an *operation count*
/// alongside its result; the workload layer converts counts to
/// milliseconds with a calibrated constant, giving a deterministic,
/// hardware-independent service-time model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntSet {
    items: Vec<u32>,
}

/// Ratio of lengths beyond which intersection switches to galloping.
const GALLOP_RATIO: usize = 16;

impl IntSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntSet { items: Vec::new() }
    }

    /// Builds from arbitrary values (sorts and deduplicates).
    pub fn from_unsorted(mut values: Vec<u32>) -> Self {
        values.sort_unstable();
        values.dedup();
        IntSet { items: values }
    }

    /// Builds from a sorted, deduplicated vector.
    ///
    /// # Panics
    /// Panics if the input is not strictly increasing.
    pub fn from_sorted(values: Vec<u32>) -> Self {
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "from_sorted input must be strictly increasing"
        );
        IntSet { items: values }
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test, `O(log n)`.
    pub fn contains(&self, v: u32) -> bool {
        self.items.binary_search(&v).is_ok()
    }

    /// Inserts a value; returns whether it was newly added. `O(n)`
    /// worst case (vector shift) — fine for build-time mutation, the
    /// workload is read-only after loading.
    pub fn insert(&mut self, v: u32) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, v);
                true
            }
        }
    }

    /// The sorted contents.
    pub fn as_slice(&self) -> &[u32] {
        &self.items
    }

    /// Intersection with cost accounting: returns the intersection and
    /// the number of elementary operations (comparisons/probes)
    /// performed.
    pub fn intersect(&self, other: &IntSet) -> (IntSet, u64) {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return (IntSet::new(), 1);
        }
        if large.len() / small.len().max(1) >= GALLOP_RATIO {
            Self::intersect_gallop(small, large)
        } else {
            Self::intersect_merge(small, large)
        }
    }

    /// Intersection cardinality only (Redis `SINTERCARD`), same costs.
    pub fn intersect_count(&self, other: &IntSet) -> (usize, u64) {
        let (set, cost) = self.intersect(other);
        (set.len(), cost)
    }

    /// Intersection with *Redis's* cost profile: iterate the smaller
    /// set and probe the larger one (Redis stores integer sets as
    /// sorted "intsets" probed by binary search, or as hash tables),
    /// then materialize the reply. Cost = one `log₂|large|` probe per
    /// small element plus one unit per result element.
    ///
    /// This is deliberately *worse* than [`IntSet::intersect`]'s
    /// adaptive merge for similar-sized operands — by `Θ(log n)` — and
    /// that gap is what turns the dataset's rare large×large pairs into
    /// the paper's "queries of death": relative to the mean query, a
    /// probe-based monster costs ~100× more than a merge-based one
    /// would. The workload layer therefore uses this cost model; the
    /// merge remains available (and benchmarked) as the modern
    /// alternative.
    pub fn intersect_probe(&self, other: &IntSet) -> (IntSet, u64) {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() || large.is_empty() {
            return (IntSet::new(), 1);
        }
        let probe_cost = (usize::BITS - (large.len() - 1).max(1).leading_zeros()) as u64;
        let mut out = Vec::new();
        let mut ops = 0u64;
        for &v in &small.items {
            ops += probe_cost;
            if large.contains(v) {
                out.push(v);
                ops += 1;
            }
        }
        (IntSet { items: out }, ops.max(1))
    }

    /// Two-pointer merge intersection, `O(n + m)`.
    fn intersect_merge(a: &IntSet, b: &IntSet) -> (IntSet, u64) {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let mut ops = 0u64;
        while i < a.items.len() && j < b.items.len() {
            ops += 1;
            match a.items[i].cmp(&b.items[j]) {
                std::cmp::Ordering::Equal => {
                    out.push(a.items[i]);
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        (IntSet { items: out }, ops.max(1))
    }

    /// Galloping intersection: for each element of the small set,
    /// exponential search into the remaining suffix of the large set.
    /// `O(s · log(l/s))`.
    fn intersect_gallop(small: &IntSet, large: &IntSet) -> (IntSet, u64) {
        let mut out = Vec::new();
        let mut base = 0usize;
        let mut ops = 0u64;
        for &v in &small.items {
            // Exponential probe for the first index ≥ v.
            let mut step = 1usize;
            let mut hi = base;
            while hi < large.items.len() && large.items[hi] < v {
                ops += 1;
                hi = base + step;
                step *= 2;
            }
            let lo = (hi / 2).max(base).min(large.items.len());
            let hi = hi.min(large.items.len());
            let offset = large.items[lo..hi].partition_point(|&x| x < v);
            ops += ((hi - lo).max(1) as f64).log2().ceil() as u64 + 1;
            base = lo + offset;
            if base < large.items.len() && large.items[base] == v {
                out.push(v);
                base += 1;
            }
            if base >= large.items.len() {
                break;
            }
        }
        (IntSet { items: out }, ops.max(1))
    }
}

impl FromIterator<u32> for IntSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        IntSet::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn brute_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        sa.intersection(&sb).copied().collect()
    }

    #[test]
    fn basic_construction() {
        let s = IntSet::from_unsorted(vec![5, 1, 3, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
    }

    #[test]
    fn insert_maintains_order() {
        let mut s = IntSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.as_slice(), &[1, 5]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_duplicates() {
        let _ = IntSet::from_sorted(vec![1, 1, 2]);
    }

    #[test]
    fn intersect_merge_path() {
        let a = IntSet::from_unsorted((0..100).collect());
        let b = IntSet::from_unsorted((50..150).collect());
        let (r, ops) = a.intersect(&b);
        assert_eq!(r.as_slice(), (50..100).collect::<Vec<u32>>().as_slice());
        assert!(ops > 0);
    }

    #[test]
    fn intersect_gallop_path() {
        // Small (5 elements) vs large (10k): must use galloping.
        let a = IntSet::from_unsorted(vec![3, 5000, 9999, 15000, 20001]);
        let b = IntSet::from_unsorted((0..10_000).map(|i| i * 2).collect());
        let (r, ops_gallop) = a.intersect(&b);
        let want = brute_intersect(a.as_slice(), b.as_slice());
        assert_eq!(want, vec![5000, 15000]);
        assert_eq!(r.as_slice(), want.as_slice());
        // Galloping should cost far less than a full merge scan.
        assert!(ops_gallop < 10_000, "ops={ops_gallop}");
    }

    #[test]
    fn empty_intersections() {
        let e = IntSet::new();
        let s = IntSet::from_unsorted(vec![1, 2, 3]);
        assert_eq!(e.intersect(&s).0.len(), 0);
        assert_eq!(s.intersect(&e).0.len(), 0);
        assert_eq!(e.intersect(&e).0.len(), 0);
    }

    #[test]
    fn intersect_count_matches_intersect() {
        let a = IntSet::from_unsorted((0..500).map(|i| i * 3).collect());
        let b = IntSet::from_unsorted((0..500).map(|i| i * 5).collect());
        let ((set, c1), (n, c2)) = (a.intersect(&b), a.intersect_count(&b));
        assert_eq!(set.len(), n);
        assert_eq!(c1, c2);
    }

    #[test]
    fn probe_cost_penalizes_balanced_large_pairs() {
        // For two large similar-sized sets the probe model must cost
        // ~log(n)× more than the merge — the "query of death" driver.
        let a = IntSet::from_unsorted((0..200_000u32).map(|i| i * 2).collect());
        let b = IntSet::from_unsorted((0..200_000u32).map(|i| i * 3).collect());
        let (_, merge_cost) = IntSet::intersect_merge(&a, &b);
        let (_, probe_cost) = a.intersect_probe(&b);
        assert!(
            probe_cost > 5 * merge_cost,
            "probe={probe_cost} merge={merge_cost}"
        );
    }

    proptest! {
        #[test]
        fn probe_matches_merge_result(
            a in proptest::collection::vec(0u32..3000, 0..400),
            b in proptest::collection::vec(0u32..3000, 0..400),
        ) {
            let sa = IntSet::from_unsorted(a);
            let sb = IntSet::from_unsorted(b);
            prop_assert_eq!(sa.intersect_probe(&sb).0, sa.intersect(&sb).0);
        }

        #[test]
        fn intersection_matches_btreeset(
            a in proptest::collection::vec(0u32..5000, 0..600),
            b in proptest::collection::vec(0u32..5000, 0..600),
        ) {
            let sa = IntSet::from_unsorted(a.clone());
            let sb = IntSet::from_unsorted(b.clone());
            let (r, ops) = sa.intersect(&sb);
            let want = brute_intersect(&a, &b);
            prop_assert_eq!(r.as_slice(), want.as_slice());
            prop_assert!(ops >= 1);
        }

        #[test]
        fn gallop_matches_merge(
            small in proptest::collection::vec(0u32..100_000, 0..40),
            large_seed in 0u32..1000,
        ) {
            // Construct a large set deterministically from the seed.
            let large: Vec<u32> =
                (0..20_000u32).map(|i| i * 7 + large_seed % 7).collect();
            let ss = IntSet::from_unsorted(small.clone());
            let sl = IntSet::from_unsorted(large.clone());
            let (g, _) = IntSet::intersect_gallop(&ss, &sl);
            let (m, _) = IntSet::intersect_merge(&ss, &sl);
            prop_assert_eq!(g.as_slice(), m.as_slice());
        }

        #[test]
        fn intersection_commutes(
            a in proptest::collection::vec(0u32..2000, 0..300),
            b in proptest::collection::vec(0u32..2000, 0..300),
        ) {
            let sa = IntSet::from_unsorted(a);
            let sb = IntSet::from_unsorted(b);
            prop_assert_eq!(sa.intersect(&sb).0, sb.intersect(&sa).0);
        }
    }
}
