//! The paper's Redis set-intersection query trace (§6.2): 40 000
//! intersections of random set pairs, with measured (deterministic)
//! service costs.

use crate::dataset::Dataset;
use crate::sets::IntSet;
use crate::store::{Command, KvStore, Reply};
use bytes::Bytes;
use distributions::rng::stream;
use rand::Rng;

/// Key of the first §6.2 monster set (see [`store_with_monsters`]).
pub const MONSTER_KEY_A: &str = "qod:a";
/// Key of the second §6.2 monster set.
pub const MONSTER_KEY_B: &str = "qod:b";

/// Loads `dataset` plus the two monster sets behind the §6.2 "queries
/// of death" into a fresh store: intersecting [`MONSTER_KEY_A`] with
/// [`MONSTER_KEY_B`] costs ~500k probe operations (tens of
/// milliseconds at realistic per-op burns) against ~0.5 ms for a
/// typical traced pair. One definition serves every §6.2 experiment —
/// the TCP cluster example and the `figtcp` figure sweeps replay the
/// *same* workload by construction.
pub fn store_with_monsters(dataset: &Dataset) -> KvStore {
    let mut store = KvStore::new();
    dataset.load_into(&mut store);
    store.load_set(MONSTER_KEY_A, IntSet::from_unsorted((0..30_000).collect()));
    store.load_set(
        MONSTER_KEY_B,
        IntSet::from_unsorted((15_000..45_000).collect()),
    );
    store
}

/// Workload generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of intersection queries (the paper uses 40 000).
    pub num_queries: usize,
    /// Nanoseconds of service time per elementary set operation —
    /// the cost-to-time calibration constant. The default (80 ns) is
    /// representative of cache-unfriendly merge work on the paper's
    /// 2.4 GHz Xeon and puts the trace mean near the paper's measured
    /// µ_R = 2.366 ms.
    pub ns_per_op: f64,
    /// RNG seed for pair selection.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 40_000,
            ns_per_op: 80.0,
            seed: 0xbeef,
        }
    }
}

/// A generated query trace: the queries and their measured costs.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The query list as `(set_a, set_b)` indices.
    pub pairs: Vec<(usize, usize)>,
    /// Deterministic service time of each query, in milliseconds,
    /// obtained by executing the intersection and converting its
    /// operation count at `ns_per_op`.
    pub costs_ms: Vec<f64>,
}

impl Trace {
    /// Executes `config.num_queries` random pair intersections against
    /// the dataset and records their costs.
    ///
    /// The engine really runs: every cost is the instrumented operation
    /// count of an actual intersection over the generated sets, so the
    /// trace inherits the dataset's heavy cardinality tail (the rare
    /// large×large "queries of death" the paper describes).
    pub fn generate(dataset: &Dataset, config: WorkloadConfig) -> Self {
        assert!(config.num_queries > 0 && config.ns_per_op > 0.0);
        let n = dataset.sets.len();
        assert!(n >= 2, "need at least two sets");
        let mut rng = stream(config.seed, 3);
        let mut pairs = Vec::with_capacity(config.num_queries);
        let mut costs_ms = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let a = rng.gen_range(0..n);
            let b = loop {
                let b = rng.gen_range(0..n);
                if b != a {
                    break b;
                }
            };
            // Redis cost semantics: iterate-small / probe-large.
            let (_, ops) = dataset.sets[a].intersect_probe(&dataset.sets[b]);
            pairs.push((a, b));
            costs_ms.push(ops as f64 * config.ns_per_op / 1e6);
        }
        Trace { pairs, costs_ms }
    }

    /// Re-executes query `i` against a loaded store, returning the
    /// reply (for end-to-end validation of the command path).
    pub fn execute_against(&self, store: &mut KvStore, i: usize) -> Reply {
        let (a, b) = self.pairs[i % self.pairs.len()];
        let cmd = Command::SInter(
            Bytes::from(Dataset::key(a).into_bytes()),
            Bytes::from(Dataset::key(b).into_bytes()),
        );
        store.execute(&cmd).0
    }

    /// Mean service time (ms).
    pub fn mean_ms(&self) -> f64 {
        self.costs_ms.iter().sum::<f64>() / self.costs_ms.len() as f64
    }

    /// Standard deviation of service time (ms).
    pub fn std_ms(&self) -> f64 {
        let m = self.mean_ms();
        (self.costs_ms.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / self.costs_ms.len() as f64)
            .sqrt()
    }

    /// Rescales every cost so the mean becomes `target_mean_ms`
    /// (calibration helper).
    pub fn calibrate_to_mean(&mut self, target_mean_ms: f64) {
        assert!(target_mean_ms > 0.0);
        let f = target_mean_ms / self.mean_ms();
        for c in &mut self.costs_ms {
            *c *= f;
        }
    }

    /// Number of queries with cost above `threshold_ms`.
    pub fn count_above(&self, threshold_ms: f64) -> usize {
        self.costs_ms.iter().filter(|&&c| c > threshold_ms).count()
    }

    /// A `'static` command generator over this trace for open-loop
    /// serving experiments: the traced `SINTERCARD` for arrival `i`
    /// (wrapping past the trace length), with a query of death —
    /// [`MONSTER_KEY_A`] ∩ [`MONSTER_KEY_B`], see
    /// [`store_with_monsters`] — every `every` arrivals.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn monster_command_fn(
        &self,
        every: usize,
    ) -> impl FnMut(usize) -> Command + Send + 'static {
        assert!(every > 0, "monster frequency must be positive");
        let pairs = self.pairs.clone();
        move |i| {
            if i % every == every / 2 {
                Command::SInterCard(MONSTER_KEY_A.into(), MONSTER_KEY_B.into())
            } else {
                let (a, b) = pairs[i % pairs.len()];
                Command::SInterCard(
                    Bytes::from(Dataset::key(a).into_bytes()),
                    Bytes::from(Dataset::key(b).into_bytes()),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn small_trace(seed: u64) -> (Dataset, Trace) {
        let d = Dataset::generate(DatasetConfig::small(seed));
        let t = Trace::generate(
            &d,
            WorkloadConfig {
                num_queries: 500,
                ns_per_op: 80.0,
                seed,
            },
        );
        (d, t)
    }

    #[test]
    fn trace_shape() {
        let (_, t) = small_trace(1);
        assert_eq!(t.pairs.len(), 500);
        assert_eq!(t.costs_ms.len(), 500);
        assert!(t.costs_ms.iter().all(|&c| c > 0.0));
        assert!(t.pairs.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn deterministic() {
        let (_, t1) = small_trace(2);
        let (_, t2) = small_trace(2);
        assert_eq!(t1.pairs, t2.pairs);
        assert_eq!(t1.costs_ms, t2.costs_ms);
    }

    #[test]
    fn cost_correlates_with_set_sizes() {
        let (d, t) = small_trace(3);
        // The most expensive query should involve sets whose combined
        // size is above the trace median.
        let (argmax, _) = t
            .costs_ms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let (a, b) = t.pairs[argmax];
        let big = d.sets[a].len() + d.sets[b].len();
        let mut sums: Vec<usize> = t
            .pairs
            .iter()
            .map(|&(a, b)| d.sets[a].len() + d.sets[b].len())
            .collect();
        sums.sort_unstable();
        assert!(big >= sums[sums.len() / 2], "big={big}");
    }

    #[test]
    fn execute_against_store_matches_sets() {
        let (d, t) = small_trace(4);
        let mut kv = KvStore::new();
        d.load_into(&mut kv);
        let (a, b) = t.pairs[0];
        let want = d.sets[a].intersect(&d.sets[b]).0;
        match t.execute_against(&mut kv, 0) {
            Reply::Members(ms) => assert_eq!(ms, want.as_slice()),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn calibration_scales_mean() {
        let (_, mut t) = small_trace(5);
        t.calibrate_to_mean(2.366);
        assert!((t.mean_ms() - 2.366).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_trace_has_queries_of_death() {
        // Full-size dataset: verify the heavy tail exists (some queries
        // ≫ mean) without asserting exact paper numbers.
        let d = Dataset::generate(DatasetConfig::default());
        let t = Trace::generate(
            &d,
            WorkloadConfig {
                num_queries: 4_000, // 10% of paper volume for test speed
                ..WorkloadConfig::default()
            },
        );
        let mean = t.mean_ms();
        assert!(t.count_above(mean * 20.0) > 0, "no queries of death");
        // Over 90% of queries are fast (below 4x mean).
        let fast = t.costs_ms.iter().filter(|&&c| c < 4.0 * mean).count();
        assert!(fast as f64 / t.costs_ms.len() as f64 > 0.9);
    }
}
