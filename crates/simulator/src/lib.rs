//! Discrete-event simulator for replicated request/response clusters
//! with reissue (hedging) support.
//!
//! This is the substrate behind §5 of *Optimal Reissue Policies for
//! Reducing Tail Latency* and the stand-in for its §6 testbed: an
//! open-loop client population sends queries to a cluster of
//! single-worker servers; a [`reissue_core::ReissuePolicy`] decides
//! whether/when each query is hedged with a duplicate request.
//!
//! Components, each matching a knob the paper varies:
//!
//! * [`ArrivalProcess`] — open-loop Poisson (the paper's client
//!   emulation) or deterministic arrivals;
//! * [`Balancer`] — `Random`, `MinOfTwo`, `MinOfAll` (Figure 5b);
//! * [`Discipline`] — `Fifo`, `PrioritizedFifo`, `PrioritizedLifo`
//!   (Figure 5c) plus `RoundRobin` connection scheduling (the Redis
//!   service model of §6.2);
//! * [`ServiceModel`] — iid, correlated (`Y = r·x + Z`, §5.1) or
//!   trace-driven (measured engine costs, §6) service times;
//! * [`simulate`] — the event loop, producing a [`SimResult`] with
//!   per-query records, measured utilization and reissue rate.
//!
//! The simulator is fully deterministic given a seed: every stochastic
//! component draws from its own split RNG stream, so changing one knob
//! (e.g. the policy) leaves the others' draws paired across runs.
//!
//! # Example
//!
//! ```
//! use reissue_core::ReissuePolicy;
//! use simulator::{
//!     simulate, ArrivalProcess, Balancer, ClusterConfig, CorrelatedService,
//!     Discipline, RunConfig,
//! };
//! use distributions::Pareto;
//!
//! let cluster = ClusterConfig {
//!     servers: 10,
//!     discipline: Discipline::Fifo,
//!     balancer: Balancer::Random,
//!     ..ClusterConfig::default()
//! };
//! let mut service = CorrelatedService::new(Pareto::paper_default(), 0.5);
//! // 30% utilization over 10 servers with mean service 22.0.
//! let run = RunConfig {
//!     queries: 5_000,
//!     warmup: 500,
//!     seed: 1,
//!     arrival: ArrivalProcess::poisson_for_utilization(0.3, 10, 22.0),
//! };
//! let result = simulate(&cluster, &run, &mut service, &ReissuePolicy::single_r(30.0, 0.5));
//! println!("P95 = {:.1}, reissue rate = {:.3}", result.quantile(0.95), result.reissue_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balancer;
mod cluster;
mod discipline;
mod events;
mod result;
mod service;

pub use balancer::Balancer;
pub use cluster::{
    simulate, ArrivalProcess, ClusterConfig, Interference, ReissueRouting, RunConfig,
};
pub use discipline::Discipline;
pub use result::{QueryRecord, SimResult};
pub use service::{CorrelatedService, IidService, ServiceModel, TraceService};
