//! Server queue disciplines (Figure 5c and the Redis model of §6.2).
//!
//! The [`Discipline`] type and the [`WaitQueue`] implementation now
//! live in [`reissue_core::discipline`], shared with the real TCP
//! server (`hedge::TcpServer`) so the simulator and the serving path
//! schedule with identical semantics. This module keeps the
//! simulator-facing re-export and adapts the simulator's
//! [`QueuedRequest`] to the shared [`QueueItem`] trait (its estimated
//! cost is the exact service time — the simulator is clairvoyant,
//! where the server only has `Backend::estimate_cost`).

pub use reissue_core::discipline::Discipline;
use reissue_core::discipline::QueueItem;

/// A queued request, as seen by the discipline.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QueuedRequest {
    pub query: usize,
    pub is_reissue: bool,
    pub service: f64,
    pub enqueued_at: f64,
    /// Connection id for round-robin scheduling.
    pub connection: usize,
}

impl QueueItem for QueuedRequest {
    fn cost(&self) -> f64 {
        self.service
    }
    fn enqueued_at(&self) -> f64 {
        self.enqueued_at
    }
    fn is_reissue(&self) -> bool {
        self.is_reissue
    }
    fn connection(&self) -> usize {
        self.connection
    }
}

/// A server's wait queue under a given [`Discipline`].
pub(crate) type WaitQueue = reissue_core::discipline::WaitQueue<QueuedRequest>;

#[cfg(test)]
mod tests {
    use super::*;

    fn req(query: usize, is_reissue: bool, connection: usize) -> QueuedRequest {
        QueuedRequest {
            query,
            is_reissue,
            service: 1.0,
            enqueued_at: 0.0,
            connection,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = WaitQueue::new(Discipline::Fifo);
        q.push(req(1, false, 0));
        q.push(req(2, true, 0));
        q.push(req(3, false, 0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(0.0).map(|r| r.query)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn prioritized_fifo_serves_primaries_first() {
        let mut q = WaitQueue::new(Discipline::PrioritizedFifo);
        q.push(req(1, true, 0));
        q.push(req(2, false, 0));
        q.push(req(3, true, 0));
        q.push(req(4, false, 0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(0.0).map(|r| r.query)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]); // primaries FIFO, then reissues FIFO
    }

    #[test]
    fn prioritized_lifo_reverses_reissues() {
        let mut q = WaitQueue::new(Discipline::PrioritizedLifo);
        q.push(req(1, true, 0));
        q.push(req(2, true, 0));
        q.push(req(3, false, 0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(0.0).map(|r| r.query)).collect();
        assert_eq!(order, vec![3, 2, 1]); // primary, then reissues LIFO
    }

    #[test]
    fn round_robin_cycles_connections() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 3 });
        // Connection 0 backlogged; 1 and 2 have one request each.
        q.push(req(10, false, 0));
        q.push(req(11, false, 0));
        q.push(req(12, false, 0));
        q.push(req(20, false, 1));
        q.push(req(30, false, 2));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(0.0).map(|r| r.query)).collect();
        // One per connection per turn: 10, 20, 30, then drain 0.
        assert_eq!(order, vec![10, 20, 30, 11, 12]);
    }

    #[test]
    fn round_robin_len_tracks() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 2 });
        assert_eq!(q.len(), 0);
        q.push(req(1, false, 0));
        q.push(req(2, false, 1));
        assert_eq!(q.len(), 2);
        q.pop(0.0);
        assert_eq!(q.len(), 1);
        q.pop(0.0);
        assert!(q.pop(0.0).is_none());
    }

    #[test]
    fn connection_ids_wrap() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 2 });
        q.push(req(1, false, 7)); // 7 % 2 == 1
        q.push(req(2, false, 0));
        // Cursor starts at 0: connection 0 first.
        assert_eq!(q.pop(0.0).unwrap().query, 2);
        assert_eq!(q.pop(0.0).unwrap().query, 1);
    }

    #[test]
    fn zero_connections_means_dynamic_ids() {
        // connections == 0 is no longer rejected: sub-queues are keyed
        // by raw connection id (the TCP server's accept-order ids).
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 0 });
        q.push(req(1, false, 40));
        q.push(req(2, false, 7));
        assert_eq!(q.pop(0.0).unwrap().query, 2);
        assert_eq!(q.pop(0.0).unwrap().query, 1);
    }

    #[test]
    fn cost_priority_serves_cheapest_first() {
        let mut q = WaitQueue::new(Discipline::CostPriority);
        q.push(QueuedRequest {
            query: 1,
            is_reissue: false,
            service: 9.0,
            enqueued_at: 0.0,
            connection: 0,
        });
        q.push(QueuedRequest {
            query: 2,
            is_reissue: false,
            service: 1.0,
            enqueued_at: 1.0,
            connection: 0,
        });
        assert_eq!(q.pop(2.0).unwrap().query, 2);
        assert_eq!(q.pop(2.0).unwrap().query, 1);
    }
}
