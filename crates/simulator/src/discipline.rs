//! Server queue disciplines (Figure 5c and the Redis model of §6.2).

use std::collections::VecDeque;

/// How a server orders waiting requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// One FIFO queue; primaries and reissues are indistinguishable
    /// (the paper's *Baseline FIFO*).
    Fifo,
    /// Two FIFO queues; reissues are served only when no primary waits
    /// (*Prioritized FIFO*).
    PrioritizedFifo,
    /// Like [`Discipline::PrioritizedFifo`] but the reissue queue is
    /// served LIFO (*Prioritized LIFO*).
    PrioritizedLifo,
    /// Requests are hashed onto `connections` per-server client
    /// connections and served round-robin, one request per non-empty
    /// connection per turn — Redis's event-loop behaviour that lets a
    /// single "query of death" delay every other connection's requests
    /// by a full service time each round (§6.2).
    RoundRobin {
        /// Number of client connections multiplexed onto the server.
        connections: usize,
    },
}

/// A queued request, as seen by the discipline.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QueuedRequest {
    pub query: usize,
    pub is_reissue: bool,
    pub service: f64,
    pub enqueued_at: f64,
    /// Connection id for round-robin scheduling.
    pub connection: usize,
}

/// A server's wait queue under a given [`Discipline`].
#[derive(Clone, Debug)]
pub(crate) enum WaitQueue {
    Fifo(VecDeque<QueuedRequest>),
    Prioritized {
        primary: VecDeque<QueuedRequest>,
        reissue: VecDeque<QueuedRequest>,
        lifo_reissue: bool,
    },
    RoundRobin {
        conns: Vec<VecDeque<QueuedRequest>>,
        cursor: usize,
        len: usize,
    },
}

impl WaitQueue {
    pub(crate) fn new(discipline: Discipline) -> Self {
        match discipline {
            Discipline::Fifo => WaitQueue::Fifo(VecDeque::new()),
            Discipline::PrioritizedFifo => WaitQueue::Prioritized {
                primary: VecDeque::new(),
                reissue: VecDeque::new(),
                lifo_reissue: false,
            },
            Discipline::PrioritizedLifo => WaitQueue::Prioritized {
                primary: VecDeque::new(),
                reissue: VecDeque::new(),
                lifo_reissue: true,
            },
            Discipline::RoundRobin { connections } => {
                assert!(connections > 0, "round-robin needs ≥ 1 connection");
                WaitQueue::RoundRobin {
                    conns: vec![VecDeque::new(); connections],
                    cursor: 0,
                    len: 0,
                }
            }
        }
    }

    pub(crate) fn push(&mut self, req: QueuedRequest) {
        match self {
            WaitQueue::Fifo(q) => q.push_back(req),
            WaitQueue::Prioritized {
                primary, reissue, ..
            } => {
                if req.is_reissue {
                    reissue.push_back(req);
                } else {
                    primary.push_back(req);
                }
            }
            WaitQueue::RoundRobin { conns, len, .. } => {
                let c = req.connection % conns.len();
                conns[c].push_back(req);
                *len += 1;
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedRequest> {
        match self {
            WaitQueue::Fifo(q) => q.pop_front(),
            WaitQueue::Prioritized {
                primary,
                reissue,
                lifo_reissue,
            } => primary.pop_front().or_else(|| {
                if *lifo_reissue {
                    reissue.pop_back()
                } else {
                    reissue.pop_front()
                }
            }),
            WaitQueue::RoundRobin { conns, cursor, len } => {
                if *len == 0 {
                    return None;
                }
                // Advance to the next non-empty connection, continuing
                // from where the last turn left off.
                for _ in 0..conns.len() {
                    let c = *cursor;
                    *cursor = (*cursor + 1) % conns.len();
                    if let Some(req) = conns[c].pop_front() {
                        *len -= 1;
                        return Some(req);
                    }
                }
                unreachable!("len > 0 but every connection empty");
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            WaitQueue::Fifo(q) => q.len(),
            WaitQueue::Prioritized {
                primary, reissue, ..
            } => primary.len() + reissue.len(),
            WaitQueue::RoundRobin { len, .. } => *len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(query: usize, is_reissue: bool, connection: usize) -> QueuedRequest {
        QueuedRequest {
            query,
            is_reissue,
            service: 1.0,
            enqueued_at: 0.0,
            connection,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = WaitQueue::new(Discipline::Fifo);
        q.push(req(1, false, 0));
        q.push(req(2, true, 0));
        q.push(req(3, false, 0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|r| r.query)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn prioritized_fifo_serves_primaries_first() {
        let mut q = WaitQueue::new(Discipline::PrioritizedFifo);
        q.push(req(1, true, 0));
        q.push(req(2, false, 0));
        q.push(req(3, true, 0));
        q.push(req(4, false, 0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|r| r.query)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]); // primaries FIFO, then reissues FIFO
    }

    #[test]
    fn prioritized_lifo_reverses_reissues() {
        let mut q = WaitQueue::new(Discipline::PrioritizedLifo);
        q.push(req(1, true, 0));
        q.push(req(2, true, 0));
        q.push(req(3, false, 0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|r| r.query)).collect();
        assert_eq!(order, vec![3, 2, 1]); // primary, then reissues LIFO
    }

    #[test]
    fn round_robin_cycles_connections() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 3 });
        // Connection 0 backlogged; 1 and 2 have one request each.
        q.push(req(10, false, 0));
        q.push(req(11, false, 0));
        q.push(req(12, false, 0));
        q.push(req(20, false, 1));
        q.push(req(30, false, 2));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|r| r.query)).collect();
        // One per connection per turn: 10, 20, 30, then drain 0.
        assert_eq!(order, vec![10, 20, 30, 11, 12]);
    }

    #[test]
    fn round_robin_len_tracks() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 2 });
        assert_eq!(q.len(), 0);
        q.push(req(1, false, 0));
        q.push(req(2, false, 1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.pop().is_none());
    }

    #[test]
    fn connection_ids_wrap() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 2 });
        q.push(req(1, false, 7)); // 7 % 2 == 1
        q.push(req(2, false, 0));
        // Cursor starts at 0: connection 0 first.
        assert_eq!(q.pop().unwrap().query, 2);
        assert_eq!(q.pop().unwrap().query, 1);
    }

    #[test]
    #[should_panic(expected = "connection")]
    fn zero_connections_panics() {
        let _ = WaitQueue::new(Discipline::RoundRobin { connections: 0 });
    }
}
