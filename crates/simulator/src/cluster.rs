//! The discrete-event simulation loop.

use crate::balancer::Balancer;
use crate::discipline::{Discipline, QueuedRequest, WaitQueue};
use crate::events::{Event, EventQueue};
use crate::result::{QueryRecord, SimResult};
use crate::service::ServiceModel;
use distributions::rng::stream;
use rand::rngs::SmallRng;
use rand::Rng;
use reissue_core::policy::ReissuePolicy;

/// How reissue requests are routed relative to the primary's server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReissueRouting {
    /// Route through the load balancer like any request (the paper's
    /// simulation model: a uniformly random server).
    Any,
    /// Route through the load balancer but never to the server that
    /// holds the primary — the classic "hedge to a different replica".
    AvoidPrimary,
}

/// Background interference on servers: each server independently
/// experiences "stalls" — bursts of non-query work (compaction, GC,
/// co-located batch jobs, page-cache misses) that occupy the worker
/// like a request would. The paper's introduction names exactly this
/// ("background tasks on servers can lead to temporary shortages in
/// CPU cycles…") as a dominant, *server-local* source of tail latency;
/// it is what makes hedging to a different replica escape-worthy even
/// when the duplicated computation itself costs the same.
///
/// Stalls arrive per-server as a Poisson process with mean spacing
/// `mean_interval` and exponentially distributed durations with mean
/// `mean_duration`; they queue like ordinary requests (the server
/// finishes current work, then stalls).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interference {
    /// Mean time between stalls per server.
    pub mean_interval: f64,
    /// Mean stall duration.
    pub mean_duration: f64,
}

impl Interference {
    /// Fraction of server capacity consumed by stalls.
    pub fn utilization(&self) -> f64 {
        self.mean_duration / (self.mean_interval + self.mean_duration)
    }
}

/// Cluster topology and scheduling configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of single-worker servers; `0` means an infinite-server
    /// cluster (no queueing — the paper's Independent/Correlated
    /// workloads).
    pub servers: usize,
    /// Queue discipline at each server.
    pub discipline: Discipline,
    /// Load-balancing strategy.
    pub balancer: Balancer,
    /// Reissue routing rule.
    pub reissue_routing: ReissueRouting,
    /// If true, requests whose query already completed are dropped when
    /// they reach the head of a queue (lazy in-queue cancellation).
    /// The paper does *not* cancel — copies run to completion — so this
    /// defaults to `false`; it exists for the ablation benches.
    pub cancel_queued: bool,
    /// Optional per-server background interference.
    pub interference: Option<Interference>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 10,
            discipline: Discipline::Fifo,
            balancer: Balancer::Random,
            reissue_routing: ReissueRouting::Any,
            cancel_queued: false,
            interference: None,
        }
    }
}

/// Sentinel query id marking an interference stall "request".
const STALL: usize = usize::MAX;

/// Arrival process of the open-loop client population.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals with the given rate (queries per unit time).
    Poisson {
        /// Mean arrival rate λ.
        rate: f64,
    },
    /// Deterministic arrivals with a fixed interval.
    Uniform {
        /// Inter-arrival interval.
        interval: f64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals sized so that `servers` servers with mean
    /// service time `mean_service` run at `utilization` (λ = u·m/E\[S\]).
    ///
    /// # Panics
    /// Panics unless `0 < utilization < 1`, `servers > 0` and
    /// `mean_service > 0`.
    pub fn poisson_for_utilization(utilization: f64, servers: usize, mean_service: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization < 1.0,
            "utilization must be in (0,1)"
        );
        assert!(servers > 0 && mean_service > 0.0);
        ArrivalProcess::Poisson {
            rate: utilization * servers as f64 / mean_service,
        }
    }

    fn next_interval(&self, rng: &mut SmallRng) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() / rate
            }
            ArrivalProcess::Uniform { interval } => *interval,
        }
    }
}

/// Run-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Total queries to inject.
    pub queries: usize,
    /// Leading queries excluded from metrics (system ramp-up).
    pub warmup: usize,
    /// Root seed; all internal streams derive from it.
    pub seed: u64,
    /// Arrival process.
    pub arrival: ArrivalProcess,
}

impl RunConfig {
    /// A convenient config: `queries` queries, 10% warmup, seed 0 and a
    /// placeholder arrival process that the workload layer overrides.
    pub fn new(queries: usize) -> Self {
        RunConfig {
            queries,
            warmup: queries / 10,
            seed: 0,
            arrival: ArrivalProcess::Poisson { rate: 1.0 },
        }
    }
}

/// Per-query simulation state.
#[derive(Clone, Debug)]
struct QueryState {
    arrival: f64,
    primary_service: f64,
    primary_server: usize,
    completed: bool,
    latency: f64,
    primary_response: f64,
    primary_wait: f64,
    reissued: bool,
    reissue_dispatch: f64,
    reissue_response: f64,
    reissue_server: usize,
}

struct Server {
    queue: WaitQueue,
    /// The request in service, if any, with its start time.
    in_service: Option<(QueuedRequest, f64)>,
    busy_time: f64,
}

impl Server {
    fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }
}

/// Runs one simulation: `run.queries` queries arrive per `run.arrival`,
/// are served by `cluster`, and are hedged per `policy` with service
/// times from `service`. Deterministic given `run.seed`.
///
/// The run drains fully: arrivals stop after the last query but every
/// outstanding request completes, so the primary-response log is
/// complete (no censoring).
///
/// # Panics
/// Panics on zero queries or (for finite clusters) a single server with
/// [`ReissueRouting::AvoidPrimary`].
pub fn simulate(
    cluster: &ClusterConfig,
    run: &RunConfig,
    service: &mut dyn ServiceModel,
    policy: &ReissuePolicy,
) -> SimResult {
    assert!(run.queries > 0, "need at least one query");
    let infinite = cluster.servers == 0;
    if !infinite && cluster.reissue_routing == ReissueRouting::AvoidPrimary {
        assert!(
            cluster.servers > 1,
            "AvoidPrimary needs at least two servers"
        );
    }

    // Independent randomness streams (see distributions::rng docs).
    let mut rng_arrival = stream(run.seed, 0xA);
    let mut rng_service = stream(run.seed, 0xB);
    let mut rng_balance = stream(run.seed, 0xC);
    let mut rng_policy = stream(run.seed, 0xD);
    let mut rng_conn = stream(run.seed, 0xE);
    let mut rng_stall = stream(run.seed, 0xF);

    let exp_draw = |mean: f64, rng: &mut rand::rngs::SmallRng| -> f64 {
        -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() * mean
    };

    let mut events = EventQueue::new();
    let mut servers: Vec<Server> = (0..cluster.servers)
        .map(|_| Server {
            queue: WaitQueue::new(cluster.discipline),
            in_service: None,
            busy_time: 0.0,
        })
        .collect();
    let mut queries: Vec<QueryState> = Vec::with_capacity(run.queries);

    // Simulated clients are pre-assigned to a fixed connection ring;
    // `connections == 0` (the TCP server's dynamic-id mode) degrades
    // to a single shared connection here.
    let connections = match cluster.discipline {
        Discipline::RoundRobin { connections } => connections.max(1),
        _ => 1,
    };

    events.push(0.0, Event::Arrival { query: 0 });
    if let Some(intf) = cluster.interference {
        assert!(
            intf.mean_interval > 0.0 && intf.mean_duration > 0.0,
            "interference parameters must be positive"
        );
        for server in 0..cluster.servers {
            events.push(
                exp_draw(intf.mean_interval, &mut rng_stall),
                Event::StallArrival { server },
            );
        }
    }
    // Stalls stop being scheduled once all queries have arrived; the
    // arrival horizon is discovered as the run unfolds.
    let mut arrivals_done = false;
    let mut makespan = 0.0f64;

    while let Some((now, event)) = events.pop() {
        // Makespan = last *completion* time; arrival or timer events
        // that fire later (e.g. a no-op stall reschedule after the last
        // query drained) must not stretch the utilization denominator.
        if matches!(
            event,
            Event::Completion { .. } | Event::DirectCompletion { .. }
        ) {
            makespan = makespan.max(now);
        }
        match event {
            Event::Arrival { query } => {
                // Create the query and its reissue schedule.
                let primary_service = service.primary(query, &mut rng_service).max(1e-12);
                let schedule: Vec<f64> = policy
                    .sample_schedule(&mut rng_policy)
                    .iter()
                    .map(|d| now + d)
                    .collect();
                let mut state = QueryState {
                    arrival: now,
                    primary_service,
                    primary_server: usize::MAX,
                    completed: false,
                    latency: f64::NAN,
                    primary_response: f64::NAN,
                    primary_wait: 0.0,
                    reissued: false,
                    reissue_dispatch: f64::NAN,
                    reissue_response: f64::NAN,
                    reissue_server: usize::MAX,
                };

                // Dispatch the primary.
                if infinite {
                    events.push(
                        now + primary_service,
                        Event::DirectCompletion {
                            query,
                            is_reissue: false,
                            dispatched: now,
                        },
                    );
                } else {
                    let backlog: Vec<usize> = servers.iter().map(Server::backlog).collect();
                    let s = cluster
                        .balancer
                        .choose(&backlog, usize::MAX, &mut rng_balance);
                    state.primary_server = s;
                    let req = QueuedRequest {
                        query,
                        is_reissue: false,
                        service: primary_service,
                        enqueued_at: now,
                        connection: rng_conn.gen_range(0..connections),
                    };
                    offer(&mut servers[s], s, req, now, &mut events);
                }

                // Schedule reissue timers (coin already flipped).
                for (stage, &at) in schedule.iter().enumerate() {
                    events.push(at, Event::ReissueFire { query, stage });
                }
                queries.push(state);

                // Next arrival.
                if query + 1 < run.queries {
                    let at = now + run.arrival.next_interval(&mut rng_arrival);
                    events.push(at, Event::Arrival { query: query + 1 });
                } else {
                    arrivals_done = true;
                }
            }

            Event::ReissueFire { query, stage } => {
                let state = &mut queries[query];
                // The paper's client checks completion *before sending*
                // (§6.1); completed queries consume no budget. Also only
                // the first firing stage of a MultipleR policy that has
                // already reissued proceeds per its own coin — later
                // stages still fire independently.
                if state.completed {
                    continue;
                }
                let _ = stage;
                let reissue_service = service
                    .reissue(query, state.primary_service, &mut rng_service)
                    .max(1e-12);
                state.reissued = true;
                // For MultipleR, keep the *first* dispatch for reporting.
                if !state.reissue_dispatch.is_finite() {
                    state.reissue_dispatch = now;
                }
                if infinite {
                    events.push(
                        now + reissue_service,
                        Event::DirectCompletion {
                            query,
                            is_reissue: true,
                            dispatched: now,
                        },
                    );
                } else {
                    let backlog: Vec<usize> = servers.iter().map(Server::backlog).collect();
                    let exclude = match cluster.reissue_routing {
                        ReissueRouting::Any => usize::MAX,
                        ReissueRouting::AvoidPrimary => state.primary_server,
                    };
                    let s = cluster.balancer.choose(&backlog, exclude, &mut rng_balance);
                    state.reissue_server = s;
                    let req = QueuedRequest {
                        query,
                        is_reissue: true,
                        service: reissue_service,
                        enqueued_at: now,
                        connection: rng_conn.gen_range(0..connections),
                    };
                    offer(&mut servers[s], s, req, now, &mut events);
                }
            }

            Event::StallArrival { server } => {
                let intf = cluster.interference.expect("stall without interference");
                if !arrivals_done {
                    let req = QueuedRequest {
                        query: STALL,
                        is_reissue: false,
                        service: exp_draw(intf.mean_duration, &mut rng_stall).max(1e-12),
                        enqueued_at: now,
                        connection: rng_conn.gen_range(0..connections),
                    };
                    offer(&mut servers[server], server, req, now, &mut events);
                    events.push(
                        now + exp_draw(intf.mean_interval, &mut rng_stall),
                        Event::StallArrival { server },
                    );
                }
            }

            Event::Completion { server } => {
                let (req, started) = servers[server]
                    .in_service
                    .take()
                    .expect("completion without in-service request");
                servers[server].busy_time += now - started;
                if req.query != STALL {
                    record_response(&mut queries[req.query], &req, now);
                }

                // Start the next request, lazily dropping cancelled ones.
                while let Some(next) = servers[server].queue.pop(now) {
                    if cluster.cancel_queued && next.query != STALL && queries[next.query].completed
                    {
                        continue; // dropped without service
                    }
                    if next.query != STALL && !next.is_reissue {
                        queries[next.query].primary_wait = now - next.enqueued_at;
                    }
                    servers[server].in_service = Some((next, now));
                    events.push(now + next.service, Event::Completion { server });
                    break;
                }
            }

            Event::DirectCompletion {
                query,
                is_reissue,
                dispatched,
            } => {
                let state = &mut queries[query];
                let fake = QueuedRequest {
                    query,
                    is_reissue,
                    service: 0.0,
                    enqueued_at: dispatched,
                    connection: 0,
                };
                record_response(state, &fake, now);
            }
        }
    }

    let records: Vec<QueryRecord> = queries
        .iter()
        .map(|q| QueryRecord {
            arrival: q.arrival,
            primary_response: q.primary_response,
            reissued: q.reissued,
            reissue_dispatch_delay: q.reissue_dispatch - q.arrival,
            reissue_response: q.reissue_response,
            latency: q.latency,
            primary_wait: q.primary_wait,
            primary_server: q.primary_server,
            reissue_server: q.reissue_server,
        })
        .collect();

    let server_utilization = servers
        .iter()
        .map(|s| {
            debug_assert!(s.in_service.is_none(), "run did not drain");
            if makespan > 0.0 {
                s.busy_time / makespan
            } else {
                0.0
            }
        })
        .collect();

    SimResult {
        records,
        warmup: run.warmup,
        server_utilization,
        makespan,
    }
}

/// Places `req` on `server`: starts service immediately if idle,
/// otherwise enqueues.
fn offer(
    server: &mut Server,
    server_idx: usize,
    req: QueuedRequest,
    now: f64,
    events: &mut EventQueue,
) {
    if server.in_service.is_none() {
        server.in_service = Some((req, now));
        events.push(now + req.service, Event::Completion { server: server_idx });
    } else {
        server.queue.push(req);
    }
}

/// Books a finished request's response into its query state.
fn record_response(state: &mut QueryState, req: &QueuedRequest, now: f64) {
    if req.is_reissue {
        // Response measured from this copy's own dispatch; MultipleR
        // keeps the fastest reissue.
        let resp = now - req.enqueued_at;
        if !state.reissue_response.is_finite() || resp < state.reissue_response {
            state.reissue_response = resp;
        }
    } else {
        state.primary_response = now - state.arrival;
    }
    if !state.completed {
        state.completed = true;
        state.latency = now - state.arrival;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CorrelatedService, IidService, TraceService};
    use distributions::{Deterministic, Exponential};
    use reissue_core::metrics::quantile;

    fn fifo_cluster(servers: usize) -> ClusterConfig {
        ClusterConfig {
            servers,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn all_queries_complete() {
        let mut service = IidService::new(Exponential::new(1.0));
        let run = RunConfig {
            queries: 2_000,
            warmup: 0,
            seed: 1,
            arrival: ArrivalProcess::poisson_for_utilization(0.5, 4, 1.0),
        };
        let r = simulate(
            &fifo_cluster(4),
            &run,
            &mut service,
            &ReissuePolicy::single_r(1.0, 0.5),
        );
        assert_eq!(r.records.len(), 2_000);
        assert!(r.records.iter().all(|q| q.latency.is_finite()));
        assert!(r.records.iter().all(|q| q.primary_response.is_finite()));
        assert!(r
            .records
            .iter()
            .all(|q| q.latency <= q.primary_response + 1e-12));
    }

    #[test]
    fn infinite_servers_have_no_queueing() {
        let mut service = IidService::new(Deterministic::new(3.0));
        let run = RunConfig {
            queries: 500,
            warmup: 0,
            seed: 2,
            arrival: ArrivalProcess::Poisson { rate: 100.0 }, // would melt a finite cluster
        };
        let r = simulate(
            &ClusterConfig {
                servers: 0,
                ..ClusterConfig::default()
            },
            &run,
            &mut service,
            &ReissuePolicy::None,
        );
        for q in &r.records {
            assert!((q.latency - 3.0).abs() < 1e-9);
            assert_eq!(q.primary_wait, 0.0);
        }
        assert!(r.server_utilization.is_empty());
    }

    #[test]
    fn utilization_matches_target() {
        let mut service = IidService::new(Exponential::new(0.5)); // mean 2
        let run = RunConfig {
            queries: 40_000,
            warmup: 0,
            seed: 3,
            arrival: ArrivalProcess::poisson_for_utilization(0.4, 8, 2.0),
        };
        let r = simulate(&fifo_cluster(8), &run, &mut service, &ReissuePolicy::None);
        let u = r.utilization();
        assert!((u - 0.4).abs() < 0.03, "utilization={u}");
    }

    #[test]
    fn reissue_rate_matches_budget_formula() {
        // Exp(1) service, no queueing (many servers, light load):
        // reissue rate should approximate q * Pr(X > d).
        let mut service = IidService::new(Exponential::new(1.0));
        let run = RunConfig {
            queries: 30_000,
            warmup: 0,
            seed: 4,
            arrival: ArrivalProcess::poisson_for_utilization(0.05, 10, 1.0),
        };
        let (d, q) = (1.0, 0.5);
        let r = simulate(
            &fifo_cluster(10),
            &run,
            &mut service,
            &ReissuePolicy::single_r(d, q),
        );
        // At 5% utilization queueing is negligible: Pr(X > 1) ≈ e^-1.
        let want = q * (-1.0f64).exp();
        let got = r.reissue_rate();
        assert!((got - want).abs() < 0.02, "want≈{want} got={got}");
    }

    #[test]
    fn single_d_reissues_all_outstanding() {
        let mut service = IidService::new(Deterministic::new(2.0));
        let run = RunConfig {
            queries: 1_000,
            warmup: 0,
            seed: 5,
            arrival: ArrivalProcess::Uniform { interval: 10.0 }, // idle cluster
        };
        // d=1 < service=2: every query outstanding at d → all reissue.
        let r = simulate(
            &fifo_cluster(4),
            &run,
            &mut service,
            &ReissuePolicy::single_d(1.0),
        );
        assert!((r.reissue_rate() - 1.0).abs() < 1e-12);
        // d=3 > service=2: nothing outstanding → no reissues.
        let mut service = IidService::new(Deterministic::new(2.0));
        let r = simulate(
            &fifo_cluster(4),
            &run,
            &mut service,
            &ReissuePolicy::single_d(3.0),
        );
        assert_eq!(r.reissue_rate(), 0.0);
    }

    #[test]
    fn hedging_cuts_tail_on_queueing_workload() {
        let mut service = CorrelatedService::new(Exponential::new(0.1), 0.0);
        let run = RunConfig {
            queries: 30_000,
            warmup: 3_000,
            seed: 6,
            arrival: ArrivalProcess::poisson_for_utilization(0.3, 10, 10.0),
        };
        let cluster = fifo_cluster(10);
        let base = simulate(&cluster, &run, &mut service, &ReissuePolicy::None);
        let mut service2 = CorrelatedService::new(Exponential::new(0.1), 0.0);
        let hedged = simulate(
            &cluster,
            &run,
            &mut service2,
            &ReissuePolicy::single_r(10.0, 0.8),
        );
        let (b, h) = (base.quantile(0.95), hedged.quantile(0.95));
        assert!(h < b, "hedged {h} >= baseline {b}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = RunConfig {
            queries: 3_000,
            warmup: 0,
            seed: 7,
            arrival: ArrivalProcess::poisson_for_utilization(0.5, 5, 1.0),
        };
        let go = || {
            let mut service = IidService::new(Exponential::new(1.0));
            simulate(
                &fifo_cluster(5),
                &run,
                &mut service,
                &ReissuePolicy::single_r(0.5, 0.3),
            )
        };
        let (a, b) = (go(), go());
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.primary_server, y.primary_server);
        }
    }

    #[test]
    fn avoid_primary_routing_never_collides() {
        let mut service = IidService::new(Exponential::new(1.0));
        let run = RunConfig {
            queries: 5_000,
            warmup: 0,
            seed: 8,
            arrival: ArrivalProcess::poisson_for_utilization(0.6, 4, 1.0),
        };
        let r = simulate(
            &ClusterConfig {
                servers: 4,
                reissue_routing: ReissueRouting::AvoidPrimary,
                ..ClusterConfig::default()
            },
            &run,
            &mut service,
            &ReissuePolicy::single_r(0.1, 1.0),
        );
        for q in r.records.iter().filter(|q| q.reissued) {
            assert_ne!(q.primary_server, q.reissue_server);
        }
    }

    #[test]
    fn trace_service_round_robin_hol_blocking() {
        // One huge request (query of death) in a round-robin server
        // delays small requests from other connections; FIFO would too,
        // but round-robin keeps hurting across rounds. Just assert the
        // sim runs and the big query inflates the tail.
        let mut costs = vec![1.0; 200];
        costs[50] = 500.0;
        let mut service = TraceService::new(costs, 0.0);
        let run = RunConfig {
            queries: 200,
            warmup: 0,
            seed: 9,
            arrival: ArrivalProcess::Poisson { rate: 0.5 },
        };
        let r = simulate(
            &ClusterConfig {
                servers: 2,
                discipline: Discipline::RoundRobin { connections: 8 },
                ..ClusterConfig::default()
            },
            &run,
            &mut service,
            &ReissuePolicy::None,
        );
        let lat = r.latencies();
        assert!(quantile(&lat, 1.0) >= 500.0);
        assert_eq!(r.records.len(), 200);
    }

    #[test]
    fn cancel_queued_reduces_wasted_work() {
        let mk_run = || RunConfig {
            queries: 20_000,
            warmup: 2_000,
            seed: 10,
            arrival: ArrivalProcess::poisson_for_utilization(0.5, 6, 1.0),
        };
        let policy = ReissuePolicy::single_r(0.0, 1.0); // hedge everything
        let mut s1 = IidService::new(Exponential::new(1.0));
        let with_cancel = simulate(
            &ClusterConfig {
                servers: 6,
                cancel_queued: true,
                ..ClusterConfig::default()
            },
            &mk_run(),
            &mut s1,
            &policy,
        );
        let mut s2 = IidService::new(Exponential::new(1.0));
        let without = simulate(&fifo_cluster(6), &mk_run(), &mut s2, &policy);
        // Cancellation strictly reduces executed work → lower utilization.
        assert!(
            with_cancel.utilization() < without.utilization(),
            "cancel {} !< plain {}",
            with_cancel.utilization(),
            without.utilization()
        );
    }

    #[test]
    fn multiple_r_records_earliest_reissue() {
        let mut service = IidService::new(Deterministic::new(5.0));
        let run = RunConfig {
            queries: 100,
            warmup: 0,
            seed: 11,
            arrival: ArrivalProcess::Uniform { interval: 100.0 },
        };
        let policy = ReissuePolicy::multiple_r(vec![(1.0, 1.0), (2.0, 1.0)]);
        let r = simulate(&fifo_cluster(8), &run, &mut service, &policy);
        for q in &r.records {
            assert!(q.reissued);
            // Query latency = 5 (primary wins; reissues land at 6 and 7).
            assert!((q.latency - 5.0).abs() < 1e-9);
            // First reissue dispatched at delay 1.
            assert!((q.reissue_dispatch_delay - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn interference_inflates_tail_and_is_escapable() {
        let mk_run = |seed| RunConfig {
            queries: 20_000,
            warmup: 2_000,
            seed,
            arrival: ArrivalProcess::poisson_for_utilization(0.4, 10, 1.0),
        };
        let calm = ClusterConfig {
            servers: 10,
            ..ClusterConfig::default()
        };
        let stormy = ClusterConfig {
            servers: 10,
            interference: Some(Interference {
                mean_interval: 500.0,
                mean_duration: 25.0, // ~5% extra load in rare big chunks
            }),
            ..ClusterConfig::default()
        };
        let mut s = IidService::new(Exponential::new(1.0));
        let base_calm = simulate(&calm, &mk_run(1), &mut s, &ReissuePolicy::None);
        let mut s = IidService::new(Exponential::new(1.0));
        let base_storm = simulate(&stormy, &mk_run(1), &mut s, &ReissuePolicy::None);
        // Stalls push the tail out.
        assert!(
            base_storm.quantile(0.99) > 1.5 * base_calm.quantile(0.99),
            "storm {} !> 1.5x calm {}",
            base_storm.quantile(0.99),
            base_calm.quantile(0.99)
        );
        // ...and hedging claws a good part back (escape to another server).
        let mut s = IidService::new(Exponential::new(1.0));
        let hedged = simulate(
            &stormy,
            &mk_run(1),
            &mut s,
            &ReissuePolicy::single_r(5.0, 1.0),
        );
        assert!(
            hedged.quantile(0.99) < base_storm.quantile(0.99),
            "hedged {} !< storm {}",
            hedged.quantile(0.99),
            base_storm.quantile(0.99)
        );
    }

    #[test]
    fn interference_utilization_accounting() {
        let i = Interference {
            mean_interval: 900.0,
            mean_duration: 100.0,
        };
        assert!((i.utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_queries_panics() {
        let mut service = IidService::new(Exponential::new(1.0));
        let run = RunConfig {
            queries: 0,
            warmup: 0,
            seed: 0,
            arrival: ArrivalProcess::Poisson { rate: 1.0 },
        };
        let _ = simulate(&fifo_cluster(2), &run, &mut service, &ReissuePolicy::None);
    }
}
