//! Load-balancing strategies (Figure 5b).

use rand::rngs::SmallRng;
use rand::Rng;

/// How dispatched requests choose a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Balancer {
    /// Pick a server uniformly at random (the paper's default, §5.1).
    Random,
    /// Pick two random servers, use the one with the shorter queue
    /// (*Min-of-Two*, the power-of-two-choices rule).
    MinOfTwo,
    /// Pick the server with the globally shortest queue
    /// (*Min-of-All*, join-the-shortest-queue).
    MinOfAll,
}

impl Balancer {
    /// Chooses a server given per-server backlog (queued + in service).
    ///
    /// `exclude` removes one server from consideration (used to route a
    /// reissue away from its primary's replica); pass `usize::MAX` to
    /// allow all. Ties in queue length break toward the lower index for
    /// `MinOfAll` and toward the first pick for `MinOfTwo`, both
    /// deterministic.
    ///
    /// # Panics
    /// Panics if no server is eligible.
    pub fn choose(&self, backlog: &[usize], exclude: usize, rng: &mut SmallRng) -> usize {
        let n = backlog.len();
        assert!(n > 0, "no servers");
        let eligible = |s: usize| s != exclude;
        assert!(
            n > 1 || exclude == usize::MAX || exclude >= n,
            "cannot exclude the only server"
        );

        let pick_random = |rng: &mut SmallRng| loop {
            let s = rng.gen_range(0..n);
            if eligible(s) {
                return s;
            }
        };

        match self {
            Balancer::Random => pick_random(rng),
            Balancer::MinOfTwo => {
                let a = pick_random(rng);
                let b = pick_random(rng);
                if backlog[b] < backlog[a] {
                    b
                } else {
                    a
                }
            }
            Balancer::MinOfAll => {
                let mut best = usize::MAX;
                for s in 0..n {
                    if eligible(s) && (best == usize::MAX || backlog[s] < backlog[best]) {
                        best = s;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;

    #[test]
    fn random_covers_all_servers() {
        let mut rng = seeded(1);
        let backlog = vec![0usize; 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Balancer::Random.choose(&backlog, usize::MAX, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_respects_exclusion() {
        let mut rng = seeded(2);
        let backlog = vec![0usize; 3];
        for _ in 0..100 {
            assert_ne!(Balancer::Random.choose(&backlog, 1, &mut rng), 1);
        }
    }

    #[test]
    fn min_of_all_picks_shortest() {
        let mut rng = seeded(3);
        let backlog = vec![5, 2, 7, 2];
        // Tie between 1 and 3 breaks low.
        assert_eq!(Balancer::MinOfAll.choose(&backlog, usize::MAX, &mut rng), 1);
        // Excluding 1 moves to 3.
        assert_eq!(Balancer::MinOfAll.choose(&backlog, 1, &mut rng), 3);
    }

    #[test]
    fn min_of_two_prefers_shorter() {
        let mut rng = seeded(4);
        // One empty server among loaded ones: min-of-two should find it
        // much more often than 1/n.
        let backlog = vec![10, 10, 0, 10, 10];
        let hits = (0..1000)
            .filter(|_| Balancer::MinOfTwo.choose(&backlog, usize::MAX, &mut rng) == 2)
            .count();
        // P(either of two picks hits server 2) = 1-(4/5)^2 = 0.36.
        assert!(hits > 250, "hits={hits}");
    }

    #[test]
    #[should_panic(expected = "only server")]
    fn excluding_only_server_panics() {
        let mut rng = seeded(5);
        let _ = Balancer::Random.choose(&[3], 0, &mut rng);
    }
}
