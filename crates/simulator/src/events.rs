//! The simulator's event queue: a binary min-heap over virtual time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed by the simulation loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Event {
    /// Query `query` arrives and dispatches its primary request.
    Arrival { query: usize },
    /// Query `query`'s reissue timer (stage `stage`) fires.
    ReissueFire { query: usize, stage: usize },
    /// The request currently in service on `server` completes.
    Completion { server: usize },
    /// A request completes on the infinite-server cluster;
    /// `dispatched` is the time its request was sent.
    DirectCompletion {
        query: usize,
        is_reissue: bool,
        dispatched: f64,
    },
    /// A background-interference stall begins on `server`.
    StallArrival { server: usize },
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap event queue: events pop in time order, with
/// insertion order breaking ties.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    /// Panics on NaN or negative time (events may not travel backwards
    /// relative to zero; the caller enforces per-event causality).
    pub(crate) fn push(&mut self, time: f64, event: Event) {
        assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub(crate) fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::Arrival { query: 3 });
        q.push(1.0, Event::Arrival { query: 1 });
        q.push(2.0, Event::Arrival { query: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::Arrival { query: 0 });
        q.push(5.0, Event::Completion { server: 1 });
        q.push(5.0, Event::Arrival { query: 2 });
        assert_eq!(q.pop().unwrap().1, Event::Arrival { query: 0 });
        assert_eq!(q.pop().unwrap().1, Event::Completion { server: 1 });
        assert_eq!(q.pop().unwrap().1, Event::Arrival { query: 2 });
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, Event::Arrival { query: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::Arrival { query: 0 });
    }
}
