//! Service-time models: iid, correlated and trace-driven.

use distributions::{CorrelatedPair, Dist};
use rand::rngs::SmallRng;
use rand::Rng;

/// Supplies service times for primary and reissue requests.
///
/// The reissue draw receives the query's primary *service* time so
/// implementations can model the paper's `Y = r·x + Z` correlation
/// (§5.1) or replay the exact same work (engine traces, §6).
pub trait ServiceModel {
    /// Service time of query `idx`'s primary request.
    fn primary(&mut self, idx: usize, rng: &mut SmallRng) -> f64;

    /// Service time of query `idx`'s reissue request, given the primary
    /// service time `primary`.
    fn reissue(&mut self, idx: usize, primary: f64, rng: &mut SmallRng) -> f64;

    /// Mean primary service time, used for utilization targeting.
    fn mean_service(&self) -> f64;
}

/// Primary and reissue service times drawn iid from one distribution —
/// the paper's *Independent* workload.
#[derive(Clone, Debug)]
pub struct IidService<D> {
    dist: D,
}

impl<D: Dist> IidService<D> {
    /// Wraps a distribution.
    pub fn new(dist: D) -> Self {
        IidService { dist }
    }
}

impl<D: Dist> ServiceModel for IidService<D> {
    fn primary(&mut self, _idx: usize, rng: &mut SmallRng) -> f64 {
        self.dist.sample(rng)
    }

    fn reissue(&mut self, _idx: usize, _primary: f64, rng: &mut SmallRng) -> f64 {
        self.dist.sample(rng)
    }

    fn mean_service(&self) -> f64 {
        self.dist.mean()
    }
}

/// Correlated service times `Y = r·x + Z` — the paper's *Correlated*
/// and *Queueing* workloads (§5.1).
#[derive(Clone, Debug)]
pub struct CorrelatedService<D> {
    pair: CorrelatedPair<D>,
    mean: f64,
}

impl<D: Dist> CorrelatedService<D> {
    /// Wraps a base distribution with correlation ratio `r`.
    pub fn new(dist: D, r: f64) -> Self {
        let mean = dist.mean();
        CorrelatedService {
            pair: CorrelatedPair::new(dist, r),
            mean,
        }
    }

    /// The correlation ratio.
    pub fn ratio(&self) -> f64 {
        self.pair.ratio()
    }
}

impl<D: Dist> ServiceModel for CorrelatedService<D> {
    fn primary(&mut self, _idx: usize, rng: &mut SmallRng) -> f64 {
        self.pair.sample_primary(rng)
    }

    fn reissue(&mut self, _idx: usize, primary: f64, rng: &mut SmallRng) -> f64 {
        self.pair.sample_reissue(primary, rng)
    }

    fn mean_service(&self) -> f64 {
        self.mean
    }
}

/// Trace-driven service times: query `idx` costs `costs[idx % len]` and
/// a reissue re-executes the *same operation*, so it costs the same
/// (optionally perturbed by a small uniform jitter modelling cache and
/// scheduling noise). This is how the measured Redis and Lucene query
/// costs enter the cluster simulation (§6).
#[derive(Clone, Debug)]
pub struct TraceService {
    costs: Vec<f64>,
    jitter: f64,
    mean: f64,
}

impl TraceService {
    /// Wraps a cost trace with relative reissue `jitter ∈ [0, 1)`
    /// (reissue cost is `cost · U[1−jitter, 1+jitter]`).
    ///
    /// # Panics
    /// Panics on an empty trace, non-positive costs or jitter ∉ [0, 1).
    pub fn new(costs: Vec<f64>, jitter: f64) -> Self {
        assert!(!costs.is_empty(), "trace must be non-empty");
        assert!(
            costs.iter().all(|&c| c > 0.0 && c.is_finite()),
            "trace costs must be positive and finite"
        );
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        TraceService {
            costs,
            jitter,
            mean,
        }
    }

    /// Number of distinct queries in the trace.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the trace is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }
}

impl ServiceModel for TraceService {
    fn primary(&mut self, idx: usize, _rng: &mut SmallRng) -> f64 {
        self.costs[idx % self.costs.len()]
    }

    fn reissue(&mut self, idx: usize, _primary: f64, rng: &mut SmallRng) -> f64 {
        let base = self.costs[idx % self.costs.len()];
        if self.jitter == 0.0 {
            base
        } else {
            base * (1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0))
        }
    }

    fn mean_service(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;
    use distributions::{Exponential, Pareto};

    #[test]
    fn iid_mean_matches_dist() {
        let m = IidService::new(Exponential::new(0.1));
        assert!((m.mean_service() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn correlated_reissue_includes_rx_term() {
        let mut m = CorrelatedService::new(Pareto::paper_default(), 0.5);
        let mut rng = seeded(1);
        // y = 0.5 * x + z where z >= mode = 2.
        for _ in 0..100 {
            let y = m.reissue(0, 100.0, &mut rng);
            assert!(y >= 50.0 + 2.0);
        }
    }

    #[test]
    fn trace_replays_costs() {
        let mut m = TraceService::new(vec![1.0, 2.0, 3.0], 0.0);
        let mut rng = seeded(2);
        assert_eq!(m.primary(0, &mut rng), 1.0);
        assert_eq!(m.primary(1, &mut rng), 2.0);
        assert_eq!(m.primary(2, &mut rng), 3.0);
        assert_eq!(m.primary(3, &mut rng), 1.0); // wraps
        assert_eq!(m.reissue(1, 2.0, &mut rng), 2.0); // same op, no jitter
        assert!((m.mean_service() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trace_jitter_bounds() {
        let mut m = TraceService::new(vec![100.0], 0.1);
        let mut rng = seeded(3);
        for _ in 0..1000 {
            let y = m.reissue(0, 100.0, &mut rng);
            assert!((90.0..=110.0).contains(&y), "y={y}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_trace_panics() {
        let _ = TraceService::new(vec![], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_cost_panics() {
        let _ = TraceService::new(vec![1.0, 0.0], 0.0);
    }
}
