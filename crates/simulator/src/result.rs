//! Per-query records and aggregate simulation results.

use reissue_core::adaptive::RunSample;

/// Everything observed about one query.
#[derive(Clone, Copy, Debug)]
pub struct QueryRecord {
    /// Arrival (= primary dispatch) time.
    pub arrival: f64,
    /// Primary request's response time (arrival → its own completion),
    /// even if a reissue finished the query first. NaN if the primary
    /// was cancelled in-queue (only with cancellation enabled).
    pub primary_response: f64,
    /// Whether a reissue request was actually sent.
    pub reissued: bool,
    /// Delay (from arrival) at which the reissue was dispatched;
    /// NaN if none.
    pub reissue_dispatch_delay: f64,
    /// Reissue response time measured from its own dispatch; NaN if
    /// none or cancelled.
    pub reissue_response: f64,
    /// Realized query latency: time from arrival until the *first*
    /// response from any copy.
    pub latency: f64,
    /// Queueing delay experienced by the primary request.
    pub primary_wait: f64,
    /// Server that executed the primary.
    pub primary_server: usize,
    /// Server that executed the reissue (`usize::MAX` if none).
    pub reissue_server: usize,
}

/// The outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-query records in arrival order (including warmup).
    pub records: Vec<QueryRecord>,
    /// Number of leading records treated as warmup by the metric
    /// accessors.
    pub warmup: usize,
    /// Measured per-server utilization (busy time / makespan).
    pub server_utilization: Vec<f64>,
    /// Virtual time at which the last event completed.
    pub makespan: f64,
}

impl SimResult {
    /// Records past the warmup prefix.
    pub fn measured(&self) -> &[QueryRecord] {
        &self.records[self.warmup.min(self.records.len())..]
    }

    /// Realized query latencies (post-warmup).
    pub fn latencies(&self) -> Vec<f64> {
        self.measured().iter().map(|r| r.latency).collect()
    }

    /// Primary response times (post-warmup), excluding cancelled ones.
    pub fn primaries(&self) -> Vec<f64> {
        self.measured()
            .iter()
            .map(|r| r.primary_response)
            .filter(|v| v.is_finite())
            .collect()
    }

    /// `(primary, reissue)` response-time pairs of reissued queries
    /// (post-warmup), both finite.
    pub fn pairs(&self) -> Vec<(f64, f64)> {
        self.measured()
            .iter()
            .filter(|r| r.reissued)
            .map(|r| (r.primary_response, r.reissue_response))
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect()
    }

    /// Fraction of post-warmup queries that sent a reissue.
    pub fn reissue_rate(&self) -> f64 {
        let m = self.measured();
        if m.is_empty() {
            return 0.0;
        }
        m.iter().filter(|r| r.reissued).count() as f64 / m.len() as f64
    }

    /// Nearest-rank `p`-quantile of realized latency (post-warmup).
    ///
    /// # Panics
    /// Panics if there are no post-warmup records.
    pub fn quantile(&self, p: f64) -> f64 {
        reissue_core::metrics::quantile(&self.latencies(), p)
    }

    /// Mean measured utilization across servers (0 for the
    /// infinite-server cluster).
    pub fn utilization(&self) -> f64 {
        if self.server_utilization.is_empty() {
            return 0.0;
        }
        self.server_utilization.iter().sum::<f64>() / self.server_utilization.len() as f64
    }

    /// Converts to the [`RunSample`] consumed by the adaptive optimizer.
    pub fn to_run_sample(&self) -> RunSample {
        RunSample {
            primary: self.primaries(),
            pairs: self.pairs(),
            latency: self.latencies(),
            reissue_rate: self.reissue_rate(),
        }
    }

    /// Fraction of reissued queries whose reissue produced the first
    /// response (i.e. the reissue "won the race").
    pub fn reissue_win_rate(&self) -> f64 {
        let reissued: Vec<_> = self.measured().iter().filter(|r| r.reissued).collect();
        if reissued.is_empty() {
            return 0.0;
        }
        let wins = reissued
            .iter()
            .filter(|r| {
                r.reissue_response.is_finite()
                    && r.reissue_dispatch_delay + r.reissue_response < r.primary_response
            })
            .count();
        wins as f64 / reissued.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(latency: f64, reissued: bool) -> QueryRecord {
        QueryRecord {
            arrival: 0.0,
            primary_response: latency,
            reissued,
            reissue_dispatch_delay: if reissued { 1.0 } else { f64::NAN },
            reissue_response: if reissued { latency / 2.0 } else { f64::NAN },
            latency,
            primary_wait: 0.0,
            primary_server: 0,
            reissue_server: if reissued { 1 } else { usize::MAX },
        }
    }

    #[test]
    fn warmup_is_skipped() {
        let records: Vec<QueryRecord> = (1..=10).map(|i| record(i as f64, false)).collect();
        let r = SimResult {
            records,
            warmup: 5,
            server_utilization: vec![0.5, 0.7],
            makespan: 100.0,
        };
        assert_eq!(r.measured().len(), 5);
        assert_eq!(r.latencies(), vec![6.0, 7.0, 8.0, 9.0, 10.0]);
        assert!((r.utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn reissue_rate_counts_post_warmup() {
        let mut records: Vec<QueryRecord> = (0..8).map(|_| record(1.0, false)).collect();
        records.push(record(2.0, true));
        records.push(record(3.0, true));
        let r = SimResult {
            records,
            warmup: 0,
            server_utilization: vec![],
            makespan: 10.0,
        };
        assert!((r.reissue_rate() - 0.2).abs() < 1e-12);
        assert_eq!(r.pairs().len(), 2);
    }

    #[test]
    fn win_rate() {
        // reissue_response = latency/2, dispatch delay 1:
        // wins iff 1 + l/2 < l ⟺ l > 2.
        let records = vec![record(1.5, true), record(4.0, true), record(10.0, true)];
        let r = SimResult {
            records,
            warmup: 0,
            server_utilization: vec![],
            makespan: 10.0,
        };
        assert!((r.reissue_win_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_measured_defaults() {
        let r = SimResult {
            records: vec![],
            warmup: 0,
            server_utilization: vec![],
            makespan: 0.0,
        };
        assert_eq!(r.reissue_rate(), 0.0);
        assert_eq!(r.reissue_win_rate(), 0.0);
        assert!(r.pairs().is_empty());
    }
}
