//! Vendored, `std`-only shim for the subset of `parking_lot` this
//! workspace uses (see `crates/compat/README.md`).
//!
//! Wraps `std::sync` primitives with `parking_lot`'s panic-free,
//! non-poisoning `lock()` signatures. A lock held by a panicking thread
//! is simply re-acquired (poison ignored), matching `parking_lot`'s
//! observable behavior for the call sites here.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
