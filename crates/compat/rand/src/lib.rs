//! Vendored, `std`-only shim for the subset of the `rand` 0.8 API this
//! workspace uses (see `crates/compat/README.md`).
//!
//! Provides [`rngs::SmallRng`] — xoshiro256++ with splitmix64 seeding —
//! plus the [`Rng`] and [`SeedableRng`] traits with `gen`, `gen_range`
//! and `gen_bool`.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Uniform over [lo, hi]: scale 53-bit integer inclusively.
        let max = (1u64 << 53) - 1;
        let u = (rng.next_u64() >> 11) as f64 / max as f64;
        lo + u * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform in
    /// `[0, 1)` for floats, full-range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// splitmix64 step, used for seed expansion.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }
}
