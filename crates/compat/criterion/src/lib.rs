//! Vendored, `std`-only shim for the subset of `criterion` this
//! workspace uses (see `crates/compat/README.md`).
//!
//! Benchmarks compile against the familiar `criterion_group!` /
//! `criterion_main!` / `bench_function` API but are measured with a
//! plain wall-clock sampler: per benchmark, a short warm-up sizes the
//! per-sample iteration count, then `sample_size` samples are taken and
//! the median per-iteration time is reported on stdout. Passing
//! `--test` (as `cargo test --benches` does) runs every benchmark body
//! once and skips measurement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just a parameter (no function name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// `Some(ns)` after `iter`: median nanoseconds per iteration.
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Measures `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.cfg.test_mode {
            black_box(routine());
            self.result_ns = None;
            return;
        }
        // Warm-up: run until warm_up_time elapses to size iterations.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.cfg.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let samples = self.cfg.sample_size.max(2);
        let budget = self.cfg.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter).floor() as u64).clamp(1, 1_000_000);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(t0.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(times[times.len() / 2]);
    }
}

fn report(name: &str, ns: Option<f64>, throughput: Option<Throughput>) {
    match ns {
        None => println!("bench {name:<40} ok (test mode)"),
        Some(ns) => {
            let human = if ns >= 1e9 {
                format!("{:.3} s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.3} ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.3} µs", ns / 1e3)
            } else {
                format!("{ns:.1} ns")
            };
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.2} Melem/s)", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.2} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!("bench {name:<40} {human:>12}/iter{rate}");
        }
    }
}

/// Benchmark driver configuration; also the entry point handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            cfg: self,
            result_ns: None,
        };
        f(&mut b);
        report(name, b.result_ns, None);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    cfg: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) {
        let mut b = Bencher {
            cfg: self.cfg,
            result_ns: None,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.result_ns,
            self.throughput,
        );
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            cfg: self.cfg,
            result_ns: None,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.result_ns,
            self.throughput,
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.test_mode = false;
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("p", 1), &1, |b, &x| {
            b.iter(|| std::hint::black_box(x + 1))
        });
        group.finish();
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
