//! Vendored, `std`-only shim for the subset of `proptest` this
//! workspace uses (see `crates/compat/README.md`).
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, ..) {..} }`
//! macro with range, tuple, `any::<bool>()` and `collection::vec`
//! strategies, plus `prop_assert!`/`prop_assert_eq!`. Inputs are drawn
//! from a deterministic per-test RNG (seeded from the test name), so
//! runs are reproducible. **No shrinking**: a failing case panics with
//! the case index; re-running reproduces it exactly.

#![forbid(unsafe_code)]

/// Number of cases to run per property (the real crate's default is
/// 256; this shim defaults to the same).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases per property test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG driving input generation (xorshift64*; deterministic).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (e.g. the test path).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        let max = (1u64 << 53) - 1;
        let u = (rng.next_u64() >> 11) as f64 / max as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Marker strategy for [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T` (provided for the types the
/// workspace draws).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, spanning many magnitudes.
        let mag = (-300.0 + 600.0 * rng.unit_f64()) / 10.0;
        let v = 10f64.powf(mag);
        if rng.next_u64() & 1 == 1 {
            -v
        } else {
            v
        }
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Single-glob import surface, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{any, Any, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test macro: runs the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let run = || {
                        $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                        $body
                    };
                    if let Err(panic) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {case}/{} failed in {}",
                            config.cases,
                            stringify!($name)
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )+
        }
    };
}

/// Skips the current case when the assumption does not hold. (The real
/// crate re-draws; this shim simply returns from the case body, which
/// is equivalent for statistical assertions.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// `assert!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(
            x in 1u32..10,
            y in -5i32..=5,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vecs_and_tuples(
            v in collection::vec((any::<bool>(), 0u64..100), 0..20),
            mut w in collection::vec(0.0f64..1.0, 1..5),
        ) {
            prop_assert!(v.len() < 20);
            for (_, n) in &v {
                prop_assert!(*n < 100);
            }
            w.push(0.5);
            prop_assert!(!w.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
