//! Vendored, `std`-only shim for the subset of the `bytes` 1.x API this
//! workspace uses (see `crates/compat/README.md`).
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer: a refcounted
//! `(Arc<Vec<u8>>, start, end)` **view**, so sub-slicing
//! ([`Bytes::slice`]) and [`BytesMut::freeze`] are O(1) and share the
//! underlying allocation — the property the zero-copy RESP codec is
//! built on (command/reply payloads are views into the frozen
//! connection read buffer; see `kvstore::resp`). Views pin their whole
//! backing buffer; [`Bytes::detach`] makes a compact private copy at
//! retention boundaries (e.g. a store inserting a key it will keep).
//!
//! [`BytesMut`] is a growable buffer with an O(1) front cursor:
//! `advance`/`split_to` move a read offset instead of memmoving the
//! tail, and `freeze` hands the backing `Vec` to an `Arc` without
//! copying. Spent front capacity is reclaimed on `extend_from_slice`
//! once it dominates the buffer.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable view into a shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copies under this shim; the real
    /// crate aliases — semantics are identical for readers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// An O(1) sub-view sharing this buffer's allocation. The range is
    /// relative to this view.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.end - self.start;
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// A compact private copy when this view pins a larger shared
    /// allocation (retention boundary — e.g. the store keeping a key
    /// must not keep the whole network frame alive); a cheap refcount
    /// clone when the view already spans its entire backing buffer.
    pub fn detach(&self) -> Bytes {
        if self.start == 0 && self.end == self.data.len() {
            self.clone()
        } else {
            Bytes::copy_from_slice(self)
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        // All empty `Bytes` share one static backing allocation, so
        // `Bytes::new()` is allocation-free on hot validation paths.
        static EMPTY: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();
        Bytes {
            data: Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new()))),
            start: 0,
            end: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

// Equality/ordering/hashing are over the *visible* slice, never the
// backing buffer or offsets — two views of different buffers with the
// same contents are equal (and hash identically, as the
// `Borrow<[u8]>` contract requires for map lookups by slice).
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{}\"", String::from_utf8_lossy(self).escape_debug())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

/// Byte-cursor trait: front consumption of a buffer.
pub trait Buf {
    /// Discards the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Bytes remaining.
    fn remaining(&self) -> usize;
}

/// Reclaim the spent front region once it exceeds this many bytes
/// *and* the majority of the backing storage — keeps long-lived
/// connection read buffers from growing without bound while never
/// memmoving on the per-frame hot path.
const COMPACT_THRESHOLD: usize = 4096;

/// A growable byte buffer supporting O(1) front consumption.
#[derive(Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Appends a slice. Fully-consumed or mostly-spent front capacity
    /// is reclaimed here, off the per-frame path.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        } else if self.start > COMPACT_THRESHOLD && self.start > self.data.len() / 2 {
            self.data.drain(..self.start);
            self.start = 0;
        }
        self.data.extend_from_slice(extend);
    }

    /// Removes and returns the first `at` bytes as a new buffer
    /// (copied out; the remainder is consumed in O(1)).
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.remaining(), "split_to out of bounds");
        let head = BytesMut {
            data: self.data[self.start..self.start + at].to_vec(),
            start: 0,
        };
        self.start += at;
        head
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Spare capacity past the current contents.
    pub fn capacity(&self) -> usize {
        self.data.capacity() - self.start
    }

    /// Freezes into an immutable [`Bytes`] **without copying**: the
    /// backing `Vec` moves into the shared allocation and any consumed
    /// front region simply stays outside the view.
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        Bytes {
            start: self.start.min(end),
            end,
            data: Arc::new(self.data),
        }
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.start += cnt;
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.start
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.data[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for BytesMut {}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{}\"", String::from_utf8_lossy(self).escape_debug())
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut {
            data: s.to_vec(),
            start: 0,
        }
    }
}

impl<const N: usize> From<&[u8; N]> for BytesMut {
    fn from(s: &[u8; N]) -> Self {
        BytesMut::from(&s[..])
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v, start: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_basics() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(b, c);
        let d = Bytes::from(String::from("hello"));
        assert_eq!(b, d);
    }

    #[test]
    fn bytesmut_split_and_advance() {
        let mut m = BytesMut::from(&b"abcdef"[..]);
        let head = m.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&m[..], b"cdef");
        m.advance(1);
        assert_eq!(&m[..], b"def");
        assert_eq!(m.remaining(), 3);
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"def");
    }

    #[test]
    fn bytesmut_take_default() {
        let mut m = BytesMut::from(&b"xy"[..]);
        let taken = std::mem::take(&mut m);
        assert_eq!(&taken[..], b"xy");
        assert!(m.is_empty());
    }

    #[test]
    fn bytes_as_hashmap_key() {
        use std::collections::HashMap;
        let mut map: HashMap<Bytes, u32> = HashMap::new();
        map.insert(Bytes::from_static(b"k"), 1);
        assert_eq!(map.get(&Bytes::copy_from_slice(b"k")), Some(&1));
    }

    #[test]
    fn slices_share_and_compare_by_contents() {
        let whole = Bytes::from(b"prefix-payload-suffix".to_vec());
        let payload = whole.slice(7..14);
        assert_eq!(&payload[..], b"payload");
        // Same contents from a different backing buffer: equal, same
        // hash (HashMap lookup via a view must hit a copied key).
        let copied = Bytes::copy_from_slice(b"payload");
        assert_eq!(payload, copied);
        use std::collections::HashMap;
        let mut map = HashMap::new();
        map.insert(copied, 7u32);
        assert_eq!(map.get(&payload), Some(&7));
        // Nested slicing is relative to the view.
        let pay = payload.slice(..3);
        assert_eq!(&pay[..], b"pay");
        assert_eq!(payload.slice(7..7).len(), 0);
    }

    #[test]
    fn detach_unpins_backing_buffer() {
        let whole = Bytes::from(vec![7u8; 1024]);
        let view = whole.slice(0..4);
        let weak = Arc::downgrade(&view.data);
        let detached = view.detach();
        drop(whole);
        drop(view);
        assert_eq!(&detached[..], &[7, 7, 7, 7]);
        assert!(
            weak.upgrade().is_none(),
            "detached copy must not pin the original allocation"
        );
        // A full-spanning view detaches by refcount, not copy.
        let full = Bytes::from(b"abc".to_vec());
        let det = full.detach();
        assert!(Arc::ptr_eq(&full.data, &det.data));
    }

    #[test]
    fn freeze_is_zero_copy_and_offset_aware() {
        let mut m = BytesMut::from(&b"consumedrest"[..]);
        m.advance(8);
        let b = m.freeze();
        assert_eq!(&b[..], b"rest");
    }

    #[test]
    fn advance_is_cursor_based_and_extend_reclaims() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"abcd");
        m.advance(4);
        assert_eq!(m.remaining(), 0);
        // Fully consumed: extend resets the cursor instead of growing.
        m.extend_from_slice(b"efgh");
        assert_eq!(&m[..], b"efgh");
        assert_eq!(m.start, 0);
        // A large mostly-spent buffer compacts on the next extend.
        let mut big = BytesMut::from(vec![1u8; 2 * COMPACT_THRESHOLD]);
        big.advance(2 * COMPACT_THRESHOLD - 8);
        big.extend_from_slice(b"tail");
        assert_eq!(big.start, 0);
        assert_eq!(big.remaining(), 12);
    }
}
