//! Vendored, `std`-only shim for the subset of the `bytes` 1.x API this
//! workspace uses (see `crates/compat/README.md`).
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer (an
//! `Arc<[u8]>` under the hood — no sub-slicing views, which the
//! workspace does not need). [`BytesMut`] is a growable buffer backed
//! by `Vec<u8>` with the `split_to`/`advance` front-consumption calls
//! the RESP codec relies on.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copies under this shim; the real
    /// crate aliases — semantics are identical for readers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.data).escape_debug()
        )
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

/// Byte-cursor trait: front consumption of a buffer.
pub trait Buf {
    /// Discards the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Bytes remaining.
    fn remaining(&self) -> usize;
}

/// A growable byte buffer supporting front consumption.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Removes and returns the first `at` bytes as a new buffer.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance out of bounds");
        self.data.drain(..cnt);
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.data).escape_debug()
        )
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

impl<const N: usize> From<&[u8; N]> for BytesMut {
    fn from(s: &[u8; N]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_basics() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(b, c);
        let d = Bytes::from(String::from("hello"));
        assert_eq!(b, d);
    }

    #[test]
    fn bytesmut_split_and_advance() {
        let mut m = BytesMut::from(&b"abcdef"[..]);
        let head = m.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&m[..], b"cdef");
        m.advance(1);
        assert_eq!(&m[..], b"def");
        assert_eq!(m.remaining(), 3);
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"def");
    }

    #[test]
    fn bytesmut_take_default() {
        let mut m = BytesMut::from(&b"xy"[..]);
        let taken = std::mem::take(&mut m);
        assert_eq!(&taken[..], b"xy");
        assert!(m.is_empty());
    }

    #[test]
    fn bytes_as_hashmap_key() {
        use std::collections::HashMap;
        let mut map: HashMap<Bytes, u32> = HashMap::new();
        map.insert(Bytes::from_static(b"k"), 1);
        assert_eq!(map.get(&Bytes::copy_from_slice(b"k")), Some(&1));
    }
}
