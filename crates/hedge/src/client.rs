//! The hedged client: speculative execution driven by a
//! [`ReissuePolicy`], with live (`OnlineAdapter`) re-optimization.
//!
//! Per query the client:
//!
//! 1. dispatches the **primary** to the next replica (round-robin);
//! 2. samples the policy's reissue schedule — for SingleR, a coin with
//!    probability `q` decides *now* whether a reissue is armed at
//!    delay `d` (distributionally identical to flipping at fire time,
//!    see [`ReissuePolicy::sample_schedule`]);
//! 3. races the primary against the armed timer; if the timer fires
//!    first, dispatches the **reissue** to a different replica;
//! 4. returns the first reply and cancels the loser via its
//!    [`CancelToken`] — the transport pushes `CANCEL <seq>` to the
//!    backend, which retracts the queued frame if it has not executed
//!    (tied requests);
//! 5. feeds observations into the [`OnlineAdapter`], which
//!    re-optimizes `(d, q)` every `reoptimize_every` completions while
//!    the system serves. Un-raced queries feed the primary stream;
//!    **raced hedges feed joint `(primary, reissue)` pairs** — exact
//!    when the loser completed, censored at the loser's
//!    elapsed-at-retraction lower bound when the cancel landed in time
//!    — so the adapter can run the §4.2 *correlated* optimizer instead
//!    of the independence model (see `reissue_core::online`).

use crate::rt::{race, Either, Runtime};
use crate::sync::CancelToken;
use crate::transport::{ReplicaSet, TransportError};

use kvstore::{Command, Reply};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reissue_core::censored::Obs;
use reissue_core::online::{OnlineAdapter, OnlineConfig, ReissueOutcome};
use reissue_core::policy::ReissuePolicy;

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`HedgedClient`].
#[derive(Clone, Debug)]
pub struct HedgeConfig {
    /// The starting policy (used as-is when `online` is `None`).
    pub policy: ReissuePolicy,
    /// When set, an [`OnlineAdapter`] re-optimizes `(d, q)` from
    /// observed latencies while serving, overriding `policy` once
    /// warmed up.
    pub online: Option<OnlineConfig>,
    /// Cap on the *realized* reissue rate (reissues / queries),
    /// enforced by a running-counter governor independent of the
    /// policy's own `(d, q)` accounting. This is a safety valve, not a
    /// tight limiter: the policy keeps the *expected* rate at the
    /// budget, and the governor bounds the realized rate when the
    /// adapter is mid-correction (serving feeds back into the latency
    /// distribution, so `P(T > d)` moves between re-optimizations).
    /// Defaults to 1.25× the online budget when online adaptation is
    /// on — a governor pinned exactly at the steady-state demand
    /// denies hedges first-come-first-served, which starves precisely
    /// the stragglers that arrive in bursts behind a query of death.
    pub budget_cap: Option<f64>,
    /// TCP connections per replica.
    pub pool_per_replica: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Seed for the reissue coin flips.
    pub seed: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: None,
            budget_cap: None,
            pool_per_replica: 4,
            workers: 4,
            seed: 0x5EED,
        }
    }
}

/// Counters published by the client (monotonic).
#[derive(Clone, Copy, Debug, Default)]
pub struct HedgeStats {
    /// Queries completed.
    pub queries: u64,
    /// Reissues actually dispatched (the timer fired and the coin had
    /// come up heads).
    pub reissues: u64,
    /// Queries won by the reissue rather than the primary.
    pub reissue_wins: u64,
    /// Loser requests whose cancellation reached the backend in time
    /// (retracted before execution).
    pub cancelled_in_time: u64,
    /// Raced hedges that produced an exact `(primary, reissue)` pair
    /// for the adapter (the loser completed).
    pub pairs_exact: u64,
    /// Raced hedges that produced a censored pair (the loser was
    /// retracted in time; only its elapsed-at-cancel lower bound is
    /// known).
    pub pairs_censored: u64,
    /// Transport errors observed (winner path only).
    pub errors: u64,
}

struct PolicyState {
    policy: ReissuePolicy,
    adapter: Option<OnlineAdapter>,
    rng: SmallRng,
}

struct Counters {
    queries: AtomicU64,
    reissues: AtomicU64,
    reissue_wins: AtomicU64,
    cancelled_in_time: AtomicU64,
    pairs_exact: AtomicU64,
    pairs_censored: AtomicU64,
    errors: AtomicU64,
}

/// Sliding window of the most recent query latencies: bounded memory
/// for long-serving clients (a plain grow-forever `Vec` would leak).
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
}

/// Samples retained for [`HedgedClient::latency_quantile`].
const LATENCY_WINDOW: usize = 1 << 17;

impl LatencyRing {
    fn push(&mut self, v: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(v);
        } else {
            self.samples[self.next] = v;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

struct HcInner {
    rt: Runtime,
    replicas: ReplicaSet,
    state: Mutex<PolicyState>,
    counters: Counters,
    latencies_ms: Mutex<LatencyRing>,
    budget_cap: Option<f64>,
}

/// A hedging client over a set of kvstore replicas. Cheap to clone
/// (all clones share connections, policy state and statistics).
#[derive(Clone)]
pub struct HedgedClient {
    inner: Arc<HcInner>,
}

impl HedgedClient {
    /// Connects to the replicas and starts the runtime.
    pub fn connect(addrs: &[SocketAddr], cfg: HedgeConfig) -> std::io::Result<HedgedClient> {
        let replicas = ReplicaSet::connect(addrs, cfg.pool_per_replica)?;
        let budget_cap = cfg.budget_cap.or(cfg.online.map(|o| 1.25 * o.budget));
        let adapter = cfg.online.map(OnlineAdapter::new);
        Ok(HedgedClient {
            inner: Arc::new(HcInner {
                rt: Runtime::new(cfg.workers),
                replicas,
                state: Mutex::new(PolicyState {
                    policy: cfg.policy,
                    adapter,
                    rng: SmallRng::seed_from_u64(cfg.seed),
                }),
                counters: Counters {
                    queries: AtomicU64::new(0),
                    reissues: AtomicU64::new(0),
                    reissue_wins: AtomicU64::new(0),
                    cancelled_in_time: AtomicU64::new(0),
                    pairs_exact: AtomicU64::new(0),
                    pairs_censored: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                },
                latencies_ms: Mutex::new(LatencyRing {
                    samples: Vec::new(),
                    next: 0,
                }),
                budget_cap,
            }),
        })
    }

    /// The executor, for spawning concurrent load generators.
    pub fn runtime(&self) -> &Runtime {
        &self.inner.rt
    }

    /// The current policy (live view; moves as the adapter re-optimizes).
    pub fn policy(&self) -> ReissuePolicy {
        self.inner.state.lock().unwrap().policy.clone()
    }

    /// The online adapter's current `(d, q)` record with its budget
    /// accounting, if online adaptation is enabled.
    pub fn online_policy(&self) -> Option<reissue_core::optimizer::OptimalSingleR> {
        let st = self.inner.state.lock().unwrap();
        st.adapter.as_ref().map(|a| a.policy())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HedgeStats {
        let c = &self.inner.counters;
        HedgeStats {
            queries: c.queries.load(Ordering::Relaxed),
            reissues: c.reissues.load(Ordering::Relaxed),
            reissue_wins: c.reissue_wins.load(Ordering::Relaxed),
            cancelled_in_time: c.cancelled_in_time.load(Ordering::Relaxed),
            pairs_exact: c.pairs_exact.load(Ordering::Relaxed),
            pairs_censored: c.pairs_censored.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    /// Whether the online adapter's most recent re-optimization used
    /// the §4.2 correlated optimizer (`None` when online adaptation is
    /// off).
    pub fn online_correlated(&self) -> Option<bool> {
        let st = self.inner.state.lock().unwrap();
        st.adapter.as_ref().map(|a| a.using_correlated())
    }

    /// Number of queries slower than `threshold_ms` among the most
    /// recent [`LATENCY_WINDOW`] completions.
    pub fn latencies_over(&self, threshold_ms: f64) -> usize {
        self.inner
            .latencies_ms
            .lock()
            .unwrap()
            .samples
            .iter()
            .filter(|&&l| l > threshold_ms)
            .count()
    }

    /// Quantile of end-to-end query latencies (ms) over the most
    /// recent [`LATENCY_WINDOW`] completions.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        let lat = self.inner.latencies_ms.lock().unwrap();
        if lat.samples.is_empty() {
            return None;
        }
        let mut v = lat.samples.clone();
        drop(lat);
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Executes one command with hedging; resolves to the winning
    /// reply. The returned future is `'static`: spawn any number
    /// concurrently.
    pub fn execute(
        &self,
        cmd: Command,
    ) -> impl std::future::Future<Output = Result<Reply, TransportError>> + Send + 'static {
        let inner = self.inner.clone();
        async move {
            // Sample the primary and the reissue schedule up-front;
            // the reissue *target* is chosen at fire time, when load
            // information is current.
            let primary_idx = inner.replicas.pick_primary();
            let schedule: Option<Duration> = {
                let mut st = inner.state.lock().unwrap();
                let stages = st.policy.stages();
                stages.first().and_then(|s| {
                    let fire = s.prob >= 1.0 || (s.prob > 0.0 && st.rng.gen::<f64>() < s.prob);
                    fire.then(|| Duration::from_secs_f64(s.delay.max(0.0) / 1e3))
                })
            };

            let started = Instant::now();
            let primary_token = CancelToken::new();
            let primary = inner
                .replicas
                .replica(primary_idx)
                .request(cmd.clone(), primary_token.clone());

            let outcome = match schedule {
                None => primary.await.map(|r| (r, false, false)),
                Some(delay) => {
                    // Arm the SingleR timer. If the budget governor has
                    // no quota when it fires, re-arm and ask again each
                    // interval: a query still outstanding after several
                    // delays is precisely the straggler hedging exists
                    // for, and re-asking gives it priority over the
                    // steady trickle of marginal just-past-d hedges
                    // that would otherwise consume the quota
                    // first-come-first-served.
                    let mut primary = primary;
                    loop {
                        match race(primary, inner.rt.sleep(delay)).await {
                            // Primary finished: no reissue needed.
                            Either::Left((reply, _timer)) => {
                                break reply.map(|r| (r, false, false));
                            }
                            Either::Right((p, ())) if !inner.governor_allows() => {
                                primary = p; // re-arm and re-ask
                            }
                            // Timer fired with quota available: send
                            // the reissue and race the two requests.
                            Either::Right((p, ())) => {
                                inner.counters.reissues.fetch_add(1, Ordering::Relaxed);
                                let reissue_idx = inner.replicas.pick_reissue(primary_idx);
                                let reissue_token = CancelToken::new();
                                let reissue = inner
                                    .replicas
                                    .replica(reissue_idx)
                                    .request(cmd.clone(), reissue_token.clone());
                                let reissue_started = Instant::now();
                                // Raced hedges are observed as joint
                                // (primary, reissue) pairs once the
                                // loser's fate is known — see
                                // `drain_loser`.
                                break match race(p, reissue).await {
                                    Either::Left((reply, loser)) => {
                                        reissue_token.cancel();
                                        let primary_ms = started.elapsed().as_secs_f64() * 1e3;
                                        inner.clone().drain_loser(
                                            loser,
                                            reissue_started,
                                            LoserKind::Reissue { primary_ms },
                                        );
                                        reply.map(|r| (r, false, true))
                                    }
                                    Either::Right((loser, reply)) => {
                                        primary_token.cancel();
                                        inner.counters.reissue_wins.fetch_add(1, Ordering::Relaxed);
                                        // The winning reissue's own
                                        // response time, from *its*
                                        // dispatch.
                                        let reissue_ms =
                                            reissue_started.elapsed().as_secs_f64() * 1e3;
                                        inner.clone().drain_loser(
                                            loser,
                                            started,
                                            LoserKind::Primary { reissue_ms },
                                        );
                                        reply.map(|r| (r, true, true))
                                    }
                                };
                            }
                        }
                    }
                }
            };

            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            // Lightweight tail tracing: HEDGE_DEBUG=1 reports every
            // query slower than 10 ms and whether it had hedged.
            if elapsed_ms > 10.0 && std::env::var_os("HEDGE_DEBUG").is_some() {
                eprintln!("[hedge] slow {elapsed_ms:.2}ms armed={schedule:?} cmd={cmd:?}");
            }
            inner.counters.queries.fetch_add(1, Ordering::Relaxed);
            match outcome {
                Ok((reply, _won_by_reissue, raced)) => {
                    inner.latencies_ms.lock().unwrap().push(elapsed_ms);
                    // Un-raced completions feed the primary stream
                    // directly. Raced hedges are *not* observed here:
                    // their joint (primary, reissue) outcome — exact or
                    // censored — is assembled by `drain_loser` once the
                    // loser resolves, so the adapter sees correlated
                    // pairs instead of two unpaired streams. Retracted
                    // losers arrive as censored bounds rather than
                    // being dropped, so the straggler mass that
                    // cancellation used to hide from the optimizer now
                    // reaches it through the Kaplan–Meier completion.
                    if !raced {
                        inner.observe(Observation::Primary(elapsed_ms));
                    }
                    Ok(reply)
                }
                Err(e) => {
                    inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Err(e)
                }
            }
        }
    }

    /// Blocking convenience wrapper around [`HedgedClient::execute`].
    pub fn execute_blocking(&self, cmd: Command) -> Result<Reply, TransportError> {
        let fut = self.execute(cmd);
        self.inner.rt.block_on(fut)
    }
}

enum Observation {
    Primary(f64),
    Reissue(f64),
    /// A raced hedge's joint outcome; either side may be censored
    /// (lower bound only) when the loser's retraction landed in time.
    Pair {
        primary: Obs,
        reissue: Obs,
    },
}

enum LoserKind {
    /// The primary lost; the winning reissue took `reissue_ms`.
    Primary { reissue_ms: f64 },
    /// The reissue lost; the winning primary took `primary_ms`.
    Reissue { primary_ms: f64 },
}

impl HcInner {
    /// Whether the budget governor permits one more reissue right now:
    /// the realized rate including it must stay at or under the cap,
    /// plus a small burst allowance. The burst term is essential, not
    /// cosmetic: `queries` advances on *completions*, and the moments
    /// that need hedging most — every in-flight query stuck behind a
    /// query of death — are exactly the moments completions stall. A
    /// zero-burst governor deadlocks there: no completions, no quota,
    /// no hedges, until the monster finishes on its own.
    fn governor_allows(&self) -> bool {
        let Some(cap) = self.budget_cap else {
            return true;
        };
        let burst = (cap * 200.0).clamp(2.0, 16.0);
        let queries = self.counters.queries.load(Ordering::Relaxed) + 1;
        let reissues = self.counters.reissues.load(Ordering::Relaxed) + 1;
        reissues as f64 <= cap * queries as f64 + burst
    }

    /// Feeds one latency observation to the adapter and refreshes the
    /// live policy from it — the serving-time re-optimization loop.
    fn observe(&self, obs: Observation) {
        let mut st = self.state.lock().unwrap();
        let Some(adapter) = st.adapter.as_mut() else {
            return;
        };
        match obs {
            Observation::Primary(ms) => adapter.observe_primary(ms),
            Observation::Reissue(ms) => adapter.observe_reissue(ms),
            Observation::Pair { primary, reissue } => match (primary, reissue) {
                (Obs::Exact(x), Obs::Exact(y)) => {
                    adapter.observe_pair(x, ReissueOutcome::Completed(y));
                }
                (Obs::Exact(x), Obs::Censored(lb)) => {
                    adapter.observe_pair(x, ReissueOutcome::Censored(lb));
                }
                (Obs::Censored(lb), Obs::Exact(y)) => {
                    adapter.observe_pair_censored_primary(lb, y);
                }
                // Both sides censored cannot happen: the winner always
                // completes.
                (Obs::Censored(_), Obs::Censored(_)) => {}
            },
        }
        let live = adapter.policy();
        if live.probability > 0.0 && live.delay.is_finite() && live.delay >= 0.0 {
            st.policy = ReissuePolicy::single_r(live.delay, live.probability.clamp(0.0, 1.0));
        }
    }

    /// Asynchronously drains a losing request and assembles the race's
    /// joint `(primary, reissue)` observation for the adapter:
    ///
    /// * loser **completed** → exact pair (its response time is a valid
    ///   sample of its stream, now paired with the winner's);
    /// * loser **retracted in time** → censored pair: all we know is
    ///   the loser had been outstanding for `dispatched.elapsed()` when
    ///   the retraction confirmed, a lower bound on the response time
    ///   it would have had;
    /// * loser failed at the transport → no pair; the winner's side
    ///   feeds its marginal stream alone.
    fn drain_loser(
        self: Arc<Self>,
        loser: crate::transport::InFlight,
        dispatched: Instant,
        kind: LoserKind,
    ) {
        let rt = self.rt.clone();
        rt.spawn(async move {
            match loser.await {
                Err(TransportError::Cancelled) => {
                    self.counters
                        .cancelled_in_time
                        .fetch_add(1, Ordering::Relaxed);
                    self.counters.pairs_censored.fetch_add(1, Ordering::Relaxed);
                    let lb = dispatched.elapsed().as_secs_f64() * 1e3;
                    self.observe(match kind {
                        LoserKind::Primary { reissue_ms } => Observation::Pair {
                            primary: Obs::Censored(lb),
                            reissue: Obs::Exact(reissue_ms),
                        },
                        LoserKind::Reissue { primary_ms } => Observation::Pair {
                            primary: Obs::Exact(primary_ms),
                            reissue: Obs::Censored(lb),
                        },
                    });
                }
                Ok(_) => {
                    self.counters.pairs_exact.fetch_add(1, Ordering::Relaxed);
                    let ms = dispatched.elapsed().as_secs_f64() * 1e3;
                    self.observe(match kind {
                        LoserKind::Primary { reissue_ms } => Observation::Pair {
                            primary: Obs::Exact(ms),
                            reissue: Obs::Exact(reissue_ms),
                        },
                        LoserKind::Reissue { primary_ms } => Observation::Pair {
                            primary: Obs::Exact(primary_ms),
                            reissue: Obs::Exact(ms),
                        },
                    });
                }
                Err(_) => self.observe(match kind {
                    LoserKind::Primary { reissue_ms } => Observation::Reissue(reissue_ms),
                    LoserKind::Reissue { primary_ms } => Observation::Primary(primary_ms),
                }),
            }
        });
    }
}
