//! The hedged client: speculative execution driven by a
//! [`ReissuePolicy`], with live (`OnlineAdapter`) re-optimization.
//!
//! Per query the client:
//!
//! 1. dispatches the **primary** to the next replica (round-robin);
//! 2. samples the policy's full reissue schedule — every stage of a
//!    `MultipleR` policy flips its probability coin *now*
//!    (distributionally identical to flipping at fire time, see
//!    [`ReissuePolicy::sample_schedule_indexed`]), yielding the
//!    non-decreasing stage deadlines `(d₁,q₁), …, (dₙ,qₙ)` this query
//!    will arm;
//! 3. races every in-flight attempt against the next stage's deadline
//!    timer ([`crate::rt::select_all`]); each time a timer fires (and
//!    the budget governor grants quota) one more **reissue** is
//!    dispatched, targeted at the healthiest replica not yet carrying
//!    this query (per-replica latency/error EWMA — see
//!    [`crate::transport::ReplicaHealth`]);
//! 4. returns the first reply and cancels every loser via its
//!    [`CancelToken`] — the transport pushes `CANCEL <seq>` to the
//!    backend, which retracts the queued frame if it has not executed
//!    (tied requests);
//! 5. feeds observations into the [`OnlineAdapter`], which
//!    re-optimizes `(d, q)` every `reoptimize_every` completions while
//!    the system serves. Un-raced queries feed the primary stream;
//!    **raced hedges feed joint `(primary, first-stage reissue)`
//!    pairs** — exact when the loser completed, censored at the
//!    loser's elapsed-at-retraction lower bound when the cancel landed
//!    in time — so the adapter can run the §4.2 *correlated* optimizer
//!    instead of the independence model (see `reissue_core::online`).
//!    Later-stage losers feed the marginal reissue stream when they
//!    complete.

use crate::rt::{race, select_all, Either, Runtime};
use crate::sync::CancelToken;
use crate::transport::{ReplicaSet, TieSpec, TransportError};

use kvstore::{Command, Reply};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reissue_core::censored::Obs;
use reissue_core::load::{LoadSignal, LoadSnapshot};
use reissue_core::online::{OnlineAdapter, OnlineConfig, ReissueOutcome};
use reissue_core::policy::ReissuePolicy;

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of per-stage reissue counter buckets in [`HedgeStats`];
/// stages at or past the last bucket share it. Eight stages is far
/// beyond any useful schedule (Thm 3.2: one stage already suffices at
/// the optimum), so in practice every stage gets its own bucket.
pub const MAX_STAGES: usize = 8;

/// How a raced query's losing attempts get retracted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CancellationStyle {
    /// Client-driven: the race winner's completion triggers `CANCEL`
    /// frames from this client to each loser's replica — retraction
    /// costs a full client→replica hop *after* the winner finished.
    #[default]
    Client,
    /// Server-side tied requests ("The Tail at Scale"): the primary
    /// and the first reissue register a tie, and whichever replica
    /// *dequeues* its copy first retracts the other directly over a
    /// server-to-server channel — bounding the duplicated work by the
    /// replica-to-replica one-way delay instead of the winner's full
    /// service time. Client-driven `CANCEL` stays armed as a fallback
    /// for attempts the tie never covered (later stages, lost frames).
    Tied,
}

/// Process-global tie id source. Replicas key tie state by id alone,
/// so ids must be unique across every client in the process.
static NEXT_TIE_ID: AtomicU64 = AtomicU64::new(1);

/// Draws a fresh process-unique tie id. Public so other client layers
/// (the erasure-coded fragment client) can register tied requests in
/// the same id space without colliding with this module's hedges.
pub fn next_tie_id() -> u64 {
    NEXT_TIE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Configuration for [`HedgedClient`].
#[derive(Clone, Debug)]
pub struct HedgeConfig {
    /// The starting policy (used as-is when `online` is `None`). All
    /// families execute natively: `None`, `SingleD`, `SingleR`, and
    /// multi-stage `MultipleR` schedules — stage `i` arms a timer at
    /// `dᵢ` (measured from the primary dispatch) that, if the query is
    /// still outstanding, dispatches one reissue with probability `qᵢ`.
    pub policy: ReissuePolicy,
    /// When set, an [`OnlineAdapter`] re-optimizes `(d, q)` from
    /// observed latencies while serving, overriding `policy` once
    /// warmed up.
    pub online: Option<OnlineConfig>,
    /// Cap on the *realized* reissue rate (reissues / queries),
    /// enforced by a running-counter governor independent of the
    /// policy's own `(d, q)` accounting. This is a safety valve, not a
    /// tight limiter: the policy keeps the *expected* rate at the
    /// budget, and the governor bounds the realized rate when the
    /// adapter is mid-correction (serving feeds back into the latency
    /// distribution, so `P(T > d)` moves between re-optimizations).
    /// Defaults to 1.25× the online budget when online adaptation is
    /// on — a governor pinned exactly at the steady-state demand
    /// denies hedges first-come-first-served, which starves precisely
    /// the stragglers that arrive in bursts behind a query of death.
    ///
    /// **Interaction with `MultipleR`:** the cap counts *total*
    /// reissues across all stages — a 3-stage schedule can spend up to
    /// 3 units of quota on one query, so the governor compares
    /// `Σᵢ (stage-i dispatches)` against `cap × queries`. The policy's
    /// own expected spend is `Σᵢ qᵢ·P(T > dᵢ)` (Equation 4: a stage
    /// whose deadline the query never reaches consumes nothing), which
    /// is what the optimizer holds at the budget; the governor only
    /// clips realized bursts. When a stage's timer fires without
    /// quota, that stage *re-asks* one stage-delay later rather than
    /// silently dropping — a query still outstanding after several
    /// delays is precisely the straggler hedging exists for — and
    /// later stages queue behind it, preserving the schedule's
    /// dispatch order.
    pub budget_cap: Option<f64>,
    /// An externally shared governor. When set it takes precedence
    /// over `budget_cap`: several clients handed clones of one
    /// [`BudgetGovernor`] draw reissue quota from a single pool — the
    /// scatter-gather fan-out aggregator gives every per-shard client
    /// the same governor so hedging is per-shard but the *budget* is
    /// cross-shard.
    pub governor: Option<Arc<BudgetGovernor>>,
    /// TCP connections per replica.
    pub pool_per_replica: usize,
    /// Requests each pooled connection keeps on the wire at once.
    ///
    /// `1` (the default) is strict request/reply: a connection writes
    /// one frame and blocks for its reply, with per-attempt retries on
    /// fresh sockets. Values above 1 pipeline: a connection batches up
    /// to `pipeline` queued frames into single socket writes and
    /// matches replies FIFO — amortizing syscalls and wakeups across
    /// requests, which is where closed-loop throughput goes once the
    /// per-request CPU cost is the bottleneck. Pipelined connections
    /// trade away mid-stream retries (a dead socket fails everything
    /// on the wire rather than replaying it), so hedged/tail-latency
    /// serving should keep the default.
    pub pipeline: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Seed for the reissue coin flips.
    pub seed: u64,
    /// How losing attempts are retracted (see [`CancellationStyle`]).
    /// `Tied` registers the primary and the first reissue as a
    /// server-side tied pair so the serving replica cancels the peer
    /// at dequeue time; `Client` (default) relies on this client's
    /// `CANCEL` after the race resolves.
    pub cancellation: CancellationStyle,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: None,
            budget_cap: None,
            governor: None,
            pool_per_replica: 4,
            pipeline: 1,
            workers: 4,
            seed: 0x5EED,
            cancellation: CancellationStyle::Client,
        }
    }
}

/// A running-counter reissue-rate governor, shareable across clients.
///
/// Tracks completed queries and dispatched reissues and answers "may
/// one more reissue go out right now?": the realized rate including it
/// must stay at or under the cap, plus a small burst allowance. The
/// burst term is essential, not cosmetic: queries advance on
/// *completions*, and the moments that need hedging most — every
/// in-flight query stuck behind a query of death — are exactly the
/// moments completions stall. A zero-burst governor deadlocks there.
///
/// Wrap it in an [`Arc`] and hand clones to several [`HedgedClient`]s
/// (via [`HedgeConfig::governor`]) to enforce one budget across all of
/// them; `queries` then counts per-leg queries across every client, so
/// the cap stays a per-leg reissue fraction.
#[derive(Debug)]
pub struct BudgetGovernor {
    cap: f64,
    queries: AtomicU64,
    reissues: AtomicU64,
}

impl BudgetGovernor {
    /// Creates a governor enforcing `cap` (reissues per query).
    pub fn new(cap: f64) -> Self {
        assert!(cap >= 0.0 && cap.is_finite(), "cap must be finite and >= 0");
        BudgetGovernor {
            cap,
            queries: AtomicU64::new(0),
            reissues: AtomicU64::new(0),
        }
    }

    /// The configured cap (reissues per query).
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The burst allowance above `cap × queries` (see type docs).
    pub fn burst(&self) -> f64 {
        (self.cap * 200.0).clamp(2.0, 16.0)
    }

    /// Whether one more reissue may be dispatched right now.
    pub fn allows(&self) -> bool {
        let queries = self.queries.load(Ordering::Relaxed) + 1;
        let reissues = self.reissues.load(Ordering::Relaxed) + 1;
        reissues as f64 <= self.cap * queries as f64 + self.burst()
    }

    /// Records one completed query.
    pub fn note_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dispatched reissue.
    pub fn note_reissue(&self) {
        self.reissues.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed queries recorded so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Dispatched reissues recorded so far.
    pub fn reissues(&self) -> u64 {
        self.reissues.load(Ordering::Relaxed)
    }

    /// Realized reissue rate so far (0 when nothing completed yet).
    pub fn realized_rate(&self) -> f64 {
        self.reissues() as f64 / self.queries().max(1) as f64
    }
}

/// Counters published by the client (monotonic).
#[derive(Clone, Copy, Debug, Default)]
pub struct HedgeStats {
    /// Queries completed.
    pub queries: u64,
    /// Reissues actually dispatched across all stages (a timer fired,
    /// the stage's coin had come up heads, and the governor granted
    /// quota).
    pub reissues: u64,
    /// Dispatched reissues broken down by policy stage index (stages
    /// `>= MAX_STAGES - 1` share the last bucket). Sums to `reissues`.
    pub reissues_by_stage: [u64; MAX_STAGES],
    /// Queries won by a reissue (any stage) rather than the primary.
    pub reissue_wins: u64,
    /// Loser requests whose cancellation reached the backend in time
    /// (retracted before execution).
    pub cancelled_in_time: u64,
    /// Raced hedges that produced an exact `(primary, reissue)` pair
    /// for the adapter (both sides completed).
    pub pairs_exact: u64,
    /// Raced hedges that produced a censored pair (one side was
    /// retracted in time; only its elapsed-at-cancel lower bound is
    /// known).
    pub pairs_censored: u64,
    /// Queries that failed outright — every attempt (primary and all
    /// dispatched reissues) resolved with a transport error and no
    /// stage quota remained. A single attempt's failure never counts
    /// here while another attempt can still save the query.
    pub errors: u64,
}

struct PolicyState {
    policy: ReissuePolicy,
    adapter: Option<OnlineAdapter>,
    rng: SmallRng,
}

struct Counters {
    queries: AtomicU64,
    reissues: AtomicU64,
    reissues_by_stage: [AtomicU64; MAX_STAGES],
    reissue_wins: AtomicU64,
    cancelled_in_time: AtomicU64,
    pairs_exact: AtomicU64,
    pairs_censored: AtomicU64,
    errors: AtomicU64,
    /// Reissue dispatches per replica index — the targeting
    /// distribution the EWMA-health regression tests watch.
    reissue_targets: Vec<AtomicU64>,
}

struct HcInner {
    rt: Runtime,
    replicas: ReplicaSet,
    state: Mutex<PolicyState>,
    counters: Counters,
    /// Streaming latency recorder: the shared log-bucketed histogram
    /// (1% relative quantile error, constant memory) instead of the
    /// sorted-`Vec`-per-probe this client used to keep.
    latencies_ms: Mutex<reissue_core::metrics::LogHistogram>,
    governor: Option<Arc<BudgetGovernor>>,
    cancellation: CancellationStyle,
    /// Aggregate load estimator, present iff the online config opts
    /// into utilization-aware damping ([`OnlineConfig::load`]). Fed on
    /// every dispatch (primary and reissue) and every query
    /// resolution; its estimate is pushed into the adapter at each
    /// observation (see [`HcInner::observe`]).
    load: Option<LoadSignal>,
}

/// A hedging client over a set of kvstore replicas. Cheap to clone
/// (all clones share connections, policy state and statistics).
#[derive(Clone)]
pub struct HedgedClient {
    inner: Arc<HcInner>,
}

impl HedgedClient {
    /// Connects to the replicas and starts a fresh runtime with
    /// [`HedgeConfig::workers`] threads.
    pub fn connect(addrs: &[SocketAddr], cfg: HedgeConfig) -> std::io::Result<HedgedClient> {
        let rt = Runtime::new(cfg.workers);
        Self::connect_with_runtime(rt, addrs, cfg)
    }

    /// Connects to the replicas on an existing runtime. Lets many
    /// clients — e.g. one per shard group in a fan-out — share one
    /// executor instead of spawning `workers` threads each.
    pub fn connect_with_runtime(
        rt: Runtime,
        addrs: &[SocketAddr],
        cfg: HedgeConfig,
    ) -> std::io::Result<HedgedClient> {
        let replicas = ReplicaSet::connect_pipelined(addrs, cfg.pool_per_replica, cfg.pipeline)?;
        let governor = cfg.governor.clone().or_else(|| {
            cfg.budget_cap
                .or(cfg.online.map(|o| 1.25 * o.budget))
                .map(|cap| Arc::new(BudgetGovernor::new(cap)))
        });
        let adapter = cfg.online.map(OnlineAdapter::new);
        let load = cfg
            .online
            .and_then(|o| o.load.map(|_| LoadSignal::new(addrs.len().max(1))));
        Ok(HedgedClient {
            inner: Arc::new(HcInner {
                rt,
                replicas,
                state: Mutex::new(PolicyState {
                    policy: cfg.policy,
                    adapter,
                    rng: SmallRng::seed_from_u64(cfg.seed),
                }),
                counters: Counters {
                    queries: AtomicU64::new(0),
                    reissues: AtomicU64::new(0),
                    reissues_by_stage: std::array::from_fn(|_| AtomicU64::new(0)),
                    reissue_wins: AtomicU64::new(0),
                    cancelled_in_time: AtomicU64::new(0),
                    pairs_exact: AtomicU64::new(0),
                    pairs_censored: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                    reissue_targets: (0..addrs.len()).map(|_| AtomicU64::new(0)).collect(),
                },
                latencies_ms: Mutex::new(reissue_core::metrics::LogHistogram::latency_ms()),
                governor,
                cancellation: cfg.cancellation,
                load,
            }),
        })
    }

    /// The executor, for spawning concurrent load generators.
    pub fn runtime(&self) -> &Runtime {
        &self.inner.rt
    }

    /// The budget governor in force, if any (owned or shared).
    pub fn governor(&self) -> Option<&Arc<BudgetGovernor>> {
        self.inner.governor.as_ref()
    }

    /// The current policy (live view; moves as the adapter re-optimizes).
    pub fn policy(&self) -> ReissuePolicy {
        self.inner.state.lock().unwrap().policy.clone()
    }

    /// The online adapter's current `(d, q)` record with its budget
    /// accounting, if online adaptation is enabled.
    pub fn online_policy(&self) -> Option<reissue_core::optimizer::OptimalSingleR> {
        let st = self.inner.state.lock().unwrap();
        st.adapter.as_ref().map(|a| a.policy())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HedgeStats {
        let c = &self.inner.counters;
        HedgeStats {
            queries: c.queries.load(Ordering::Relaxed),
            reissues: c.reissues.load(Ordering::Relaxed),
            reissues_by_stage: std::array::from_fn(|i| {
                c.reissues_by_stage[i].load(Ordering::Relaxed)
            }),
            reissue_wins: c.reissue_wins.load(Ordering::Relaxed),
            cancelled_in_time: c.cancelled_in_time.load(Ordering::Relaxed),
            pairs_exact: c.pairs_exact.load(Ordering::Relaxed),
            pairs_censored: c.pairs_censored.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    /// Reissue dispatches per replica index — the live targeting
    /// distribution (see `ReplicaSet::pick_reissue_excluding`).
    pub fn reissue_target_counts(&self) -> Vec<u64> {
        self.inner
            .counters
            .reissue_targets
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The health EWMAs for replica `idx`: `(latency_ewma_ms,
    /// error_ewma)`.
    pub fn replica_health(&self, idx: usize) -> (f64, f64) {
        let h = self.inner.replicas.replica(idx).health();
        (h.latency_ewma_ms(), h.error_ewma())
    }

    /// Whether the online adapter's most recent re-optimization used
    /// the §4.2 correlated optimizer (`None` when online adaptation is
    /// off).
    pub fn online_correlated(&self) -> Option<bool> {
        let st = self.inner.state.lock().unwrap();
        st.adapter.as_ref().map(|a| a.using_correlated())
    }

    /// The client's current utilization estimate ρ̂ ∈ `[0, 1]`, when
    /// utilization-aware hedging is on (`OnlineConfig::load`); `None`
    /// otherwise. Zero until the load signal warms up.
    pub fn utilization(&self) -> Option<f64> {
        self.inner.load.as_ref().map(|l| l.utilization())
    }

    /// A snapshot of every load-signal estimator (offered rate,
    /// in-flight, service estimate, ρ̂), when utilization-aware
    /// hedging is on.
    pub fn load_snapshot(&self) -> Option<LoadSnapshot> {
        self.inner.load.as_ref().map(|l| l.snapshot())
    }

    /// The adapter's current *effective* (load-damped) reissue budget,
    /// when online adaptation is on.
    pub fn online_effective_budget(&self) -> Option<f64> {
        let st = self.inner.state.lock().unwrap();
        st.adapter.as_ref().map(|a| a.effective_budget())
    }

    /// Number of completed queries slower than `threshold_ms`, at the
    /// latency histogram's bucket resolution.
    pub fn latencies_over(&self, threshold_ms: f64) -> usize {
        self.inner
            .latencies_ms
            .lock()
            .unwrap()
            .count_over(threshold_ms) as usize
    }

    /// Quantile of end-to-end query latencies (ms) over all
    /// completions, within the histogram's 1% relative error.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.inner
            .latencies_ms
            .lock()
            .unwrap()
            .quantile(q.clamp(0.0, 1.0))
    }

    /// A snapshot of the full latency histogram (log-bucketed; see
    /// [`reissue_core::metrics::LogHistogram`]).
    pub fn latency_histogram(&self) -> reissue_core::metrics::LogHistogram {
        self.inner.latencies_ms.lock().unwrap().clone()
    }

    /// Executes one command with hedging; resolves to the winning
    /// reply. The returned future is `'static`: spawn any number
    /// concurrently.
    pub fn execute(
        &self,
        cmd: Command,
    ) -> impl std::future::Future<Output = Result<Reply, TransportError>> + Send + 'static {
        let inner = self.inner.clone();
        async move {
            // Sample the primary and the full reissue schedule
            // up-front (every stage coin is independent of completion
            // status, so flipping now is distributionally identical);
            // each stage's *target* is chosen at fire time, when
            // health information is current.
            let primary_idx = inner.replicas.pick_primary();
            let schedule: Vec<(usize, f64)> = {
                let mut st = inner.state.lock().unwrap();
                let st = &mut *st;
                st.policy.sample_schedule_indexed(&mut st.rng)
            };

            let started = Instant::now();
            if let Some(load) = &inner.load {
                load.query_start();
                load.note_dispatch();
            }
            let primary_token = CancelToken::new();
            // Tied cancellation: register the primary under a fresh
            // tie id whenever a reissue *may* follow (non-empty
            // schedule), so a first reissue can name it as the peer to
            // retract at dequeue time.
            let primary_tie = (inner.cancellation == CancellationStyle::Tied
                && !schedule.is_empty())
            .then(|| TieSpec {
                id: next_tie_id(),
                peer: None,
            });
            let primary = inner.replicas.replica(primary_idx).request_tied(
                cmd.clone(),
                primary_token.clone(),
                primary_tie,
            );

            let outcome = if schedule.is_empty() {
                primary.await.map(|r| (r, false))
            } else {
                inner
                    .clone()
                    .staged_race(
                        &cmd,
                        primary,
                        primary_token,
                        primary_idx,
                        primary_tie,
                        started,
                        &schedule,
                    )
                    .await
            };

            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            // Lightweight tail tracing: HEDGE_DEBUG=1 reports every
            // query slower than 10 ms and whether it had hedged.
            if elapsed_ms > 10.0 && std::env::var_os("HEDGE_DEBUG").is_some() {
                eprintln!("[hedge] slow {elapsed_ms:.2}ms armed={schedule:?} cmd={cmd:?}");
            }
            inner.counters.queries.fetch_add(1, Ordering::Relaxed);
            if let Some(g) = &inner.governor {
                g.note_query();
            }
            if let Some(load) = &inner.load {
                load.query_end(outcome.is_ok().then_some(elapsed_ms));
            }
            match outcome {
                Ok((reply, raced)) => {
                    inner.latencies_ms.lock().unwrap().record(elapsed_ms);
                    // Un-raced completions feed the primary stream
                    // directly. Raced hedges are *not* observed here:
                    // their joint (primary, reissue) outcome — exact or
                    // censored — is assembled by the `RaceBook` once
                    // both participants resolve, so the adapter sees
                    // correlated pairs instead of two unpaired streams.
                    // Retracted losers arrive as censored bounds rather
                    // than being dropped, so the straggler mass that
                    // cancellation used to hide from the optimizer now
                    // reaches it through the Kaplan–Meier completion.
                    if !raced {
                        inner.observe(Observation::Primary(elapsed_ms));
                    }
                    Ok(reply)
                }
                Err(e) => {
                    inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Err(e)
                }
            }
        }
    }

    /// Blocking convenience wrapper around [`HedgedClient::execute`].
    pub fn execute_blocking(&self, cmd: Command) -> Result<Reply, TransportError> {
        let fut = self.execute(cmd);
        self.inner.rt.block_on(fut)
    }
}

enum Observation {
    Primary(f64),
    Reissue(f64),
    /// A raced hedge's joint outcome; either side may be censored
    /// (lower bound only) when the loser's retraction landed in time.
    Pair {
        primary: Obs,
        reissue: Obs,
    },
}

/// One speculative arm of a staged race.
struct AttemptMeta {
    token: CancelToken,
    dispatched: Instant,
    kind: AttemptKind,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AttemptKind {
    Primary,
    /// `dispatch_order` counts dispatched reissues (0 = first actually
    /// sent), independent of policy stage index: coins and the
    /// governor may skip stages, and the adapter's pair is always
    /// (primary, *first dispatched* reissue).
    Reissue {
        dispatch_order: usize,
    },
}

/// Fate of one pair participant, as it becomes known.
#[derive(Clone, Copy)]
enum SideState {
    Pending,
    Known(Obs),
    /// Transport failure: no usable observation from this side.
    Failed,
}

/// Assembles the adapter's joint `(primary, first reissue)`
/// observation from sides that resolve at different times — the winner
/// synchronously, each loser whenever its drain completes. Whichever
/// report fills the second slot emits the observation.
struct RaceBook {
    primary: SideState,
    reissue: SideState,
}

impl HcInner {
    /// Whether the budget governor permits one more reissue right now
    /// (see [`BudgetGovernor::allows`]; always true without one).
    fn governor_allows(&self) -> bool {
        self.governor.as_ref().is_none_or(|g| g.allows())
    }

    /// Feeds one latency observation to the adapter and refreshes the
    /// live policy from it — the serving-time re-optimization loop.
    fn observe(&self, obs: Observation) {
        let mut st = self.state.lock().unwrap();
        let Some(adapter) = st.adapter.as_mut() else {
            return;
        };
        // Push the freshest load estimate first: with
        // `OnlineConfig::load` set this rescales the live reissue
        // probability immediately, so the policy tracks a load ramp
        // between re-optimizations.
        if let Some(load) = &self.load {
            adapter.set_utilization(load.utilization());
        }
        match obs {
            Observation::Primary(ms) => adapter.observe_primary(ms),
            Observation::Reissue(ms) => adapter.observe_reissue(ms),
            Observation::Pair { primary, reissue } => match (primary, reissue) {
                (Obs::Exact(x), Obs::Exact(y)) => {
                    adapter.observe_pair(x, ReissueOutcome::Completed(y));
                }
                (Obs::Exact(x), Obs::Censored(lb)) => {
                    adapter.observe_pair(x, ReissueOutcome::Censored(lb));
                }
                (Obs::Censored(lb), Obs::Exact(y)) => {
                    adapter.observe_pair_censored_primary(lb, y);
                }
                // Both sides censored (a later-stage reissue won the
                // race, so the primary *and* the first reissue were
                // both retracted): two lower bounds with no completed
                // side to anchor them carry nothing the KM completion
                // can use, so the pair is dropped (see `report_side`,
                // which doesn't count it either).
                (Obs::Censored(_), Obs::Censored(_)) => {}
            },
        }
        let live = adapter.policy();
        if live.probability > 0.0 && live.delay.is_finite() && live.delay >= 0.0 {
            st.policy = ReissuePolicy::single_r(live.delay, live.probability.clamp(0.0, 1.0));
        }
    }

    /// Races the primary against a full MultipleR schedule: each stage
    /// deadline (measured from the primary dispatch) that fires while
    /// the query is outstanding dispatches one more reissue — governor
    /// permitting — and every attempt races every other through one
    /// [`select_all`]. The first *successful* completion wins; all
    /// still-pending losers are cancelled and drained asynchronously.
    ///
    /// An attempt that resolves with a transport error does **not**
    /// decide the race — hedging must never fail a query another
    /// in-flight (or still-armed) attempt could save, and a crashed
    /// replica fails *fast*, which would otherwise make it the
    /// likeliest "winner". The failed attempt just drops out; its
    /// error surfaces only once every attempt and every remaining
    /// stage is exhausted.
    ///
    /// Returns `(reply, raced)` where `raced` records whether any
    /// reissue was actually dispatched.
    #[allow(clippy::too_many_arguments)]
    async fn staged_race(
        self: Arc<Self>,
        cmd: &Command,
        primary: crate::transport::InFlight,
        primary_token: CancelToken,
        primary_idx: usize,
        primary_tie: Option<TieSpec>,
        started: Instant,
        schedule: &[(usize, f64)],
    ) -> Result<(Reply, bool), TransportError> {
        let mut futs = vec![primary];
        let mut meta = vec![AttemptMeta {
            token: primary_token,
            dispatched: started,
            kind: AttemptKind::Primary,
        }];
        // (stage index, delay ms, deadline). FIFO: a stage denied by
        // the governor re-asks later and blocks the stages behind it,
        // so dispatch order always follows stage order.
        let mut pending: VecDeque<(usize, f64, Instant)> = schedule
            .iter()
            .map(|&(stage, delay_ms)| {
                (
                    stage,
                    delay_ms,
                    started + Duration::from_secs_f64(delay_ms.max(0.0) / 1e3),
                )
            })
            .collect();
        let mut targets = vec![primary_idx];
        let mut dispatched_reissues = 0usize;
        // Attempts that resolved with a transport error mid-race; pair
        // participants among them report `Failed` to the book below.
        let mut failed_kinds: Vec<AttemptKind> = Vec::new();
        // Attempts the *server* retracted mid-race — a tied peer's
        // dequeue-time cancel resolves the loser with `Cancelled`
        // before this client ever cancels it. Each carries its
        // elapsed-at-retraction censoring bound for the pair book.
        let mut cancelled_kinds: Vec<(AttemptKind, f64)> = Vec::new();
        let mut last_err = TransportError::ConnectionClosed;

        let (win_idx, reply, losers) = loop {
            if futs.is_empty() {
                // Every dispatched attempt has failed. Rescue from the
                // remaining schedule *now* — waiting out a stage
                // deadline only adds latency to a query that already
                // has nothing in flight — or give up when the stages
                // (or the governor's quota) run out.
                let Some(&(stage, _, _)) = pending.front() else {
                    return Err(last_err);
                };
                if !self.governor_allows() {
                    return Err(last_err);
                }
                pending.pop_front();
                let tie = self.first_reissue_tie(primary_tie, primary_idx, dispatched_reissues);
                self.dispatch_stage(
                    cmd,
                    stage,
                    tie,
                    &mut targets,
                    &mut dispatched_reissues,
                    &mut futs,
                    &mut meta,
                );
                continue;
            }
            let (i, out, rest) = if let Some(&(stage, delay_ms, deadline)) = pending.front() {
                match race(select_all(futs), self.rt.sleep_until(deadline)).await {
                    Either::Left((sel_out, _timer)) => sel_out,
                    Either::Right((sel, ())) => {
                        futs = sel.into_futures();
                        if !self.governor_allows() {
                            // No quota: re-ask one stage-delay later
                            // (with a small floor so a d=0 stage cannot
                            // hot-spin). A query still outstanding
                            // after several delays is precisely the
                            // straggler hedging exists for, and
                            // re-asking gives it priority over the
                            // steady trickle of marginal just-past-d
                            // hedges that would otherwise consume the
                            // quota first-come-first-served.
                            let interval = Duration::from_secs_f64(delay_ms.max(0.1) / 1e3);
                            pending.front_mut().expect("stage present").2 =
                                Instant::now() + interval;
                            continue;
                        }
                        pending.pop_front();
                        let tie =
                            self.first_reissue_tie(primary_tie, primary_idx, dispatched_reissues);
                        self.dispatch_stage(
                            cmd,
                            stage,
                            tie,
                            &mut targets,
                            &mut dispatched_reissues,
                            &mut futs,
                            &mut meta,
                        );
                        continue;
                    }
                }
            } else {
                // Schedule exhausted: plain race of what is in flight.
                select_all(futs).await
            };
            match out {
                Ok(reply) => break (i, reply, rest),
                Err(TransportError::Cancelled) => {
                    // A tied peer retracted this attempt server-side:
                    // a clean in-time cancel, not a failure. Record
                    // the censoring bound now (the attempt had been
                    // outstanding exactly this long when the
                    // retraction confirmed) and keep racing the rest.
                    let m = meta.remove(i);
                    self.counters
                        .cancelled_in_time
                        .fetch_add(1, Ordering::Relaxed);
                    let ms = m.dispatched.elapsed().as_secs_f64() * 1e3;
                    cancelled_kinds.push((m.kind, ms));
                    last_err = TransportError::Cancelled;
                    futs = rest;
                }
                Err(e) => {
                    // Drop the failed attempt from the race and keep
                    // the survivors (and the schedule) going.
                    failed_kinds.push(meta.remove(i).kind);
                    last_err = e;
                    futs = rest;
                }
            }
        };

        let raced = dispatched_reissues > 0;
        let winner = meta.remove(win_idx); // `losers` aligns with `meta` now
        if matches!(winner.kind, AttemptKind::Reissue { .. }) {
            self.counters.reissue_wins.fetch_add(1, Ordering::Relaxed);
        }
        for m in &meta {
            m.token.cancel();
        }

        if raced {
            let book = Arc::new(Mutex::new(RaceBook {
                primary: SideState::Pending,
                reissue: SideState::Pending,
            }));
            // The winner's side is known right now; losers report as
            // their drains resolve and mid-race failures report
            // `Failed` immediately. A winner that is a *later-stage*
            // reissue is outside the pair — both pair sides then
            // arrive via the other two routes.
            let win_ms = winner.dispatched.elapsed().as_secs_f64() * 1e3;
            match winner.kind {
                AttemptKind::Primary => {
                    self.report_side(&book, true, SideState::Known(Obs::Exact(win_ms)));
                }
                AttemptKind::Reissue { dispatch_order: 0 } => {
                    self.report_side(&book, false, SideState::Known(Obs::Exact(win_ms)));
                }
                AttemptKind::Reissue { .. } => {}
            }
            for kind in failed_kinds {
                match kind {
                    AttemptKind::Primary => self.report_side(&book, true, SideState::Failed),
                    AttemptKind::Reissue { dispatch_order: 0 } => {
                        self.report_side(&book, false, SideState::Failed);
                    }
                    AttemptKind::Reissue { .. } => {}
                }
            }
            for (kind, ms) in cancelled_kinds {
                match kind {
                    AttemptKind::Primary => {
                        self.report_side(&book, true, SideState::Known(Obs::Censored(ms)));
                    }
                    AttemptKind::Reissue { dispatch_order: 0 } => {
                        self.report_side(&book, false, SideState::Known(Obs::Censored(ms)));
                    }
                    AttemptKind::Reissue { .. } => {}
                }
            }
            for (fut, m) in losers.into_iter().zip(meta) {
                match m.kind {
                    AttemptKind::Primary => {
                        self.clone()
                            .drain_into_book(fut, m.dispatched, book.clone(), true);
                    }
                    AttemptKind::Reissue { dispatch_order: 0 } => {
                        self.clone()
                            .drain_into_book(fut, m.dispatched, book.clone(), false);
                    }
                    AttemptKind::Reissue { .. } => {
                        self.clone().drain_marginal(fut, m.dispatched);
                    }
                }
            }
        }
        Ok((reply, raced))
    }

    /// The tie to attach to the next reissue, if it is the *first*
    /// dispatched reissue of a tied query: a fresh id naming the
    /// primary's `(replica address, tie id)` as the peer to retract at
    /// dequeue time. Later stages (and untied queries) get `None`.
    fn first_reissue_tie(
        &self,
        primary_tie: Option<TieSpec>,
        primary_idx: usize,
        dispatched_reissues: usize,
    ) -> Option<TieSpec> {
        if dispatched_reissues > 0 {
            return None;
        }
        primary_tie.map(|pt| TieSpec {
            id: next_tie_id(),
            peer: Some((self.replicas.replica(primary_idx).addr(), pt.id)),
        })
    }

    /// Dispatches one stage's reissue into an ongoing race: counts it
    /// (total, per-stage, per-target), targets the healthiest replica
    /// not already carrying this query, and registers the attempt.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_stage(
        &self,
        cmd: &Command,
        stage: usize,
        tie: Option<TieSpec>,
        targets: &mut Vec<usize>,
        dispatched_reissues: &mut usize,
        futs: &mut Vec<crate::transport::InFlight>,
        meta: &mut Vec<AttemptMeta>,
    ) {
        self.counters.reissues.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = &self.governor {
            g.note_reissue();
        }
        // Every attempt put on the wire feeds the offered-rate
        // estimate — hedging's own load contribution is part of the
        // utilization it must react to.
        if let Some(load) = &self.load {
            load.note_dispatch();
        }
        self.counters.reissues_by_stage[stage.min(MAX_STAGES - 1)].fetch_add(1, Ordering::Relaxed);
        let idx = self.replicas.pick_reissue_excluding(targets);
        targets.push(idx);
        if let Some(c) = self.counters.reissue_targets.get(idx) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let token = CancelToken::new();
        futs.push(
            self.replicas
                .replica(idx)
                .request_tied(cmd.clone(), token.clone(), tie),
        );
        meta.push(AttemptMeta {
            token,
            dispatched: Instant::now(),
            kind: AttemptKind::Reissue {
                dispatch_order: *dispatched_reissues,
            },
        });
        *dispatched_reissues += 1;
    }

    /// Asynchronously drains a pair participant that lost its race and
    /// reports its fate to the [`RaceBook`]:
    ///
    /// * loser **completed** → exact observation (its response time is
    ///   a valid sample of its stream, now paired with the other
    ///   side's);
    /// * loser **retracted in time** → censored: all we know is it had
    ///   been outstanding for `dispatched.elapsed()` when the
    ///   retraction confirmed, a lower bound on the response time it
    ///   would have had;
    /// * loser failed at the transport → no usable observation; the
    ///   other side feeds its marginal stream alone.
    fn drain_into_book(
        self: Arc<Self>,
        loser: crate::transport::InFlight,
        dispatched: Instant,
        book: Arc<Mutex<RaceBook>>,
        is_primary: bool,
    ) {
        let rt = self.rt.clone();
        rt.spawn(async move {
            let ms = |d: Instant| d.elapsed().as_secs_f64() * 1e3;
            let side = match loser.await {
                Ok(_) => SideState::Known(Obs::Exact(ms(dispatched))),
                Err(TransportError::Cancelled) => {
                    self.counters
                        .cancelled_in_time
                        .fetch_add(1, Ordering::Relaxed);
                    SideState::Known(Obs::Censored(ms(dispatched)))
                }
                Err(_) => SideState::Failed,
            };
            self.report_side(&book, is_primary, side);
        });
    }

    /// Asynchronously drains a later-stage loser (outside the pair):
    /// completions feed the marginal reissue stream; retractions count
    /// the cancel but yield no marginal sample (a censored bound is
    /// only usable jointly, and the pair already carries this query's
    /// joint outcome).
    fn drain_marginal(self: Arc<Self>, loser: crate::transport::InFlight, dispatched: Instant) {
        let rt = self.rt.clone();
        rt.spawn(async move {
            match loser.await {
                Ok(_) => {
                    let ms = dispatched.elapsed().as_secs_f64() * 1e3;
                    self.observe(Observation::Reissue(ms));
                }
                Err(TransportError::Cancelled) => {
                    self.counters
                        .cancelled_in_time
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {}
            }
        });
    }

    /// Records one side of the raced pair; the report that completes
    /// the book emits the joint observation (and the pair counters).
    fn report_side(&self, book: &Mutex<RaceBook>, is_primary: bool, side: SideState) {
        let (primary, reissue) = {
            let mut b = book.lock().unwrap();
            if is_primary {
                b.primary = side;
            } else {
                b.reissue = side;
            }
            match (b.primary, b.reissue) {
                (SideState::Pending, _) | (_, SideState::Pending) => return,
                (p, r) => (p, r),
            }
        };
        match (primary, reissue) {
            (SideState::Known(p), SideState::Known(r)) => {
                // Both censored (a later-stage reissue won the race)
                // carries no completable information; the adapter
                // drops it, so don't count it as a pair either.
                match (p.is_censored(), r.is_censored()) {
                    (false, false) => {
                        self.counters.pairs_exact.fetch_add(1, Ordering::Relaxed);
                    }
                    (true, true) => {}
                    _ => {
                        self.counters.pairs_censored.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.observe(Observation::Pair {
                    primary: p,
                    reissue: r,
                });
            }
            (SideState::Known(Obs::Exact(p)), SideState::Failed) => {
                self.observe(Observation::Primary(p));
            }
            (SideState::Failed, SideState::Known(Obs::Exact(r))) => {
                self.observe(Observation::Reissue(r));
            }
            _ => {}
        }
    }
}
