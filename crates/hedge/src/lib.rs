//! Speculative-execution runtime: hedged (reissued) requests against
//! real TCP kvstore replicas, driven by any of the paper's policy
//! families — SingleD, SingleR, and multi-stage MultipleR schedules.
//!
//! The sibling crates *choose* reissue policies; this crate *executes*
//! them. It turns the reproduction from a calculator into a serving
//! system:
//!
//! * [`rt`] — a minimal multi-threaded async executor with timers and
//!   a [`rt::race`] combinator (the environment cannot fetch tokio, so
//!   the runtime is ~300 lines of `std`).
//! * [`sync`] — oneshot channels and the [`sync::CancelToken`]
//!   propagated from a hedged query to the backend.
//! * [`server`] — [`server::TcpServer`]: the kvstore behind real
//!   sockets with wall-clock service times, a pluggable queue
//!   discipline ([`server::Discipline`], shared with the simulator),
//!   client-driven retraction (`CANCEL <seq>`), and server-side tied
//!   requests that cancel the peer copy at *dequeue* time over a
//!   replica-to-replica channel.
//! * [`transport`] — [`transport::ReplicaSet`]: pooled async RESP
//!   connections per replica, each replica carrying a
//!   [`transport::ReplicaHealth`] latency/error EWMA that drives
//!   reissue targeting (and demotes sick replicas until they heal).
//! * [`client`] — [`client::HedgedClient`]: dispatch the primary, arm
//!   the policy's full stage schedule `(d₁,q₁), …, (dₙ,qₙ)`, race all
//!   in-flight attempts, cancel every loser, and feed observations to
//!   `reissue_core::online::OnlineAdapter` so the policy re-optimizes
//!   while serving. Raced hedges are fed as joint `(primary, first
//!   reissue)` pairs — censored at the loser's elapsed-at-retraction
//!   bound when the tied-request cancel landed in time — which lets
//!   the adapter run the §4.2 *correlated* optimizer once
//!   `OnlineConfig::min_pairs` pairs accumulate, instead of the
//!   independence model that overvalues hedging the just-past-`d`
//!   noise band.
//! * [`harness`] — the scale-out experiment harness:
//!   [`harness::Cluster`] (programmatic N-replica TCP clusters with
//!   live per-replica sickness scripting) and an open-loop
//!   Poisson/burst load generator with bounded admission,
//!   backpressure accounting, and streaming latency histograms — the
//!   machinery behind the TCP figure sweeps and the cluster example.
//!
//! ## Quickstart
//!
//! ```no_run
//! use hedge::{HedgeConfig, HedgedClient, TcpServer, TcpServerConfig};
//! use kvstore::Command;
//! use kvstore::KvStore;
//! use reissue_core::online::OnlineConfig;
//! use reissue_core::policy::ReissuePolicy;
//!
//! // Three replicas of the same dataset, on real sockets.
//! let store = KvStore::new();
//! let replicas = hedge::spawn_replicas(
//!     3,
//!     &store,
//!     TcpServerConfig { nanos_per_op: 200, ..TcpServerConfig::default() },
//! ).unwrap();
//! let addrs: Vec<_> = replicas.iter().map(|r| r.local_addr()).collect();
//!
//! // A client that starts unhedged and lets the online adapter find
//! // (d, q) for a 5% reissue budget targeting P99, switching to the
//! // correlated optimizer once 64 raced pairs accumulate.
//! let client = HedgedClient::connect(&addrs, HedgeConfig {
//!     policy: ReissuePolicy::None,
//!     online: Some(OnlineConfig {
//!         k: 0.99,
//!         budget: 0.05,
//!         window: 2_000,
//!         reoptimize_every: 500,
//!         learning_rate: 0.5,
//!         min_pairs: 64,
//!         load: None,
//!     }),
//!     ..HedgeConfig::default()
//! }).unwrap();
//!
//! let reply = client.execute_blocking(Command::Ping).unwrap();
//! println!("{reply:?}, policy now {}", client.policy());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod rt;
pub mod server;
pub mod sync;
pub mod transport;

pub use client::{
    next_tie_id, BudgetGovernor, CancellationStyle, HedgeConfig, HedgeStats, HedgedClient,
    MAX_STAGES,
};
pub use harness::{
    run_open_loop, Arrivals, Cluster, LoadClient, LoadConfig, LoadReport, SicknessEvent,
};
pub use rt::{race, select_all, Either, JoinHandle, Runtime, SelectAll, Sleep};
pub use server::{spawn_replicas, Discipline, TcpServer, TcpServerConfig, TieStats};
pub use sync::CancelToken;
pub use transport::{InFlight, Replica, ReplicaHealth, ReplicaSet, TieSpec, TransportError};
