//! Async RESP client transport: per-replica connection pools, one
//! in-flight request per connection, cancellation propagated on the
//! wire.
//!
//! Each pooled connection owns a dedicated I/O thread (blocking
//! sockets; the async layer above parks on oneshot futures). Requests
//! are sequence-numbered per connection; cancelling an in-flight
//! request writes `CANCEL <seq>` on the same connection, which the
//! server answers with the `-ERR cancelled` marker if it managed to
//! retract the frame (see [`crate::server`]). Either way every request
//! gets exactly one reply, so the connection re-synchronizes by
//! construction.

use crate::sync::{oneshot, CancelToken, RecvFuture, Sender};
use bytes::BytesMut;
use kvstore::resp::{decode_reply, encode_command};
use kvstore::{Command, Reply};

use std::future::Future;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::task::{Context, Poll};
use std::time::Duration;

use crate::server::CANCELLED_MARKER;

/// Transport-level failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The request was cancelled (tied-request retraction) before it
    /// executed.
    Cancelled,
    /// The connection died before a reply arrived.
    ConnectionClosed,
    /// Socket-level failure.
    Io(String),
    /// The peer broke the RESP protocol.
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Cancelled => f.write_str("request cancelled"),
            TransportError::ConnectionClosed => f.write_str("connection closed"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// RAII share of a connection's in-flight count. Owned by the [`Job`]
/// so the decrement happens exactly once wherever the job ends up —
/// completed by the I/O thread, dropped in the queue when the
/// connection dies, or bounced by a failed send.
struct InflightTicket(Arc<AtomicU64>);

impl InflightTicket {
    fn new(counter: &Arc<AtomicU64>) -> Self {
        counter.fetch_add(1, Ordering::Relaxed);
        InflightTicket(counter.clone())
    }
}

impl Drop for InflightTicket {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

struct Job {
    cmd: Command,
    token: CancelToken,
    reply: Sender<Result<Reply, TransportError>>,
    _ticket: InflightTicket,
}

/// One pooled connection: a job queue feeding a dedicated I/O thread.
struct Conn {
    // None only during drop (closing the channel ends the I/O loop).
    jobs: Option<mpsc::Sender<Job>>,
    inflight: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// An async client for one kvstore replica, holding `pool` TCP
/// connections. Requests round-robin across idle-most connections;
/// each connection serves its queue in FIFO order with exactly one
/// request on the wire at a time.
pub struct Replica {
    addr: SocketAddr,
    conns: Vec<Conn>,
    next: AtomicUsize,
}

impl Replica {
    /// Connects `pool` sockets to `addr`.
    pub fn connect(addr: SocketAddr, pool: usize) -> std::io::Result<Replica> {
        let conns = (0..pool.max(1))
            .map(|i| {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_millis(20)))?;
                let writer = stream.try_clone()?;
                let (tx, rx) = mpsc::channel::<Job>();
                let inflight = Arc::new(AtomicU64::new(0));
                let handle = std::thread::Builder::new()
                    .name(format!("hedge-conn-{addr}-{i}"))
                    .spawn(move || conn_loop(stream, writer, &rx))
                    .expect("spawn connection I/O thread");
                Ok(Conn {
                    jobs: Some(tx),
                    inflight,
                    handle: Some(handle),
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Replica {
            addr,
            conns,
            next: AtomicUsize::new(0),
        })
    }

    /// The replica's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently queued or on the wire across this replica's
    /// pool — the hedging layer's load signal.
    pub fn inflight(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.inflight.load(Ordering::Relaxed))
            .sum()
    }

    /// Dispatches `cmd`, returning the in-flight reply future.
    /// Cancelling `token` retracts the request if it has not executed
    /// yet (the future then resolves to
    /// [`TransportError::Cancelled`]).
    pub fn request(&self, cmd: Command, token: CancelToken) -> InFlight {
        // CANCEL frames are transport-internal (emitted by the cancel
        // path with the right sequence number); a hand-sent one would
        // desynchronize the reply stream, so refuse it here.
        if matches!(cmd, Command::Cancel(_)) {
            let (tx, rx) = oneshot();
            let _ = tx.send(Err(TransportError::Protocol(
                "CANCEL is sent via CancelToken, not as a request".into(),
            )));
            return InFlight { rx: rx.recv() };
        }
        // Prefer the least-loaded connection; break ties round-robin.
        let start = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        let pick = (0..self.conns.len())
            .map(|off| (start + off) % self.conns.len())
            .min_by_key(|&i| self.conns[i].inflight.load(Ordering::Relaxed))
            .unwrap_or(start);
        let conn = &self.conns[pick];
        let (tx, rx) = oneshot();
        let job = Job {
            cmd,
            token,
            reply: tx,
            _ticket: InflightTicket::new(&conn.inflight),
        };
        if let Some(jobs) = &conn.jobs {
            // On send failure the bounced job drops here, releasing
            // its ticket; the dropped reply Sender resolves the future
            // to Canceled, mapped to ConnectionClosed below.
            let _ = jobs.send(job);
        }
        InFlight { rx: rx.recv() }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        for conn in &mut self.conns {
            // Closing the channel ends the I/O thread's job loop once
            // the in-flight job (if any) finishes.
            conn.jobs = None;
            if let Some(h) = conn.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Future for a dispatched request. `Unpin`, so it can be raced.
pub struct InFlight {
    rx: RecvFuture<Result<Reply, TransportError>>,
}

impl Future for InFlight {
    type Output = Result<Reply, TransportError>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Ok(r)) => Poll::Ready(r),
            Poll::Ready(Err(_)) => Poll::Ready(Err(TransportError::ConnectionClosed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

fn conn_loop(mut stream: TcpStream, writer: TcpStream, jobs: &mpsc::Receiver<Job>) {
    // The writer must be shareable with cancel callbacks, which run on
    // other threads while this thread is blocked reading the reply.
    let writer = Arc::new(Mutex::new(writer));
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 16 * 1024];
    // Sequence numbers count commands actually sent on the wire — the
    // server counts the same way, so they stay aligned. A job
    // cancelled before dispatch must NOT consume a number.
    let mut seq: u64 = 0;

    'jobs: for job in jobs.iter() {
        // Cancelled while queued: never touches the wire.
        if job.token.is_cancelled() {
            let _ = job.reply.send(Err(TransportError::Cancelled));
            continue;
        }
        let my_seq = seq;
        seq += 1;
        let dispatched = std::time::Instant::now();
        let mut frame = BytesMut::new();
        encode_command(&job.cmd, &mut frame);
        if let Err(e) = writer.lock().unwrap().write_all(&frame) {
            let _ = job.reply.send(Err(TransportError::Io(e.to_string())));
            return;
        }
        // From here the request is on the wire: exactly one reply will
        // come back. A cancel now races ahead on the same socket.
        let done = Arc::new(AtomicBool::new(false));
        {
            let done = done.clone();
            let writer = writer.clone();
            job.token.on_cancel(move || {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                let mut cancel_frame = BytesMut::new();
                encode_command(&Command::Cancel(my_seq), &mut cancel_frame);
                let _ = writer.lock().unwrap().write_all(&cancel_frame);
            });
        }
        // Read exactly one reply (blocking with periodic timeouts).
        let reply = loop {
            match decode_reply(&mut buf) {
                Ok(Some(r)) => break Ok(r),
                Ok(None) => {}
                Err(e) => break Err(TransportError::Protocol(e.to_string())),
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    done.store(true, Ordering::SeqCst);
                    let _ = job.reply.send(Err(TransportError::ConnectionClosed));
                    break 'jobs;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => {
                    done.store(true, Ordering::SeqCst);
                    let _ = job.reply.send(Err(TransportError::Io(e.to_string())));
                    break 'jobs;
                }
            }
        };
        done.store(true, Ordering::SeqCst);
        let outcome = match reply {
            Ok(Reply::Error(e)) if e == CANCELLED_MARKER => Err(TransportError::Cancelled),
            other => other,
        };
        if std::env::var_os("HEDGE_DEBUG").is_some() {
            let took = dispatched.elapsed().as_secs_f64() * 1e3;
            if took > 10.0 {
                eprintln!(
                    "[conn {:?}] seq={my_seq} took {took:.2}ms cmd={:?} outcome={outcome:?}",
                    std::thread::current().name(),
                    job.cmd,
                );
            }
        }
        let _ = job.reply.send(outcome);
    }
}

/// The set of replica backends a [`crate::HedgedClient`] hedges
/// across.
pub struct ReplicaSet {
    replicas: Vec<Arc<Replica>>,
    next: AtomicUsize,
}

impl ReplicaSet {
    /// Connects to every address with `pool` connections each.
    pub fn connect(addrs: &[SocketAddr], pool: usize) -> std::io::Result<ReplicaSet> {
        assert!(!addrs.is_empty(), "need at least one replica");
        let replicas = addrs
            .iter()
            .map(|&a| Replica::connect(a, pool).map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ReplicaSet {
            replicas,
            next: AtomicUsize::new(0),
        })
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica at `idx`.
    pub fn replica(&self, idx: usize) -> &Replica {
        &self.replicas[idx]
    }

    /// Picks the next primary replica, round-robin.
    pub fn pick_primary(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % self.replicas.len()
    }

    /// Picks the reissue target: the least-loaded replica other than
    /// the primary (falls back to the primary itself in a 1-replica
    /// set). Load-aware targeting matters under queries of death: the
    /// replica the monster's own reissue landed on is just as blocked
    /// as its primary, and in-flight counts see that where static
    /// `(p + 1) % n` cannot.
    pub fn pick_reissue(&self, primary: usize) -> usize {
        (0..self.replicas.len())
            .filter(|&i| i != primary)
            .min_by_key(|&i| self.replicas[i].inflight())
            .unwrap_or(primary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::Runtime;
    use crate::server::{TcpServer, TcpServerConfig};
    use kvstore::KvStore;

    #[test]
    fn request_roundtrip_through_pool() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let replica = Replica::connect(server.local_addr(), 2).unwrap();
        let rt = Runtime::new(2);
        let reply = rt
            .block_on(replica.request(Command::Ping, CancelToken::new()))
            .unwrap();
        assert_eq!(reply, Reply::Pong);
        // Writes visible across pooled connections (same store).
        rt.block_on(replica.request(Command::Set("a".into(), "1".into()), CancelToken::new()))
            .unwrap();
        for _ in 0..4 {
            let r = rt
                .block_on(replica.request(Command::Get("a".into()), CancelToken::new()))
                .unwrap();
            assert_eq!(r, Reply::Str("1".into()));
        }
        server.shutdown();
    }

    #[test]
    fn pre_dispatch_cancel_never_hits_wire() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let replica = Replica::connect(server.local_addr(), 1).unwrap();
        let rt = Runtime::new(1);
        let token = CancelToken::new();
        token.cancel();
        let out = rt.block_on(replica.request(Command::Ping, token));
        assert_eq!(out, Err(TransportError::Cancelled));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(server.stats().commands, 0, "nothing should execute");
        server.shutdown();
    }
}
