//! Async RESP client transport: per-replica connection pools, one
//! in-flight request per connection, cancellation propagated on the
//! wire.
//!
//! Each pooled connection owns a dedicated I/O thread (blocking
//! sockets; the async layer above parks on oneshot futures). Requests
//! are sequence-numbered per connection; cancelling an in-flight
//! request writes `CANCEL <seq>` on the same connection, which the
//! server answers with the `-ERR cancelled` marker if it managed to
//! retract the frame (see [`crate::server`]). Either way every request
//! gets exactly one reply, so the connection re-synchronizes by
//! construction.
//!
//! A connection that breaks (replica restart, broken pipe) does not
//! poison its pool slot: the request that observed the failure is
//! retried on freshly dialed sockets (sequence numbers restart at zero
//! on both sides) — up to [`MAX_ATTEMPTS`] attempts with jittered
//! exponential backoff — before its error is surfaced, and later
//! requests keep re-dialing. A restarted replica heals transparently;
//! a flapping one degrades (each failed attempt feeds the error EWMA,
//! steering reissues elsewhere) instead of erroring every job; a
//! still-down replica fails fast (dial refusals are immediate).

use crate::sync::{oneshot, CancelToken, RecvFuture, Sender};
use bytes::BytesMut;
use kvstore::resp::{decode_reply, encode_command};
use kvstore::{Command, Reply};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use std::future::Future;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::task::{Context, Poll};
use std::time::Duration;

use crate::server::CANCELLED_MARKER;

/// Transport-level failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The request was cancelled (tied-request retraction) before it
    /// executed.
    Cancelled,
    /// The connection died before a reply arrived.
    ConnectionClosed,
    /// Socket-level failure.
    Io(String),
    /// The peer broke the RESP protocol.
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Cancelled => f.write_str("request cancelled"),
            TransportError::ConnectionClosed => f.write_str("connection closed"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Per-replica health signal: decayed EWMAs of response time and
/// transport error rate, updated by the connection I/O threads as
/// outcomes resolve and read by the hedging layer to pick reissue
/// targets (see [`ReplicaSet::pick_reissue_excluding`]).
///
/// Raw in-flight counts only see load *this client* put on a replica;
/// a replica head-of-line-blocked by someone else's monster query, or
/// one flapping its connections, looks idle by that measure. The EWMA
/// sees what actually matters — how the replica has been *responding*:
///
/// * completed requests feed the latency EWMA (queueing included:
///   `conn_loop` measures from job dispatch);
/// * retracted losers feed it as *floor* samples — the request was
///   outstanding at least that long, so the bound may raise the EWMA
///   but never lower it (a fast cancel says nothing about speed);
/// * socket-level failures feed the error EWMA, successes decay it.
pub struct ReplicaHealth {
    /// f64 bits; NaN until the first sample arrives.
    latency_ms: AtomicU64,
    /// f64 bits; error indicator EWMA in [0, 1].
    error_rate: AtomicU64,
}

/// Per-sample EWMA weight for response times. At α = 0.1 a step change
/// in replica speed is ~87% absorbed after 20 samples — fast enough to
/// demote a newly sick replica within tens of requests, slow enough
/// that one straggler does not.
const LATENCY_ALPHA: f64 = 0.1;
/// Per-sample EWMA weight for the error indicator.
const ERROR_ALPHA: f64 = 0.1;
/// Score weight converting one in-flight request into equivalent
/// milliseconds of EWMA latency — a light tiebreak so concurrent
/// hedges spread across equally healthy replicas instead of piling
/// onto one, without letting instantaneous counts drown the health
/// signal.
const INFLIGHT_MS_WEIGHT: f64 = 0.05;
/// Score multiplier at error EWMA = 1: a replica failing every request
/// looks 5x its latency.
const ERROR_PENALTY: f64 = 4.0;
/// Absolute score term (equivalent ms of EWMA latency) per unit of
/// error EWMA. The multiplicative [`ERROR_PENALTY`] alone cannot
/// demote a replica that *only* errors: transport failures never feed
/// the latency EWMA, which then reads `0` and zeroes the product.
/// This term makes a replica failing every request — even failing
/// *fast*, e.g. connection-refused from a crashed process — score
/// tens of ms worse than any healthy replica regardless of its
/// (possibly empty) latency history.
const ERROR_MS_EQUIV: f64 = 50.0;

impl ReplicaHealth {
    fn new() -> Self {
        ReplicaHealth {
            latency_ms: AtomicU64::new(f64::NAN.to_bits()),
            error_rate: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Lock-free EWMA step: `cell <- cell + alpha * (sample - cell)`,
    /// seeding with `sample` when the cell is still NaN. With
    /// `raise_only`, updates that would lower the value are dropped.
    fn update(cell: &AtomicU64, sample: f64, alpha: f64, raise_only: bool) {
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let new = if old.is_nan() {
                sample
            } else {
                old + alpha * (sample - old)
            };
            if raise_only && !old.is_nan() && new <= old {
                return;
            }
            match cell.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn record_latency(&self, ms: f64) {
        Self::update(&self.latency_ms, ms, LATENCY_ALPHA, false);
        Self::update(&self.error_rate, 0.0, ERROR_ALPHA, false);
    }

    /// A retracted request's elapsed-at-cancel bound: the true response
    /// time was at least `ms`, so this may raise the EWMA, never lower
    /// it.
    fn record_censored_latency(&self, ms: f64) {
        Self::update(&self.latency_ms, ms, LATENCY_ALPHA, true);
    }

    fn record_error(&self) {
        Self::update(&self.error_rate, 1.0, ERROR_ALPHA, false);
    }

    /// EWMA of observed response times (ms); `0` before any sample —
    /// optimism under uncertainty, so cold replicas get probed.
    pub fn latency_ewma_ms(&self) -> f64 {
        let v = f64::from_bits(self.latency_ms.load(Ordering::Relaxed));
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// EWMA of the transport-error indicator, in `[0, 1]`.
    pub fn error_ewma(&self) -> f64 {
        f64::from_bits(self.error_rate.load(Ordering::Relaxed))
    }
}

/// RAII share of a connection's in-flight count. Owned by the [`Job`]
/// so the decrement happens exactly once wherever the job ends up —
/// completed by the I/O thread, dropped in the queue when the
/// connection dies, or bounced by a failed send.
struct InflightTicket(Arc<AtomicU64>);

impl InflightTicket {
    fn new(counter: &Arc<AtomicU64>) -> Self {
        counter.fetch_add(1, Ordering::Relaxed);
        InflightTicket(counter.clone())
    }
}

impl Drop for InflightTicket {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Server-side tie registration to attach to a dispatched request (see
/// [`crate::server`] for the protocol). The transport prepends a `TIE`
/// control frame to the request's *first* wire attempt — same
/// `write(2)`, so the server's reader observes them back to back and
/// the registration covers exactly this command. Control frames carry
/// no reply and consume no sequence number, so cancellation by
/// sequence keeps working unchanged.
///
/// `peer` is set on the *reissue* leg: the primary's (replica address,
/// tie id), which the serving replica CANCELs at dequeue time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TieSpec {
    /// This request's tie identifier, unique per client process.
    pub id: u64,
    /// The already-dispatched peer to retract when this copy is
    /// dequeued: `(replica address, peer tie id)`.
    pub peer: Option<(SocketAddr, u64)>,
}

impl TieSpec {
    fn command(&self) -> Command {
        Command::Tie {
            id: self.id,
            peer: self.peer,
        }
    }
}

struct Job {
    cmd: Command,
    token: CancelToken,
    tie: Option<TieSpec>,
    reply: Sender<Result<Reply, TransportError>>,
    _ticket: InflightTicket,
}

/// One pooled connection: a job queue feeding a dedicated I/O thread.
struct Conn {
    // None only during drop (closing the channel ends the I/O loop).
    jobs: Option<mpsc::Sender<Job>>,
    inflight: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// An async client for one kvstore replica, holding `pool` TCP
/// connections. Requests round-robin across idle-most connections;
/// each connection serves its queue in FIFO order with exactly one
/// request on the wire at a time.
pub struct Replica {
    addr: SocketAddr,
    conns: Vec<Conn>,
    next: AtomicUsize,
    health: Arc<ReplicaHealth>,
}

impl Replica {
    /// Connects `pool` sockets to `addr` with strict request/reply
    /// connections (pipeline depth 1).
    pub fn connect(addr: SocketAddr, pool: usize) -> std::io::Result<Replica> {
        Self::connect_pipelined(addr, pool, 1)
    }

    /// Connects `pool` sockets to `addr`, each keeping up to
    /// `pipeline` requests on the wire (see
    /// [`crate::HedgeConfig::pipeline`]).
    pub fn connect_pipelined(
        addr: SocketAddr,
        pool: usize,
        pipeline: usize,
    ) -> std::io::Result<Replica> {
        let health = Arc::new(ReplicaHealth::new());
        let conns = (0..pool.max(1))
            .map(|i| {
                let stream = connect_socket(addr)?;
                let writer = stream.try_clone()?;
                let (tx, rx) = mpsc::channel::<Job>();
                let inflight = Arc::new(AtomicU64::new(0));
                let health = health.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("hedge-conn-{addr}-{i}"))
                    .spawn(move || {
                        if pipeline > 1 {
                            pipelined_conn_loop(addr, stream, writer, &rx, &health, pipeline)
                        } else {
                            conn_loop(addr, stream, writer, &rx, &health)
                        }
                    })
                    .expect("spawn connection I/O thread");
                Ok(Conn {
                    jobs: Some(tx),
                    inflight,
                    handle: Some(handle),
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Replica {
            addr,
            conns,
            next: AtomicUsize::new(0),
            health,
        })
    }

    /// The replica's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replica's live health signal.
    pub fn health(&self) -> &ReplicaHealth {
        &self.health
    }

    /// Reissue-targeting score — lower is better. Health EWMAs carry
    /// the signal (latency, inflated by the multiplicative error
    /// penalty, plus an *absolute* error term — see [`ERROR_MS_EQUIV`]);
    /// the in-flight count is a light tiebreak (see
    /// [`INFLIGHT_MS_WEIGHT`]).
    pub fn health_score(&self) -> f64 {
        let h = &self.health;
        h.latency_ewma_ms() * (1.0 + ERROR_PENALTY * h.error_ewma())
            + ERROR_MS_EQUIV * h.error_ewma()
            + INFLIGHT_MS_WEIGHT * self.inflight() as f64
    }

    /// Requests currently queued or on the wire across this replica's
    /// pool — the hedging layer's load signal.
    pub fn inflight(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.inflight.load(Ordering::Relaxed))
            .sum()
    }

    /// Dispatches `cmd`, returning the in-flight reply future.
    /// Cancelling `token` retracts the request if it has not executed
    /// yet (the future then resolves to
    /// [`TransportError::Cancelled`]).
    pub fn request(&self, cmd: Command, token: CancelToken) -> InFlight {
        self.request_tied(cmd, token, None)
    }

    /// Like [`Replica::request`], but registers `tie` on the server
    /// before the command (a `TIE` control frame coalesced into the
    /// same write). A tied request can be retracted by its peer's
    /// serving replica at dequeue time — server-to-server — instead of
    /// waiting for this client's `CANCEL` round trip.
    pub fn request_tied(&self, cmd: Command, token: CancelToken, tie: Option<TieSpec>) -> InFlight {
        // CANCEL and tie frames are transport-internal control frames
        // (no reply, sequence-number-sensitive); a hand-sent one would
        // desynchronize the reply stream, so refuse them here.
        if matches!(
            cmd,
            Command::Cancel(_)
                | Command::Tie { .. }
                | Command::TiePeer { .. }
                | Command::CancelTie(_)
        ) {
            let (tx, rx) = oneshot();
            let _ = tx.send(Err(TransportError::Protocol(
                "control frames are sent via CancelToken/TieSpec, not as requests".into(),
            )));
            return InFlight { rx: rx.recv() };
        }
        // Prefer the least-loaded connection; break ties round-robin.
        let start = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        let pick = (0..self.conns.len())
            .map(|off| (start + off) % self.conns.len())
            .min_by_key(|&i| self.conns[i].inflight.load(Ordering::Relaxed))
            .unwrap_or(start);
        let conn = &self.conns[pick];
        let (tx, rx) = oneshot();
        let job = Job {
            cmd,
            token,
            tie,
            reply: tx,
            _ticket: InflightTicket::new(&conn.inflight),
        };
        if let Some(jobs) = &conn.jobs {
            // On send failure the bounced job drops here, releasing
            // its ticket; the dropped reply Sender resolves the future
            // to Canceled, mapped to ConnectionClosed below.
            let _ = jobs.send(job);
        }
        InFlight { rx: rx.recv() }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        for conn in &mut self.conns {
            // Closing the channel ends the I/O thread's job loop once
            // the in-flight job (if any) finishes.
            conn.jobs = None;
            if let Some(h) = conn.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Future for a dispatched request. `Unpin`, so it can be raced.
pub struct InFlight {
    rx: RecvFuture<Result<Reply, TransportError>>,
}

impl Future for InFlight {
    type Output = Result<Reply, TransportError>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Ok(r)) => Poll::Ready(r),
            Poll::Ready(Err(_)) => Poll::Ready(Err(TransportError::ConnectionClosed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Whether re-executing `cmd` (after an ambiguous connection failure)
/// yields the same *reply* as the first execution would have. State is
/// idempotent for every kvstore command, but `DEL`/`SADD` replies
/// count what the call itself changed — a duplicate execution would
/// return 0/fewer and silently mislead the caller.
fn retry_safe(cmd: &Command) -> bool {
    !matches!(cmd, Command::Del(_) | Command::SAdd(..))
}

/// Per-job bound on request attempts (initial + retries), counting
/// both failed reconnect dials and attempts that died mid-request.
pub const MAX_ATTEMPTS: usize = 4;

/// First retry backoff; doubles per attempt up to [`BACKOFF_CAP_US`],
/// scaled by a uniform `0.5..1.5` jitter so a pool's connections don't
/// re-dial a flapping replica in lockstep.
const BACKOFF_BASE_US: u64 = 200;
const BACKOFF_CAP_US: u64 = 5_000;

/// Sleeps the jittered exponential backoff before retry `attempt`
/// (1-based: the first retry sleeps ~`BACKOFF_BASE_US`).
fn backoff(attempt: usize, rng: &mut SmallRng) {
    let exp = (BACKOFF_BASE_US << (attempt.saturating_sub(1)).min(6)).min(BACKOFF_CAP_US);
    let jittered = exp as f64 * (0.5 + rng.gen::<f64>());
    std::thread::sleep(Duration::from_micros(jittered as u64));
}

fn connect_socket(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    Ok(stream)
}

/// Per-connection I/O state, replaced wholesale on reconnect.
struct ConnIo {
    reader: TcpStream,
    /// Shared with cancel callbacks, which run on other threads while
    /// this thread is blocked reading the reply. Reconnect swaps the
    /// stream *inside* the mutex so registered callbacks keep working.
    writer: Arc<Mutex<TcpStream>>,
    buf: BytesMut,
    /// Sequence numbers count commands actually sent on the wire — the
    /// server counts the same way, so they stay aligned. A job
    /// cancelled before dispatch must NOT consume a number; a fresh
    /// connection restarts both sides at zero.
    seq: u64,
}

/// A single request attempt's failure mode: retryable failures are
/// socket-level (the connection died; a fresh socket may succeed),
/// final failures are answered as-is.
enum AttemptError {
    Retryable(TransportError),
    Final(TransportError),
}

/// Writes the job's frame and reads exactly one reply on the current
/// socket. `frame` is the connection's pooled encode buffer — cleared
/// and refilled here, never reallocated across jobs.
fn attempt_request(
    io: &mut ConnIo,
    job: &Job,
    chunk: &mut [u8],
    frame: &mut BytesMut,
) -> Result<Reply, AttemptError> {
    let my_seq = io.seq;
    frame.clear();
    // The tie registration rides in the same write as the command so
    // the server's reader sees them back to back — on every wire
    // attempt, including retries after a reconnect: a retry lands on a
    // fresh socket of the *same* server, where re-registering the tie
    // id is an idempotent table insert, and the tombstoned `TieTable`
    // already converges when the peer's CANCELTIE arrived before the
    // re-registration. Sending the retry untied would let the copy
    // execute unretractable, silently understating retractions.
    if let Some(tie) = &job.tie {
        encode_command(&tie.command(), frame);
    }
    encode_command(&job.cmd, frame);
    if let Err(e) = io.writer.lock().unwrap().write_all(frame) {
        return Err(AttemptError::Retryable(TransportError::Io(e.to_string())));
    }
    io.seq += 1;
    // From here the request is on the wire: exactly one reply will
    // come back. A cancel now races ahead on the same socket. The
    // `done` guard keeps a late cancel from writing a stale sequence
    // number onto a *reconnected* socket: it must be re-checked
    // *under the writer lock*, because `reconnect` both swaps the
    // stream and resets the numbering under that lock — and `done` is
    // always set before the attempt returns, so a callback that
    // acquires the lock after a reconnect is guaranteed to see it.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = done.clone();
        let writer = io.writer.clone();
        job.token.on_cancel(move || {
            let mut w = writer.lock().unwrap();
            if done.load(Ordering::SeqCst) {
                return;
            }
            let mut cancel_frame = BytesMut::new();
            encode_command(&Command::Cancel(my_seq), &mut cancel_frame);
            let _ = w.write_all(&cancel_frame);
        });
    }
    // Read exactly one reply (blocking with periodic timeouts).
    let reply = loop {
        match decode_reply(&mut io.buf) {
            Ok(Some(r)) => break Ok(r),
            Ok(None) => {}
            // Desync: surface the error; the caller reconnects before
            // the next job.
            Err(e) => break Err(AttemptError::Final(TransportError::Protocol(e.to_string()))),
        }
        match io.reader.read(chunk) {
            Ok(0) => break Err(AttemptError::Retryable(TransportError::ConnectionClosed)),
            Ok(n) => io.buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => break Err(AttemptError::Retryable(TransportError::Io(e.to_string()))),
        }
    };
    done.store(true, Ordering::SeqCst);
    match reply {
        Ok(Reply::Error(e)) if e == CANCELLED_MARKER => {
            Err(AttemptError::Final(TransportError::Cancelled))
        }
        Ok(r) => Ok(r),
        Err(e) => Err(e),
    }
}

/// Replaces the connection's socket with a freshly dialed one,
/// resetting the reply buffer and the sequence counter (the server
/// numbers each connection from zero).
fn reconnect(addr: SocketAddr, io: &mut ConnIo) -> std::io::Result<()> {
    let stream = connect_socket(addr)?;
    *io.writer.lock().unwrap() = stream.try_clone()?;
    io.reader = stream;
    io.buf.clear();
    io.seq = 0;
    Ok(())
}

fn conn_loop(
    addr: SocketAddr,
    stream: TcpStream,
    writer: TcpStream,
    jobs: &mpsc::Receiver<Job>,
    health: &ReplicaHealth,
) {
    let mut io = ConnIo {
        reader: stream,
        writer: Arc::new(Mutex::new(writer)),
        buf: BytesMut::new(),
        seq: 0,
    };
    let mut chunk = [0u8; 16 * 1024];
    // Pooled encode buffer: request frames are built in place here for
    // every job on this connection instead of allocating per attempt.
    let mut frame = BytesMut::new();
    // Set when the socket is known broken, so the next job reconnects
    // up front instead of burning its first attempt on a dead socket.
    // The slot is never poisoned permanently: every job gets fresh
    // sockets (bounded by `MAX_ATTEMPTS`, with jittered backoff
    // between dials) before its error is surfaced. A replica *restart*
    // heals transparently; a *flapping* replica degrades — every
    // failed attempt feeds the error EWMA, steering reissue targeting
    // away — rather than erroring the whole fan-out leg; a replica
    // that is still down fails fast (connection refusals return
    // immediately, so the bounded loop costs only the backoff).
    let mut broken = false;
    let mut rng = SmallRng::seed_from_u64(u64::from(addr.port()) ^ 0xBAC0FF);
    // Hoisted: an env lookup takes the process-wide environment lock
    // and scans `environ`, which is far too expensive per job.
    let debug = std::env::var_os("HEDGE_DEBUG").is_some();

    for job in jobs.iter() {
        // Cancelled while queued: never touches the wire.
        if job.token.is_cancelled() {
            let _ = job.reply.send(Err(TransportError::Cancelled));
            continue;
        }
        let dispatched = std::time::Instant::now();
        // Bounded retries on fresh sockets: attempt 1 may run on the
        // existing connection, later attempts only after a reconnect.
        // A retried command may execute twice if the connection died
        // after the server executed but before it replied — safe only
        // for commands whose *reply* is unaffected by re-execution
        // (`retry_safe`), so counting mutations surface the ambiguous
        // failure to the caller instead. Each failed attempt (dial or
        // request) penalizes the error EWMA individually, so the
        // health signal sees flapping even when the job eventually
        // succeeds.
        let mut attempt = 0usize;
        let outcome = loop {
            if broken {
                if let Err(e) = reconnect(addr, &mut io) {
                    health.record_error();
                    attempt += 1;
                    if attempt >= MAX_ATTEMPTS || job.token.is_cancelled() {
                        break Err(TransportError::Io(e.to_string()));
                    }
                    backoff(attempt, &mut rng);
                    continue;
                }
                broken = false;
            }
            match attempt_request(&mut io, &job, &mut chunk, &mut frame) {
                Ok(reply) => break Ok(reply),
                Err(AttemptError::Final(e)) => {
                    if matches!(e, TransportError::Protocol(_)) {
                        // Desynced reply stream: dial fresh next job.
                        broken = true;
                        health.record_error();
                    }
                    break Err(e);
                }
                Err(AttemptError::Retryable(e)) => {
                    broken = true;
                    health.record_error();
                    attempt += 1;
                    // A cancelled loser must not be re-executed — and
                    // the failure surfaces as the transport error, NOT
                    // `Cancelled`: the server never confirmed a
                    // retraction (the request may well have executed
                    // before the connection died), so the caller must
                    // not count it as a clean in-time cancel or derive
                    // a censoring bound from it.
                    if attempt >= MAX_ATTEMPTS || job.token.is_cancelled() || !retry_safe(&job.cmd)
                    {
                        break Err(e);
                    }
                    backoff(attempt, &mut rng);
                }
            }
        };
        let took_ms = dispatched.elapsed().as_secs_f64() * 1e3;
        match &outcome {
            // Server-level error replies (WRONGTYPE, …) still measure a
            // responsive replica, so they count as latency samples.
            Ok(_) => health.record_latency(took_ms),
            // A clean retraction is not a speed sample — only a bound.
            Err(TransportError::Cancelled) => health.record_censored_latency(took_ms),
            // Failed attempts already fed the error EWMA one by one.
            Err(_) => {}
        }
        if debug {
            let took = took_ms;
            if took > 10.0 {
                eprintln!(
                    "[conn {:?}] took {took:.2}ms cmd={:?} outcome={outcome:?}",
                    std::thread::current().name(),
                    job.cmd,
                );
            }
        }
        let _ = job.reply.send(outcome);
    }
}

/// Pipelined connection I/O loop (`pipeline > 1`).
///
/// Keeps up to `pipeline` requests on the wire at once: queued jobs
/// are staged together, their frames coalesced into a *single*
/// `write(2)`, and replies matched back FIFO — one read often
/// completes several jobs. That amortizes the per-request kernel cost
/// (write + read syscalls, futex wakeups, context switches) that
/// bounds closed-loop throughput once user-space work is slim.
///
/// The error model is simpler than [`conn_loop`]'s: a frame on the
/// wire is never replayed. A socket failure fails every in-flight job
/// with the socket error, and the next staged batch dials a fresh
/// connection (with jittered backoff between failed dials). Cancels
/// still propagate by sequence number exactly as in the strict loop,
/// with the same done-guard against retracting on a reconnected
/// socket.
fn pipelined_conn_loop(
    addr: SocketAddr,
    stream: TcpStream,
    writer: TcpStream,
    jobs: &mpsc::Receiver<Job>,
    health: &ReplicaHealth,
    pipeline: usize,
) {
    struct Wired {
        job: Job,
        dispatched: std::time::Instant,
        done: Arc<AtomicBool>,
    }
    let mut io = ConnIo {
        reader: stream,
        writer: Arc::new(Mutex::new(writer)),
        buf: BytesMut::new(),
        seq: 0,
    };
    let mut chunk = [0u8; 16 * 1024];
    // Pooled buffers: the coalesced request batch and the staged jobs
    // waiting to join the wire. Neither reallocates across batches.
    let mut batch = BytesMut::new();
    let mut staged: Vec<Job> = Vec::new();
    let mut wired: std::collections::VecDeque<Wired> = std::collections::VecDeque::new();
    let mut broken = false;
    let mut dial_failures = 0usize;
    let mut rng = SmallRng::seed_from_u64(u64::from(addr.port()) ^ 0x919E11);

    fn fail_wired(wired: &mut std::collections::VecDeque<Wired>, e: &TransportError) {
        for w in wired.drain(..) {
            // `done` before the reply so a late cancel callback that
            // wins the writer lock after a reconnect sees it set and
            // never writes a stale sequence onto the fresh socket.
            w.done.store(true, Ordering::SeqCst);
            let _ = w.job.reply.send(Err(e.clone()));
        }
    }

    loop {
        // Stage: top the wire up to `pipeline` jobs. Block for work
        // only when fully idle; otherwise take what is already queued.
        while wired.len() + staged.len() < pipeline {
            let job = if wired.is_empty() && staged.is_empty() {
                match jobs.recv() {
                    Ok(j) => j,
                    Err(_) => return, // pool dropped, nothing in flight
                }
            } else {
                match jobs.try_recv() {
                    Ok(j) => j,
                    Err(_) => break,
                }
            };
            if job.token.is_cancelled() {
                let _ = job.reply.send(Err(TransportError::Cancelled));
                continue;
            }
            staged.push(job);
        }

        if !staged.is_empty() {
            if broken {
                match reconnect(addr, &mut io) {
                    Ok(()) => {
                        broken = false;
                        dial_failures = 0;
                    }
                    Err(e) => {
                        health.record_error();
                        let e = TransportError::Io(e.to_string());
                        for job in staged.drain(..) {
                            let _ = job.reply.send(Err(e.clone()));
                        }
                        dial_failures += 1;
                        backoff(dial_failures, &mut rng);
                        continue;
                    }
                }
            }
            // One write for the whole batch. Tie registrations ride
            // immediately before their command (frames on this path
            // are never replayed, so every staged job is a first
            // attempt).
            batch.clear();
            for job in &staged {
                if let Some(tie) = &job.tie {
                    encode_command(&tie.command(), &mut batch);
                }
                encode_command(&job.cmd, &mut batch);
            }
            if let Err(e) = io.writer.lock().unwrap().write_all(&batch) {
                broken = true;
                health.record_error();
                let e = TransportError::Io(e.to_string());
                fail_wired(&mut wired, &e);
                for job in staged.drain(..) {
                    let _ = job.reply.send(Err(e.clone()));
                }
                continue;
            }
            let dispatched = std::time::Instant::now();
            for job in staged.drain(..) {
                let my_seq = io.seq;
                io.seq += 1;
                let done = Arc::new(AtomicBool::new(false));
                {
                    let done = done.clone();
                    let writer = io.writer.clone();
                    job.token.on_cancel(move || {
                        let mut w = writer.lock().unwrap();
                        if done.load(Ordering::SeqCst) {
                            return;
                        }
                        let mut cancel_frame = BytesMut::new();
                        encode_command(&Command::Cancel(my_seq), &mut cancel_frame);
                        let _ = w.write_all(&cancel_frame);
                    });
                }
                wired.push_back(Wired {
                    job,
                    dispatched,
                    done,
                });
            }
        }

        // Reap: deliver every complete reply already buffered, then
        // read once if the wire still owes us replies.
        loop {
            match decode_reply(&mut io.buf) {
                Ok(Some(reply)) => {
                    let Some(w) = wired.pop_front() else {
                        // A reply with no request on the wire: the
                        // stream is desynced; dial fresh.
                        broken = true;
                        health.record_error();
                        break;
                    };
                    w.done.store(true, Ordering::SeqCst);
                    let took_ms = w.dispatched.elapsed().as_secs_f64() * 1e3;
                    let outcome = match reply {
                        Reply::Error(e) if e == CANCELLED_MARKER => {
                            health.record_censored_latency(took_ms);
                            Err(TransportError::Cancelled)
                        }
                        r => {
                            health.record_latency(took_ms);
                            Ok(r)
                        }
                    };
                    let _ = w.job.reply.send(outcome);
                }
                Ok(None) => break,
                Err(e) => {
                    broken = true;
                    health.record_error();
                    fail_wired(&mut wired, &TransportError::Protocol(e.to_string()));
                    io.buf.clear();
                    break;
                }
            }
        }
        if broken || wired.is_empty() {
            continue;
        }
        match io.reader.read(&mut chunk) {
            Ok(0) => {
                broken = true;
                health.record_error();
                fail_wired(&mut wired, &TransportError::ConnectionClosed);
            }
            Ok(n) => io.buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => {
                broken = true;
                health.record_error();
                fail_wired(&mut wired, &TransportError::Io(e.to_string()));
            }
        }
    }
}

/// The set of replica backends a [`crate::HedgedClient`] hedges
/// across.
pub struct ReplicaSet {
    replicas: Vec<Arc<Replica>>,
    next: AtomicUsize,
}

impl ReplicaSet {
    /// Connects to every address with `pool` connections each.
    pub fn connect(addrs: &[SocketAddr], pool: usize) -> std::io::Result<ReplicaSet> {
        Self::connect_pipelined(addrs, pool, 1)
    }

    /// Connects with an explicit per-connection pipeline depth (see
    /// [`crate::HedgeConfig::pipeline`]).
    pub fn connect_pipelined(
        addrs: &[SocketAddr],
        pool: usize,
        pipeline: usize,
    ) -> std::io::Result<ReplicaSet> {
        assert!(!addrs.is_empty(), "need at least one replica");
        let replicas = addrs
            .iter()
            .map(|&a| Replica::connect_pipelined(a, pool, pipeline).map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ReplicaSet {
            replicas,
            next: AtomicUsize::new(0),
        })
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica at `idx`.
    pub fn replica(&self, idx: usize) -> &Replica {
        &self.replicas[idx]
    }

    /// Picks the next primary replica, round-robin.
    pub fn pick_primary(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % self.replicas.len()
    }

    /// Picks the reissue target: the healthiest replica other than the
    /// primary (falls back to the primary itself in a 1-replica set).
    pub fn pick_reissue(&self, primary: usize) -> usize {
        self.pick_reissue_excluding(&[primary])
    }

    /// Picks the reissue target with the lowest [`Replica::health_score`]
    /// among replicas not in `exclude` — for a multi-stage schedule,
    /// `exclude` carries the primary plus every earlier stage's target,
    /// so each reissue explores a fresh replica while any remain.
    ///
    /// Health-aware targeting matters under queries of death: *where* a
    /// redundant copy lands matters as much as *when* it is sent
    /// (Vulimiri et al.; Shah et al.), and a replica head-of-line
    /// blocked by another client's monster looks idle to this client's
    /// raw in-flight counts. The latency/error EWMA sees how the
    /// replica has actually been responding and demotes it until it
    /// heals (see [`ReplicaHealth`]).
    ///
    /// Falls back to the all-replica minimum when `exclude` covers the
    /// whole set.
    pub fn pick_reissue_excluding(&self, exclude: &[usize]) -> usize {
        let best = |indices: &mut dyn Iterator<Item = usize>| {
            indices
                .map(|i| (i, self.replicas[i].health_score()))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i)
        };
        best(&mut (0..self.replicas.len()).filter(|i| !exclude.contains(i)))
            .or_else(|| best(&mut (0..self.replicas.len())))
            .expect("non-empty replica set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::Runtime;
    use crate::server::{TcpServer, TcpServerConfig};
    use kvstore::KvStore;

    #[test]
    fn request_roundtrip_through_pool() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let replica = Replica::connect(server.local_addr(), 2).unwrap();
        let rt = Runtime::new(2);
        let reply = rt
            .block_on(replica.request(Command::Ping, CancelToken::new()))
            .unwrap();
        assert_eq!(reply, Reply::Pong);
        // Writes visible across pooled connections (same store).
        rt.block_on(replica.request(Command::Set("a".into(), "1".into()), CancelToken::new()))
            .unwrap();
        for _ in 0..4 {
            let r = rt
                .block_on(replica.request(Command::Get("a".into()), CancelToken::new()))
                .unwrap();
            assert_eq!(r, Reply::Str("1".into()));
        }
        server.shutdown();
    }

    #[test]
    fn reconnects_after_broken_pipe() {
        use kvstore::resp::{decode_command, encode_reply};

        // A miniature replica that serves exactly one request per
        // connection, then slams the socket shut — every follow-up
        // request sees a broken pipe / EOF and must transparently
        // retry on a fresh connection (which this server accepts).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut served = 0u32;
            while served < 3 {
                let Ok((mut s, _)) = listener.accept() else {
                    break;
                };
                let mut buf = BytesMut::new();
                let mut chunk = [0u8; 1024];
                loop {
                    if let Ok(Some(cmd)) = decode_command(&mut buf) {
                        assert_eq!(cmd, Command::Ping);
                        let mut out = BytesMut::new();
                        encode_reply(&Reply::Pong, &mut out);
                        s.write_all(&out).unwrap();
                        served += 1;
                        break; // drop the socket: abrupt close
                    }
                    let n = s.read(&mut chunk).unwrap();
                    if n == 0 {
                        break;
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        });

        let replica = Replica::connect(addr, 1).unwrap();
        let rt = Runtime::new(1);
        // Three consecutive requests, each after the previous
        // connection was killed server-side. Before reconnect support
        // the second one poisoned the slot permanently.
        for i in 0..3 {
            let out = rt.block_on(replica.request(Command::Ping, CancelToken::new()));
            assert_eq!(
                out,
                Ok(Reply::Pong),
                "request {i} should heal via reconnect"
            );
        }
        drop(replica);
        server.join().unwrap();
    }

    #[test]
    fn retry_after_broken_pipe_reattaches_tie() {
        use kvstore::resp::{decode_command, encode_reply};

        // First connection: swallow the request and slam the socket
        // shut before replying (a retryable failure). The retry lands
        // on a fresh connection — and must carry the TIE prefix again,
        // or the re-executed copy runs unretractable and retraction
        // accounting silently goes optimistic.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut tie_seen_on_retry = false;
            for conn in 0..2 {
                let Ok((mut s, _)) = listener.accept() else {
                    break;
                };
                let mut buf = BytesMut::new();
                let mut chunk = [0u8; 1024];
                let mut got_tie = false;
                'conn: loop {
                    while let Ok(Some(cmd)) = decode_command(&mut buf) {
                        match cmd {
                            Command::Tie { id, peer } => {
                                assert_eq!(id, 42);
                                assert!(peer.is_none());
                                got_tie = true;
                            }
                            Command::Ping => {
                                assert!(got_tie, "connection {conn}: PING arrived untied");
                                if conn == 0 {
                                    break 'conn; // drop unserved: broken pipe
                                }
                                tie_seen_on_retry = true;
                                let mut out = BytesMut::new();
                                encode_reply(&Reply::Pong, &mut out);
                                s.write_all(&out).unwrap();
                                break 'conn;
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    match s.read(&mut chunk) {
                        Ok(0) | Err(_) => break 'conn,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
            }
            assert!(tie_seen_on_retry, "retry attempt must re-send the tie");
        });

        let replica = Replica::connect(addr, 1).unwrap();
        let rt = Runtime::new(1);
        let tie = TieSpec { id: 42, peer: None };
        let out = rt.block_on(replica.request_tied(Command::Ping, CancelToken::new(), Some(tie)));
        assert_eq!(out, Ok(Reply::Pong), "retry should heal via reconnect");
        drop(replica);
        server.join().unwrap();
    }

    #[test]
    fn flaky_replica_heals_within_bounded_retries_and_feeds_error_ewma() {
        use kvstore::resp::{decode_command, encode_reply};

        // A flapping replica: the first two connections are accepted
        // and dropped unserved, the third serves normally. One request
        // must survive this inside its MAX_ATTEMPTS budget — and every
        // failed attempt must penalize the error EWMA even though the
        // job ultimately succeeds (that penalty is what steers reissue
        // targeting away from a flapping shard leg).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for i in 0..3 {
                let Ok((mut s, _)) = listener.accept() else {
                    return;
                };
                if i < 2 {
                    continue; // dropped unserved: broken pipe client-side
                }
                let mut buf = BytesMut::new();
                let mut chunk = [0u8; 1024];
                loop {
                    if let Ok(Some(cmd)) = decode_command(&mut buf) {
                        assert_eq!(cmd, Command::Ping);
                        let mut out = BytesMut::new();
                        encode_reply(&Reply::Pong, &mut out);
                        s.write_all(&out).unwrap();
                        continue;
                    }
                    match s.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
            }
        });

        let replica = Replica::connect(addr, 1).unwrap();
        let rt = Runtime::new(1);
        let out = rt.block_on(replica.request(Command::Ping, CancelToken::new()));
        assert_eq!(out, Ok(Reply::Pong), "third socket heals within bounds");
        assert!(
            replica.health().error_ewma() > 0.0,
            "failed attempts must feed the EWMA despite eventual success"
        );
        // The healed connection serves follow-ups without drama.
        let out = rt.block_on(replica.request(Command::Ping, CancelToken::new()));
        assert_eq!(out, Ok(Reply::Pong));
        drop(replica);
        server.join().unwrap();
    }

    #[test]
    fn down_replica_fails_bounded_not_forever() {
        // Replica goes down and stays down: the bounded retry loop
        // must surface an error quickly (refused dials + capped
        // jittered backoff), not spin forever, and the error EWMA must
        // reflect the attempts.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let replica = Replica::connect(addr, 1).unwrap();
        let (sock, _) = listener.accept().unwrap();
        drop(sock); // kill the pooled connection...
        drop(listener); // ...and refuse every retry dial
        let rt = Runtime::new(1);
        let t0 = std::time::Instant::now();
        let out = rt.block_on(replica.request(Command::Ping, CancelToken::new()));
        assert!(out.is_err(), "no server, no reply");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "bounded retries must fail fast, took {:?}",
            t0.elapsed()
        );
        assert!(
            replica.health().error_ewma() > 0.1,
            "every attempt penalizes the EWMA: {}",
            replica.health().error_ewma()
        );
    }

    #[test]
    fn replica_health_ewma_tracks_and_floors() {
        let h = ReplicaHealth::new();
        assert_eq!(h.latency_ewma_ms(), 0.0, "optimistic before any sample");
        h.record_latency(10.0);
        assert!(
            (h.latency_ewma_ms() - 10.0).abs() < 1e-12,
            "first sample seeds"
        );
        for _ in 0..200 {
            h.record_latency(2.0);
        }
        let settled = h.latency_ewma_ms();
        assert!((settled - 2.0).abs() < 0.1, "EWMA converges: {settled}");
        // Censored bounds only ever raise.
        h.record_censored_latency(0.1);
        assert!((h.latency_ewma_ms() - settled).abs() < 1e-12);
        h.record_censored_latency(1_000.0);
        assert!(h.latency_ewma_ms() > settled);
    }

    #[test]
    fn replica_health_error_rate_decays_on_success() {
        let h = ReplicaHealth::new();
        for _ in 0..50 {
            h.record_error();
        }
        let sick = h.error_ewma();
        assert!(sick > 0.9, "persistent failures: {sick}");
        for _ in 0..100 {
            h.record_latency(1.0);
        }
        assert!(h.error_ewma() < 0.01, "successes heal: {}", h.error_ewma());
    }

    #[test]
    fn error_only_replica_is_demoted_despite_empty_latency_history() {
        // A replica that has never completed a request (crashed from
        // the start) has no latency samples; the absolute error term
        // must demote it anyway, or its score would read ~0 and every
        // reissue would chase the dead replica's fast failures.
        let servers: Vec<_> = (0..2)
            .map(|_| {
                TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap()
            })
            .collect();
        let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
        let set = ReplicaSet::connect(&addrs, 1).unwrap();
        for _ in 0..50 {
            set.replica(0).health().record_latency(5.0); // healthy, a bit slow
            set.replica(1).health().record_error(); // dead: errors only
        }
        assert_eq!(set.replica(1).health().latency_ewma_ms(), 0.0);
        assert!(
            set.replica(1).health_score() > set.replica(0).health_score(),
            "error-only replica must score worse than a healthy one"
        );
    }

    #[test]
    fn pick_reissue_excluding_prefers_healthy_and_falls_back() {
        let servers: Vec<_> = (0..3)
            .map(|_| {
                TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap()
            })
            .collect();
        let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
        let set = ReplicaSet::connect(&addrs, 1).unwrap();
        // Mark replica 1 slow and replica 2 fast; 0 is the primary.
        for _ in 0..50 {
            set.replica(1).health().record_latency(50.0);
            set.replica(2).health().record_latency(1.0);
        }
        assert_eq!(set.pick_reissue(0), 2, "healthy replica wins");
        assert_eq!(set.pick_reissue_excluding(&[0, 2]), 1);
        // All excluded: fall back to the global best rather than panic.
        let all = set.pick_reissue_excluding(&[0, 1, 2]);
        assert!(all < 3);
    }

    #[test]
    fn pre_dispatch_cancel_never_hits_wire() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let replica = Replica::connect(server.local_addr(), 1).unwrap();
        let rt = Runtime::new(1);
        let token = CancelToken::new();
        token.cancel();
        let out = rt.block_on(replica.request(Command::Ping, token));
        assert_eq!(out, Err(TransportError::Cancelled));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(server.stats().commands, 0, "nothing should execute");
        server.shutdown();
    }

    #[test]
    fn pipelined_connection_matches_replies_to_requests_fifo() {
        // One socket, depth 8, 64 concurrent distinct GETs: every
        // future must resolve to *its own* key's value, which only
        // holds if the FIFO reply matching in the pipelined loop is
        // exact across coalesced writes and batched reads.
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        server.with_store(|store| {
            for i in 0..64 {
                let (reply, _) = store.execute(&Command::Set(
                    format!("k{i}").into(),
                    format!("v{i}").into(),
                ));
                assert_eq!(reply, Reply::Ok);
            }
        });
        let replica = Arc::new(Replica::connect_pipelined(server.local_addr(), 1, 8).unwrap());
        let rt = Runtime::new(2);
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let replica = replica.clone();
                rt.spawn(async move {
                    let r = replica
                        .request(Command::Get(format!("k{i}").into()), CancelToken::new())
                        .await
                        .unwrap();
                    assert_eq!(r, Reply::Str(format!("v{i}").into()), "reply for k{i}");
                })
            })
            .collect();
        for h in handles {
            rt.block_on(h);
        }
        assert_eq!(server.stats().commands, 64);
        server.shutdown();
    }

    #[test]
    fn pipelined_connection_fails_inflight_and_redials() {
        use kvstore::resp::{decode_command, encode_reply};

        // A replica that answers one request per connection and slams
        // the socket: the pipelined loop must fail what was on the
        // wire *without replaying it* and dial fresh for later jobs.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let Ok((mut s, _)) = listener.accept() else {
                    return;
                };
                let mut buf = BytesMut::new();
                let mut chunk = [0u8; 1024];
                loop {
                    if let Ok(Some(_)) = decode_command(&mut buf) {
                        let mut out = BytesMut::new();
                        encode_reply(&Reply::Pong, &mut out);
                        s.write_all(&out).unwrap();
                        break; // drop the socket: abrupt close
                    }
                    let n = s.read(&mut chunk).unwrap();
                    if n == 0 {
                        break;
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        });

        let replica = Replica::connect_pipelined(addr, 1, 4).unwrap();
        let rt = Runtime::new(1);
        assert_eq!(
            rt.block_on(replica.request(Command::Ping, CancelToken::new())),
            Ok(Reply::Pong)
        );
        // The socket is now closed server-side; the next request dies
        // on the wire and surfaces the socket error (no silent retry).
        let dead = rt.block_on(replica.request(Command::Ping, CancelToken::new()));
        assert!(dead.is_err(), "in-flight request must fail, got {dead:?}");
        // A later job triggers the redial and succeeds.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match rt.block_on(replica.request(Command::Ping, CancelToken::new())) {
                Ok(r) => {
                    assert_eq!(r, Reply::Pong);
                    break;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("redial never succeeded: {e:?}"),
            }
        }
        server.join().unwrap();
    }
}
