//! Scale-out cluster harness: programmatic N-replica TCP clusters,
//! open-loop load generation with bounded admission, and streaming
//! latency recording.
//!
//! Every scale experiment in this repository needs the same three
//! pieces, and before this module each call site hand-rolled them:
//!
//! * a **[`Cluster`]** — `n` [`TcpServer`] replicas of one dataset
//!   snapshot on ephemeral local ports, with live per-replica
//!   [`Cluster::set_nanos_per_op`] so a running replica can be
//!   sickened or healed mid-experiment;
//! * an **open-loop load generator** ([`Cluster::run_load`]) — queries
//!   arrive on a clock ([`Arrivals`]: fixed-interval, Poisson, or
//!   bursts) *regardless of completions*, as in the paper's §6 system
//!   experiments. Admission is bounded: at most
//!   [`LoadConfig::max_in_flight`] queries may be outstanding, and an
//!   arrival that finds the window full is **dropped and counted** —
//!   never silently absorbed, and never allowed to queue unboundedly
//!   inside the client (`arrivals == dispatched + dropped` always
//!   holds, which is what keeps an over-capacity run from deadlocking
//!   or eating the heap);
//! * a **streaming latency recorder** — per-query wall-clock latencies
//!   land in a shared [`LogHistogram`] (log-bucketed, 1% relative
//!   quantile error, constant memory), so a million-query sweep costs
//!   a few hundred counters instead of a sorted `Vec` per quantile.
//!
//! Completion accounting is exact: every dispatched query resolves as
//! either `completed` or `failed`, and [`LoadReport::lost`] — the
//! difference — must be zero for a healthy run (the harness
//! integration tests assert it).
//!
//! ```no_run
//! use hedge::harness::{Arrivals, Cluster, LoadConfig};
//! use hedge::{HedgeConfig, HedgedClient};
//! use kvstore::{Command, KvStore};
//!
//! let cluster = Cluster::spawn(6, &KvStore::new(), 200).unwrap();
//! let client = HedgedClient::connect(&cluster.addrs(), HedgeConfig::default()).unwrap();
//! let report = cluster.run_load(
//!     &client,
//!     &LoadConfig {
//!         queries: 10_000,
//!         arrivals: Arrivals::Poisson { mean_us: 500 },
//!         ..LoadConfig::default()
//!     },
//!     |_i| Command::Ping,
//! );
//! println!("P99 {:?} ms, dropped {}", report.quantile(0.99), report.dropped);
//! ```

use crate::client::HedgedClient;
use crate::rt::Runtime;
use crate::server::{spawn_replicas, TcpServer, TcpServerConfig};
use crate::transport::TransportError;

use kvstore::{Backend, Command, KvStore, Reply};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reissue_core::metrics::LogHistogram;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What [`Cluster::run_load`] needs from a client: the open-loop
/// generator is agnostic to *how* a query is served (one hedged
/// replica read, a k-of-n fragment fan-out, …) as long as it can clone
/// the client into the pacer task, spawn `'static` execute futures on
/// the client's runtime, and snapshot two counters for per-segment
/// reissue-rate deltas. [`HedgedClient`] and `erasure::StripedClient`
/// both implement it, so every load experiment shares one pacer,
/// admission bound, and drain loop.
pub trait LoadClient: Clone + Send + 'static {
    /// The runtime the pacer and completion tasks run on.
    fn load_runtime(&self) -> &Runtime;

    /// Issues one command. The future must be `'static`: it is spawned
    /// onto the runtime and may outlive the caller's borrow.
    fn load_execute(
        &self,
        cmd: Command,
    ) -> impl std::future::Future<Output = Result<Reply, TransportError>> + Send + 'static;

    /// `(completed queries, dispatched reissues)` counter snapshot —
    /// segment boundaries report deltas of these.
    fn load_counters(&self) -> (u64, u64);

    /// The client's live utilization estimate ρ̂, if it keeps one.
    fn load_utilization(&self) -> Option<f64> {
        None
    }
}

impl LoadClient for HedgedClient {
    fn load_runtime(&self) -> &Runtime {
        self.runtime()
    }

    fn load_execute(
        &self,
        cmd: Command,
    ) -> impl std::future::Future<Output = Result<Reply, TransportError>> + Send + 'static {
        self.execute(cmd)
    }

    fn load_counters(&self) -> (u64, u64) {
        let s = self.stats();
        (s.queries, s.reissues)
    }

    fn load_utilization(&self) -> Option<f64> {
        self.utilization()
    }
}

/// Inter-arrival process of the open-loop generator.
#[derive(Clone, Copy, Debug)]
pub enum Arrivals {
    /// Fixed inter-arrival gap (a deterministic pacer).
    Fixed {
        /// Microseconds between consecutive arrivals.
        interval_us: u64,
    },
    /// Poisson arrivals: exponential inter-arrival times with the
    /// given mean (the memoryless open-loop load of the paper's §6
    /// experiments; drawn from [`LoadConfig::seed`]).
    Poisson {
        /// Mean inter-arrival time, microseconds.
        mean_us: u64,
    },
    /// Bursty arrivals: `size` back-to-back queries, then one `gap`.
    /// The average rate matches `Poisson`/`Fixed` at
    /// `gap_us / size`, but arrivals cluster — the adversarial shape
    /// for a budget governor.
    Burst {
        /// Queries per burst.
        size: usize,
        /// Microseconds between bursts.
        gap_us: u64,
    },
}

impl Arrivals {
    /// Mean arrival rate in queries per second.
    pub fn rate_qps(&self) -> f64 {
        match *self {
            Arrivals::Fixed { interval_us } => 1e6 / interval_us.max(1) as f64,
            Arrivals::Poisson { mean_us } => 1e6 / mean_us.max(1) as f64,
            Arrivals::Burst { size, gap_us } => size as f64 * 1e6 / gap_us.max(1) as f64,
        }
    }

    /// The gap to sleep *after* arrival `i` (µs). Burst arrivals
    /// sleep only at burst boundaries. Public so other open-loop
    /// pacers (e.g. `shard::run_fanout_load`) sample the identical
    /// arrival process.
    pub fn gap_after_us(&self, i: usize, rng: &mut SmallRng) -> u64 {
        match *self {
            Arrivals::Fixed { interval_us } => interval_us,
            Arrivals::Poisson { mean_us } => {
                // Inverse-CDF exponential draw; clamp the log away from
                // 0 so a pathological RNG value cannot produce ∞.
                let u: f64 = rng.gen::<f64>().max(1e-12);
                (-u.ln() * mean_us as f64) as u64
            }
            Arrivals::Burst { size, gap_us } => {
                if (i + 1) % size.max(1) == 0 {
                    gap_us
                } else {
                    0
                }
            }
        }
    }
}

/// One scripted mid-run change to a replica's service speed: applied
/// once the generator has *offered* (dispatched or dropped)
/// `at_query` arrivals. Sicken a replica by raising `nanos_per_op`,
/// heal it by restoring the baseline.
#[derive(Clone, Copy, Debug)]
pub struct SicknessEvent {
    /// Arrival index at which to apply the change.
    pub at_query: usize,
    /// Target replica index.
    pub replica: usize,
    /// New wall-clock nanoseconds per unit of store cost.
    pub nanos_per_op: u64,
}

/// One scripted mid-run change to the *arrival process*: from arrival
/// `at_query` onward the generator paces with `arrivals`. The
/// load-ramp analogue of [`SicknessEvent`] — sweeping utilization
/// mid-run (e.g. 0.3 → 0.9) is a sequence of `RateEvent`s raising the
/// offered rate while the same client keeps serving.
///
/// Every `RateEvent` also marks a **segment boundary**: the run's
/// [`LoadReport::segments`] carry per-phase latency histograms, drop
/// counts and client reissue-rate deltas, so a ramp run reports each
/// utilization plateau separately instead of one blended histogram.
#[derive(Clone, Copy, Debug)]
pub struct RateEvent {
    /// Arrival index from which the new process paces the generator.
    pub at_query: usize,
    /// The arrival process in force from that point on.
    pub arrivals: Arrivals,
}

/// Configuration for one open-loop load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Number of arrivals to offer.
    pub queries: usize,
    /// The inter-arrival process.
    pub arrivals: Arrivals,
    /// Bound on concurrently outstanding queries. An arrival beyond
    /// the bound is dropped (and reported), which is what keeps an
    /// over-capacity run from accumulating unbounded in-flight state.
    pub max_in_flight: usize,
    /// Seed for the arrival process (Poisson draws).
    pub seed: u64,
    /// Scripted per-replica sickness/heal events, applied by arrival
    /// index. Need not be sorted.
    pub script: Vec<SicknessEvent>,
    /// Scripted arrival-process changes, applied by arrival index
    /// (need not be sorted). Each event both switches the pacer's
    /// process and opens a new reporting segment (see
    /// [`LoadReport::segments`]). Empty = one process, one segment.
    pub rate_script: Vec<RateEvent>,
}

impl Default for LoadConfig {
    /// 10 000 queries, 1 ms fixed pacing, 1 024 in-flight cap.
    fn default() -> Self {
        LoadConfig {
            queries: 10_000,
            arrivals: Arrivals::Fixed { interval_us: 1_000 },
            max_in_flight: 1_024,
            seed: 0x10AD,
            script: Vec::new(),
            rate_script: Vec::new(),
        }
    }
}

/// What one open-loop run did, with exact arrival and completion
/// accounting: `queries == dispatched + dropped` and
/// `dispatched == completed + failed` (the latter once the run has
/// drained, which [`Cluster::run_load`] waits for).
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Arrivals admitted and sent to the client.
    pub dispatched: u64,
    /// Arrivals refused because `max_in_flight` queries were already
    /// outstanding (backpressure, reported rather than absorbed).
    pub dropped: u64,
    /// Dispatched queries that resolved with a reply.
    pub completed: u64,
    /// Dispatched queries that resolved with a transport error.
    pub failed: u64,
    /// Highest number of concurrently outstanding queries observed.
    pub peak_in_flight: usize,
    /// Wall-clock duration of the run (first arrival to last drain).
    pub elapsed: Duration,
    /// End-to-end latency of every completed query, ms.
    pub latency_ms: LogHistogram,
    /// Per-segment accounting: one segment per stretch between
    /// [`RateEvent`] boundaries (a single segment covering the whole
    /// run when `rate_script` is empty). Latencies are binned by
    /// *arrival index*, so a query dispatched in segment `k` lands in
    /// segment `k` even if it completes after the boundary.
    pub segments: Vec<SegmentReport>,
}

impl LoadReport {
    /// Dispatched queries unaccounted for — must be zero after a
    /// drained run (every query resolves as completed or failed).
    pub fn lost(&self) -> i64 {
        self.dispatched as i64 - self.completed as i64 - self.failed as i64
    }

    /// Latency quantile (ms) over completed queries.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        self.latency_ms.quantile(p)
    }

    /// Fraction of arrivals dropped by admission control.
    pub fn drop_rate(&self) -> f64 {
        self.dropped as f64 / (self.dispatched + self.dropped).max(1) as f64
    }
}

/// One [`RateEvent`]-delimited stretch of a load run (see
/// [`LoadReport::segments`]). Latency and admission counters are
/// attributed by arrival index; the client-counter deltas
/// (`queries_delta` / `reissues_delta`) are wall-clock snapshots taken
/// as the generator crossed the segment's boundaries, so a straggler
/// completing after the boundary is counted in the next segment's
/// delta — a bounded, documented skew of at most the in-flight window.
#[derive(Clone, Debug)]
pub struct SegmentReport {
    /// First arrival index of the segment (inclusive).
    pub start: usize,
    /// One past the last arrival index of the segment.
    pub end: usize,
    /// The arrival process in force during the segment.
    pub arrivals: Arrivals,
    /// Arrivals of this segment admitted and dispatched.
    pub dispatched: u64,
    /// Arrivals of this segment dropped by admission control.
    pub dropped: u64,
    /// Dispatched queries of this segment that completed.
    pub completed: u64,
    /// Dispatched queries of this segment that failed.
    pub failed: u64,
    /// End-to-end latency of the segment's completed queries, ms.
    pub latency_ms: LogHistogram,
    /// Client-completed queries while the segment's arrivals were
    /// being offered (boundary-snapshot delta).
    pub queries_delta: u64,
    /// Client-dispatched reissues while the segment's arrivals were
    /// being offered (boundary-snapshot delta).
    pub reissues_delta: u64,
    /// The client's utilization estimate ρ̂ as the segment's last
    /// arrival was offered (`NaN` when the client is not
    /// utilization-aware). A point sample: under heavy-tailed service
    /// the estimate sawtooths around each slow-query episode, so
    /// prefer [`utilization_mean`](Self::utilization_mean) for
    /// per-phase comparisons.
    pub utilization_end: f64,
    /// Mean of the client's ρ̂ over the watcher's ~200 µs polls while
    /// the segment's arrivals were being offered (`NaN` when the
    /// client is not utilization-aware) — the segment's time-averaged
    /// load estimate, robust to the end-point sawtooth.
    pub utilization_mean: f64,
}

impl SegmentReport {
    /// Latency quantile (ms) over the segment's completed queries.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        self.latency_ms.quantile(p)
    }

    /// Fraction of the segment's arrivals dropped by admission
    /// control.
    pub fn drop_rate(&self) -> f64 {
        self.dropped as f64 / (self.dispatched + self.dropped).max(1) as f64
    }

    /// Realized reissue rate over the segment (reissues per completed
    /// query, from the client-counter deltas).
    pub fn reissue_rate(&self) -> f64 {
        self.reissues_delta as f64 / self.queries_delta.max(1) as f64
    }
}

/// An `n`-replica TCP cluster under programmatic control.
///
/// Replicas serve identical snapshots of one [`Backend`] (a kvstore by
/// default; any backend works — `crates/shard` spawns one cluster per
/// index shard) on ephemeral local ports; dropping the cluster shuts
/// every replica down (joining its threads).
pub struct Cluster<B: Backend = KvStore> {
    servers: Vec<TcpServer<B>>,
    baseline_nanos_per_op: u64,
}

impl<B: Backend> Cluster<B> {
    /// Spins up `n` replicas of `store`, each burning
    /// `nanos_per_op` wall-clock nanoseconds per unit of store cost.
    pub fn spawn(n: usize, store: &B, nanos_per_op: u64) -> std::io::Result<Cluster<B>>
    where
        B: Clone,
    {
        Self::spawn_with(
            n,
            store,
            TcpServerConfig {
                nanos_per_op,
                ..TcpServerConfig::default()
            },
        )
    }

    /// Like [`Cluster::spawn`] but with full control over the replica
    /// configuration (queue discipline, burn rate).
    pub fn spawn_with(n: usize, store: &B, cfg: TcpServerConfig) -> std::io::Result<Cluster<B>>
    where
        B: Clone,
    {
        assert!(n > 0, "a cluster needs at least one replica");
        Ok(Cluster {
            servers: spawn_replicas(n, store, cfg)?,
            baseline_nanos_per_op: cfg.nanos_per_op,
        })
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster has no replicas (never true: `spawn`
    /// rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Every replica's socket address, in replica-index order.
    pub fn addrs(&self) -> Vec<std::net::SocketAddr> {
        self.servers.iter().map(|s| s.local_addr()).collect()
    }

    /// Direct access to replica `idx`'s server.
    pub fn server(&self, idx: usize) -> &TcpServer<B> {
        &self.servers[idx]
    }

    /// Changes replica `idx`'s service burn while it serves (sicken /
    /// heal).
    pub fn set_nanos_per_op(&self, idx: usize, nanos_per_op: u64) {
        self.servers[idx].set_nanos_per_op(nanos_per_op);
    }

    /// Restores every replica to the spawn-time service burn.
    pub fn heal_all(&self) {
        for s in &self.servers {
            s.set_nanos_per_op(self.baseline_nanos_per_op);
        }
    }

    /// Total commands executed across all replicas.
    pub fn total_commands(&self) -> u64 {
        self.servers.iter().map(|s| s.stats().commands).sum()
    }

    /// Drives `cfg.queries` arrivals through `client` open-loop and
    /// waits for every dispatched query to drain. `make_cmd` produces
    /// the command for arrival `i`.
    ///
    /// Delegates to [`run_open_loop`] with this cluster's replicas as
    /// the sickness-script target; see there for the pacing and
    /// accounting contract.
    pub fn run_load<C: LoadClient>(
        &self,
        client: &C,
        cfg: &LoadConfig,
        make_cmd: impl FnMut(usize) -> Command + Send + 'static,
    ) -> LoadReport {
        run_open_loop(client, cfg, make_cmd, |replica, nanos_per_op| {
            self.set_nanos_per_op(replica, nanos_per_op)
        })
    }
}

/// Drives `cfg.queries` arrivals through `client` open-loop and waits
/// for every dispatched query to drain. `make_cmd` produces the
/// command for arrival `i`; `sicken(replica, nanos_per_op)` applies
/// each scripted [`SicknessEvent`] to whatever is serving — a
/// [`Cluster`] replica, a striped fragment group's slot, anything with
/// a service burn to turn.
///
/// Queries are dispatched on the arrival clock regardless of
/// completions (a closed loop would let every stalled query suppress
/// exactly the load that measures the stall). Arrivals that find
/// `max_in_flight` queries outstanding are dropped and counted.
/// Scripted [`SicknessEvent`]s are applied from the calling thread as
/// the arrival count crosses their `at_query`.
pub fn run_open_loop<C: LoadClient>(
    client: &C,
    cfg: &LoadConfig,
    make_cmd: impl FnMut(usize) -> Command + Send + 'static,
    mut sicken: impl FnMut(usize, u64),
) -> LoadReport {
    let shared = Arc::new(RunShared {
        in_flight: AtomicUsize::new(0),
        peak_in_flight: AtomicUsize::new(0),
        offered: AtomicU64::new(0),
        dispatched: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        latency_ms: Mutex::new(LogHistogram::latency_ms()),
    });
    // Segment boundaries: every rate-script index strictly inside
    // the run opens a new segment (one segment when the script is
    // empty).
    let mut rate_script: Vec<RateEvent> = cfg.rate_script.clone();
    rate_script.sort_by_key(|e| e.at_query);
    let mut bounds: Vec<usize> = vec![0];
    bounds.extend(
        rate_script
            .iter()
            .map(|e| e.at_query)
            .filter(|&a| a > 0 && a < cfg.queries),
    );
    bounds.dedup();
    bounds.push(cfg.queries);
    let nseg = bounds.len() - 1;
    let segs: Arc<Vec<SegShared>> = Arc::new((0..nseg).map(|_| SegShared::new()).collect());
    let started = Instant::now();
    let pacer = {
        let client = client.clone();
        let shared = shared.clone();
        let segs = segs.clone();
        let seg_bounds = bounds.clone();
        let rate_script = rate_script.clone();
        let cfg_arrivals = cfg.arrivals;
        let queries = cfg.queries;
        let max_in_flight = cfg.max_in_flight.max(1);
        let seed = cfg.seed;
        let mut make_cmd = make_cmd;
        let rt = client.load_runtime().clone();
        rt.clone().spawn(async move {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut arrivals = cfg_arrivals;
            let mut next_rate = 0usize;
            let mut cur_seg = 0usize;
            // Absolute arrival schedule: each deadline advances by
            // the sampled gap from the *previous deadline*, never
            // from "now" — relative sleeps would add the pacer's
            // own per-arrival work and wakeup latency on top of
            // every gap, silently lowering the offered rate (and
            // the error compounds exactly at the tight-gap sweep
            // points the rate is supposed to stress). If the pacer
            // falls behind, expired deadlines resolve immediately
            // and it catches up.
            let mut next_arrival = Instant::now();
            for i in 0..queries {
                // Rate script: switch the arrival process the
                // moment the offered count crosses an event, and
                // advance the attribution segment in lockstep
                // (every in-range event is a segment boundary).
                while next_rate < rate_script.len() && rate_script[next_rate].at_query <= i {
                    arrivals = rate_script[next_rate].arrivals;
                    next_rate += 1;
                }
                while cur_seg + 1 < seg_bounds.len() - 1 && i >= seg_bounds[cur_seg + 1] {
                    cur_seg += 1;
                }
                // Admission: the arrival happens on the clock
                // either way; only the dispatch is conditional.
                let outstanding = shared.in_flight.load(Ordering::Relaxed);
                if outstanding >= max_in_flight {
                    shared.dropped.fetch_add(1, Ordering::Relaxed);
                    segs[cur_seg].dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    let now = outstanding + 1;
                    shared.in_flight.fetch_add(1, Ordering::Relaxed);
                    shared.peak_in_flight.fetch_max(now, Ordering::Relaxed);
                    shared.dispatched.fetch_add(1, Ordering::Relaxed);
                    segs[cur_seg].dispatched.fetch_add(1, Ordering::Relaxed);
                    // Latency clock starts at admission, not at the
                    // completion task's first poll: the time a
                    // dispatched query spends waiting for the
                    // executor to schedule it is part of its
                    // latency (dropping it would under-report the
                    // tail exactly at congested sweep points —
                    // coordinated omission).
                    let t0 = Instant::now();
                    let fut = client.load_execute(make_cmd(i));
                    let shared = shared.clone();
                    let segs = segs.clone();
                    let seg = cur_seg;
                    rt.spawn(async move {
                        match fut.await {
                            Ok(_) => {
                                let ms = t0.elapsed().as_secs_f64() * 1e3;
                                shared.latency_ms.lock().unwrap().record(ms);
                                shared.completed.fetch_add(1, Ordering::Relaxed);
                                segs[seg].latency_ms.lock().unwrap().record(ms);
                                segs[seg].completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                shared.failed.fetch_add(1, Ordering::Relaxed);
                                segs[seg].failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                shared.offered.fetch_add(1, Ordering::Relaxed);
                let gap = arrivals.gap_after_us(i, &mut rng);
                if gap > 0 {
                    next_arrival += Duration::from_micros(gap);
                    rt.sleep_until(next_arrival).await;
                }
            }
        })
    };

    // The calling thread watches arrival progress and applies the
    // sickness script (it holds the &self borrow the replicas
    // need; the pacer task must be 'static).
    let mut script: Vec<SicknessEvent> = cfg.script.clone();
    script.sort_by_key(|e| e.at_query);
    let mut next_event = 0;
    // Client-counter snapshots (completed queries, reissues, ρ̂)
    // taken as the generator crosses each segment boundary; the
    // deltas between consecutive snapshots become the segments'
    // realized reissue rates.
    let snap = |c: &C| {
        let (queries, reissues) = c.load_counters();
        (queries, reissues, c.load_utilization().unwrap_or(f64::NAN))
    };
    let mut snaps = vec![snap(client)];
    let interior = &bounds[1..bounds.len() - 1];
    let mut next_bound = 0usize;
    // Time-averaged ρ̂ per segment, accumulated at every poll (the
    // end-point snapshot alone is a noisy point sample of a
    // sawtoothing estimate).
    let mut rho_sum = vec![0.0f64; nseg];
    let mut rho_polls = vec![0u64; nseg];
    let poll = Duration::from_micros(200);
    loop {
        let offered = shared.offered.load(Ordering::Relaxed) as usize;
        while next_event < script.len() && script[next_event].at_query <= offered {
            let e = script[next_event];
            sicken(e.replica, e.nanos_per_op);
            next_event += 1;
        }
        while next_bound < interior.len() && offered >= interior[next_bound] {
            snaps.push(snap(client));
            next_bound += 1;
        }
        if let Some(rho) = client.load_utilization() {
            let k = bounds.partition_point(|&b| b <= offered).saturating_sub(1);
            let k = k.min(nseg - 1);
            rho_sum[k] += rho;
            rho_polls[k] += 1;
        }
        if offered >= cfg.queries {
            break;
        }
        std::thread::sleep(poll);
    }
    client.load_runtime().block_on(pacer);
    // Drain: every dispatched query resolves as completed or
    // failed (the transport guarantees each request a reply or an
    // error), so this terminates once the slowest straggler —
    // monster service times included — finishes.
    loop {
        let done = shared.completed.load(Ordering::Relaxed) + shared.failed.load(Ordering::Relaxed);
        if done >= shared.dispatched.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Final snapshot after drain so the last segment's delta
    // includes its stragglers.
    snaps.push(snap(client));

    let segments: Vec<SegmentReport> = (0..nseg)
        .map(|k| {
            let start = bounds[k];
            let arrivals = rate_script
                .iter()
                .rev()
                .find(|e| e.at_query <= start)
                .map(|e| e.arrivals)
                .unwrap_or(cfg.arrivals);
            let s = &segs[k];
            SegmentReport {
                start,
                end: bounds[k + 1],
                arrivals,
                dispatched: s.dispatched.load(Ordering::Relaxed),
                dropped: s.dropped.load(Ordering::Relaxed),
                completed: s.completed.load(Ordering::Relaxed),
                failed: s.failed.load(Ordering::Relaxed),
                latency_ms: s.latency_ms.lock().unwrap().clone(),
                queries_delta: snaps[k + 1].0.saturating_sub(snaps[k].0),
                reissues_delta: snaps[k + 1].1.saturating_sub(snaps[k].1),
                utilization_end: snaps[k + 1].2,
                utilization_mean: if rho_polls[k] > 0 {
                    rho_sum[k] / rho_polls[k] as f64
                } else {
                    f64::NAN
                },
            }
        })
        .collect();

    let latency_ms = shared.latency_ms.lock().unwrap().clone();
    LoadReport {
        dispatched: shared.dispatched.load(Ordering::Relaxed),
        dropped: shared.dropped.load(Ordering::Relaxed),
        completed: shared.completed.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
        peak_in_flight: shared.peak_in_flight.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latency_ms,
        segments,
    }
}

struct RunShared {
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
    /// Arrivals offered so far (dispatched + dropped) — the script
    /// clock.
    offered: AtomicU64,
    dispatched: AtomicU64,
    dropped: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    latency_ms: Mutex<LogHistogram>,
}

/// Per-segment slice of [`RunShared`]; indexed by the dispatch-time
/// segment so stragglers land in the segment that offered them.
struct SegShared {
    dispatched: AtomicU64,
    dropped: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    latency_ms: Mutex<LogHistogram>,
}

impl SegShared {
    fn new() -> Self {
        SegShared {
            dispatched: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latency_ms: Mutex::new(LogHistogram::latency_ms()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HedgeConfig;

    #[test]
    fn arrivals_rates() {
        assert!((Arrivals::Fixed { interval_us: 500 }.rate_qps() - 2_000.0).abs() < 1e-9);
        assert!((Arrivals::Poisson { mean_us: 2_000 }.rate_qps() - 500.0).abs() < 1e-9);
        assert!(
            (Arrivals::Burst {
                size: 10,
                gap_us: 10_000
            }
            .rate_qps()
                - 1_000.0)
                .abs()
                < 1e-9
        );
        // Burst gaps only land at burst boundaries.
        let mut rng = SmallRng::seed_from_u64(1);
        let b = Arrivals::Burst {
            size: 3,
            gap_us: 900,
        };
        let gaps: Vec<u64> = (0..6).map(|i| b.gap_after_us(i, &mut rng)).collect();
        assert_eq!(gaps, vec![0, 0, 900, 0, 0, 900]);
        // Poisson gaps average near the mean.
        let p = Arrivals::Poisson { mean_us: 1_000 };
        let n = 20_000;
        let total: u64 = (0..n).map(|i| p.gap_after_us(i, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1_000.0).abs() < 50.0, "poisson mean {mean}");
    }

    #[test]
    fn cluster_spawns_and_serves_basic_load() {
        let mut store = KvStore::new();
        let (reply, _) = store.execute(&Command::Set("k".into(), "v".into()));
        assert_eq!(reply, kvstore::Reply::Ok);
        let cluster = Cluster::spawn(3, &store, 0).unwrap();
        assert_eq!(cluster.len(), 3);
        assert_eq!(cluster.addrs().len(), 3);
        let client = HedgedClient::connect(&cluster.addrs(), HedgeConfig::default()).unwrap();
        let report = cluster.run_load(
            &client,
            &LoadConfig {
                queries: 300,
                arrivals: Arrivals::Fixed { interval_us: 50 },
                max_in_flight: 64,
                ..LoadConfig::default()
            },
            |_| Command::Get("k".into()),
        );
        assert_eq!(report.dispatched + report.dropped, 300);
        assert_eq!(report.lost(), 0, "every query must be accounted for");
        assert_eq!(report.failed, 0);
        assert!(report.completed > 0);
        assert!(report.quantile(0.5).is_some());
        assert!(report.peak_in_flight <= 64);
        assert!(report.drop_rate() < 1.0);
    }
}
