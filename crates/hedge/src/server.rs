//! A TCP transport for the kvstore: real sockets in front of
//! [`MiniServer`]'s round-robin loop.
//!
//! Each accepted socket becomes one `MiniServer` connection. A reader
//! thread per socket decodes RESP frames and injects them into the
//! server's in-process pipes; a single sweeper thread drives
//! [`MiniServer::sweep`] — preserving the paper's §6.2 head-of-line
//! blocking exactly, now with wall-clock service times (the sweeper
//! burns `nanos_per_op` per unit of store cost, so a monster `SINTER`
//! really does stall every other connection's next reply).
//!
//! ## Tied-request cancellation
//!
//! Requests on a connection carry an implicit sequence number (0, 1,
//! 2, …, counted by both sides). A client that no longer needs request
//! `n` — because its hedged twin already won — sends `CANCEL n` on the
//! same connection. If frame `n` is still queued (not yet swept), the
//! transport *retracts* it atomically via
//! [`Connection::take_inbound`] and replies `-ERR cancelled` in its
//! place, so the reply stream stays in order and the server never does
//! the work. If the request already executed, the `CANCEL` is a no-op
//! and the real reply stands.

use kvstore::resp::{encode_reply, peek_command, CommandFrame};
use kvstore::server::{Connection, MiniServer, ServerStats};
use kvstore::Reply;
use kvstore::{Backend, KvStore};

use bytes::{Buf, BytesMut};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Reply body sent for a retracted (tied-cancelled) request.
pub const CANCELLED_MARKER: &str = "cancelled";

/// The retraction reply, pre-encoded: exactly what
/// `encode_reply(&Reply::Error(CANCELLED_MARKER.into()))` produces,
/// kept as a static frame so the cancel fast path allocates nothing.
const CANCELLED_FRAME: &[u8] = b"-ERR cancelled\r\n";

/// Configuration for [`TcpServer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpServerConfig {
    /// Wall-clock nanoseconds of service time per unit of store cost.
    /// `0` disables the burn (replies as fast as the store executes).
    /// The kvstore's cost model counts elementary set operations, so
    /// e.g. `1_000` makes a 100k-element intersection take ~100 ms —
    /// a "query of death" — while a `GET` stays ~µs.
    pub nanos_per_op: u64,
}

struct Pending {
    next_seq: u64,
    injected: Option<u64>,
}

struct ConnState {
    pipe: Connection,
    writer: Mutex<TcpStream>,
    pending: Mutex<Pending>,
    dead: AtomicBool,
}

struct Shared<B: Backend> {
    server: Mutex<MiniServer<B>>,
    sweep_cv: Condvar,
    conns: Mutex<Vec<Arc<ConnState>>>,
    stop: AtomicBool,
    /// Live copy of [`TcpServerConfig::nanos_per_op`]; see
    /// [`TcpServer::set_nanos_per_op`].
    nanos_per_op: AtomicU64,
}

/// A replica listening on a real TCP socket.
///
/// Generic over the [`Backend`] it serves (a [`KvStore`] by default, a
/// BM25 index shard for scatter-gather fan-out, …); the transport —
/// RESP framing, round-robin sweep, wall-clock burn, tied-request
/// cancellation — is backend-agnostic. Shuts down (and joins all
/// threads) on [`TcpServer::shutdown`] or drop.
pub struct TcpServer<B: Backend = KvStore> {
    local_addr: SocketAddr,
    shared: Arc<Shared<B>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<B: Backend> TcpServer<B> {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `store`.
    pub fn bind(addr: &str, store: B, cfg: TcpServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            server: Mutex::new(MiniServer::new(store)),
            sweep_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            nanos_per_op: AtomicU64::new(cfg.nanos_per_op),
        });

        let mut threads = Vec::new();
        let accept_shared = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("kv-accept-{local_addr}"))
                .spawn(move || accept_loop(&listener, &accept_shared))
                .expect("spawn accept thread"),
        );
        let sweep_shared = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("kv-sweep-{local_addr}"))
                .spawn(move || sweep_loop(&sweep_shared))
                .expect("spawn sweeper thread"),
        );

        Ok(TcpServer {
            local_addr,
            shared,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (resolve ephemeral ports here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Server-side execution statistics so far.
    pub fn stats(&self) -> ServerStats {
        self.shared.server.lock().unwrap().stats()
    }

    /// Direct backend access (dataset loading before serving).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut B) -> R) -> R {
        f(self.shared.server.lock().unwrap().store_mut())
    }

    /// Changes the per-cost-unit service burn while serving. Lets a
    /// running replica be slowed down ("sickened") or sped up
    /// ("healed") without dropping its connections — the knob the
    /// EWMA-targeting tests turn to verify reissue traffic shifts away
    /// from a degraded replica and returns once it recovers.
    pub fn set_nanos_per_op(&self, nanos_per_op: u64) {
        self.shared
            .nanos_per_op
            .store(nanos_per_op, Ordering::Relaxed);
    }

    /// Connections currently tracked. Disconnected peers are reaped by
    /// the sweeper, so this returns to zero once clients go away (it
    /// used to grow monotonically — see `reap_dead`).
    pub fn connection_count(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// Stops all threads and closes the listener.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.sweep_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        for t in self.threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
    }
}

impl<B: Backend> Drop for TcpServer<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<B: Backend>(listener: &TcpListener, shared: &Arc<Shared<B>>) {
    while !shared.stop.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
        let Ok(writer) = stream.try_clone() else {
            continue;
        };
        let pipe = shared.server.lock().unwrap().accept();
        let state = Arc::new(ConnState {
            pipe,
            writer: Mutex::new(writer),
            pending: Mutex::new(Pending {
                next_seq: 0,
                injected: None,
            }),
            dead: AtomicBool::new(false),
        });
        shared.conns.lock().unwrap().push(state.clone());
        let reader_shared = shared.clone();
        // Reader threads exit on socket close or server stop; the
        // sweeper joins them implicitly by process teardown order.
        let _ = std::thread::Builder::new()
            .name("kv-conn-reader".into())
            .spawn(move || reader_loop(stream, &state, &reader_shared));
    }
}

fn reader_loop<B: Backend>(mut stream: TcpStream, state: &Arc<ConnState>, shared: &Arc<Shared<B>>) {
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 16 * 1024];
    // Reused for error replies and cancel-confirmation flushes.
    let mut scratch = BytesMut::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        // One sweeper wakeup per socket read, not per frame: a
        // pipelined client lands several frames per segment, and
        // notifying for each would pay a futex wake apiece for work
        // the sweeper drains in one cycle anyway.
        let mut notify = false;
        loop {
            // Validate-and-classify only: the raw frame bytes are
            // forwarded into the pipe verbatim, so the sweeper's
            // decode is the one materializing decode on the path
            // (previously the frame was decoded here and re-encoded
            // into the pipe — a full extra codec round per request).
            match peek_command(&buf[..]) {
                Ok(Some((CommandFrame::Cancel(seq), consumed))) => {
                    buf.advance(consumed);
                    handle_cancel(state, seq, &mut scratch);
                }
                Ok(Some((CommandFrame::Request, consumed))) => {
                    let mut pending = state.pending.lock().unwrap();
                    let seq = pending.next_seq;
                    pending.next_seq += 1;
                    state.pipe.send_bytes(&buf[..consumed]);
                    buf.advance(consumed);
                    pending.injected = Some(seq);
                    drop(pending);
                    notify = true;
                }
                Ok(None) => break,
                Err(err) => {
                    // Mirror MiniServer: error reply, drop the rest.
                    buf.clear();
                    scratch.clear();
                    encode_reply(&Reply::Error(err.to_string()), &mut scratch);
                    state.pipe.push_outbound(&scratch);
                    notify = true;
                }
            }
        }
        if notify {
            shared.sweep_cv.notify_all();
        }
    }
    state.dead.store(true, Ordering::SeqCst);
}

/// Attempts to retract queued request `seq` (tied-request cancel).
fn handle_cancel(state: &Arc<ConnState>, seq: u64, scratch: &mut BytesMut) {
    let pending = state.pending.lock().unwrap();
    // Only the most recently injected request is retractable, and only
    // if its frame is still sitting in the pipe. `take_inbound` is
    // atomic with the sweep's decode, so the frame either comes back
    // whole (never executed) or is already being executed (CANCEL
    // no-op; the real reply stands).
    if pending.injected == Some(seq) {
        let taken = state.pipe.take_inbound();
        if !taken.is_empty() {
            // Retraction substitutes the cancelled marker for the
            // frame's reply, so it is only order-safe when the target
            // is the *only* frame in the pipe — a pipelined client may
            // have earlier frames queued whose replies must precede
            // the marker. If anything besides the single target frame
            // came back, put it all back untouched and let the cancel
            // miss (cancellation is best-effort by design). Only this
            // reader thread appends inbound bytes, so the put-back
            // cannot interleave with new frames.
            let single_frame = matches!(
                peek_command(&taken[..]),
                Ok(Some((_, consumed))) if consumed == taken.len()
            );
            if single_frame {
                state.pipe.push_outbound(CANCELLED_FRAME);
                drop(pending);
                // Deliver the confirmation now — the sweeper may be
                // busy burning service time for another connection's
                // query for a long while, and the whole point of
                // cancelling is not to wait for that.
                flush_conn(state, scratch);
            } else {
                state.pipe.send_bytes(&taken);
            }
        }
    }
}

/// Atomically drains and writes one connection's outbound bytes
/// through the caller's reusable `scratch` buffer (no allocation per
/// flush). The writer lock is taken *before* draining so concurrent
/// flushes (the sweeper's and a cancel confirmation) cannot reorder
/// reply bytes.
fn flush_conn(conn: &ConnState, scratch: &mut BytesMut) {
    if conn.dead.load(Ordering::SeqCst) {
        return;
    }
    let mut writer = conn.writer.lock().unwrap();
    scratch.clear();
    conn.pipe.drain_outbound_into(scratch);
    if !scratch.is_empty() && writer.write_all(scratch).is_err() {
        conn.dead.store(true, Ordering::SeqCst);
    }
}

/// Commands executed per connection per sweep cycle before moving on
/// — the round-robin fairness granularity for pipelined clients.
const SWEEP_BATCH: usize = 32;

fn sweep_loop<B: Backend>(shared: &Arc<Shared<B>>) {
    // Both buffers persist across cycles: `cycle` keeps its capacity
    // (refreshed with cheap Arc clones each pass instead of a fresh
    // Vec allocation), `scratch` pools the flush path's staging bytes.
    let mut cycle: Vec<Arc<ConnState>> = Vec::new();
    let mut scratch = BytesMut::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // One round-robin cycle, one connection at a time. Each
        // executed command's service time (cost × nanos_per_op) is
        // burned — and its reply flushed — *individually, in cycle
        // order*: a monster command stalls every connection later in
        // the cycle (real head-of-line blocking), but replies already
        // produced earlier in the cycle are released immediately
        // rather than being held behind the monster's burn.
        cycle.clear();
        cycle.extend(shared.conns.lock().unwrap().iter().cloned());
        let mut executed = 0usize;
        for (idx, conn) in cycle.iter().enumerate() {
            // Drain the connection's complete frames (a pipelined
            // client coalesces several per segment), burning each
            // command's service time individually, then flush the
            // whole batch of replies in one write. With one request
            // per connection on the wire — every hedged/tail-latency
            // path — this executes at most one command, exactly the
            // old per-command behavior; the batch cap keeps one
            // deep-queued connection from starving the rest of the
            // cycle indefinitely.
            let mut batched = 0usize;
            while batched < SWEEP_BATCH {
                let cost = shared.server.lock().unwrap().sweep_conn(idx);
                let Some(cost) = cost else { break };
                batched += 1;
                let nanos_per_op = shared.nanos_per_op.load(Ordering::Relaxed);
                if cost > 0 && nanos_per_op > 0 {
                    burn(Duration::from_nanos(cost * nanos_per_op));
                }
            }
            if batched > 0 {
                executed += batched;
                flush_conn(conn, &mut scratch);
            }
        }
        // Catch stragglers (e.g. protocol-error replies written by the
        // readers) that the per-command flush above did not cover.
        flush_replies(shared, &mut scratch);
        reap_dead(shared);
        if executed == 0 {
            let server = shared.server.lock().unwrap();
            // Timeout bounds the lost-wakeup window (reader notifies
            // without holding the server lock).
            let _ = shared
                .sweep_cv
                .wait_timeout(server, Duration::from_micros(100))
                .unwrap();
        }
    }
}

/// Forwards every connection's pending outbound bytes to its socket.
fn flush_replies<B: Backend>(shared: &Arc<Shared<B>>, scratch: &mut BytesMut) {
    let conns = shared.conns.lock().unwrap();
    for conn in conns.iter() {
        flush_conn(conn, scratch);
    }
}

/// Removes connections whose peers have gone away (reader hit EOF, or
/// a reply write failed), keeping `shared.conns` and the
/// `MiniServer`'s connection list index-aligned — both lists only ever
/// append at the tail and remove here, under both locks. Without this
/// the sweep and broadcast loops scan dead connections forever and
/// memory grows with every client that ever connected.
fn reap_dead<B: Backend>(shared: &Arc<Shared<B>>) {
    if !shared
        .conns
        .lock()
        .unwrap()
        .iter()
        .any(|c| c.dead.load(Ordering::SeqCst))
    {
        return;
    }
    // Lock order: server before conns, matching no other nested use
    // (the accept loop takes them in separate statements).
    let mut server = shared.server.lock().unwrap();
    let mut conns = shared.conns.lock().unwrap();
    let mut idx = 0;
    while idx < conns.len() {
        if conns[idx].dead.load(Ordering::SeqCst) {
            server.remove_connection(idx);
            conns.remove(idx);
        } else {
            idx += 1;
        }
    }
}

/// Spins (short waits) or sleeps (long waits) for `d`.
fn burn(d: Duration) {
    if d >= Duration::from_micros(200) {
        std::thread::sleep(d);
    } else {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }
}

/// Convenience: spins up `n` replica servers over the same dataset
/// snapshot, each on an ephemeral local port.
pub fn spawn_replicas<B: Backend + Clone>(
    n: usize,
    store: &B,
    cfg: TcpServerConfig,
) -> std::io::Result<Vec<TcpServer<B>>> {
    (0..n)
        .map(|_| TcpServer::bind("127.0.0.1:0", store.clone(), cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::resp::{decode_reply, encode_command};
    use kvstore::Command;

    fn send_cmd(stream: &mut TcpStream, cmd: &Command) {
        let mut out = BytesMut::new();
        encode_command(cmd, &mut out);
        stream.write_all(&out).unwrap();
    }

    fn read_reply(stream: &mut TcpStream) -> Reply {
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(r) = decode_reply(&mut buf).unwrap() {
                return r;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed mid-reply");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn tcp_roundtrip_basics() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        send_cmd(&mut c, &Command::Set("k".into(), "v".into()));
        assert_eq!(read_reply(&mut c), Reply::Ok);
        send_cmd(&mut c, &Command::Get("k".into()));
        assert_eq!(read_reply(&mut c), Reply::Str("v".into()));
        server.shutdown();
    }

    #[test]
    fn two_connections_round_robin() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut a = TcpStream::connect(server.local_addr()).unwrap();
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut a, &Command::Ping);
        send_cmd(&mut b, &Command::Ping);
        assert_eq!(read_reply(&mut a), Reply::Pong);
        assert_eq!(read_reply(&mut b), Reply::Pong);
        assert!(server.stats().commands >= 2);
        server.shutdown();
    }

    #[test]
    fn cancel_retracts_queued_request() {
        // Load a slow key so the sweeper is busy while we cancel.
        let mut store = KvStore::new();
        store.load_set(
            "big1",
            kvstore::IntSet::from_unsorted((0..200_000).collect()),
        );
        store.load_set(
            "big2",
            kvstore::IntSet::from_unsorted((100_000..300_000).collect()),
        );
        let server =
            TcpServer::bind("127.0.0.1:0", store, TcpServerConfig { nanos_per_op: 500 }).unwrap();
        // Connection A: a monster query occupies the sweeper.
        let mut a = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut a, &Command::SInterCard("big1".into(), "big2".into()));
        std::thread::sleep(Duration::from_millis(20)); // let it start
                                                       // Connection B: queue a request, then cancel before it sweeps.
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut b, &Command::SInterCard("big1".into(), "big2".into()));
        send_cmd(&mut b, &Command::Cancel(0));
        assert_eq!(
            read_reply(&mut b),
            Reply::Error(CANCELLED_MARKER.into()),
            "queued request should be retracted"
        );
        // Connection A's monster still completes with the right answer.
        assert_eq!(read_reply(&mut a), Reply::Int(100_000));
        // The cancelled command must never have executed: exactly one
        // SINTERCARD ran.
        assert_eq!(server.stats().commands, 1);
        server.shutdown();
    }

    #[test]
    fn disconnected_clients_are_reaped() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        // Connect, round-trip, disconnect — repeatedly. Before the
        // reap, every one of these left a dead ConnState (and a dead
        // MiniServer pipe) behind forever.
        for _ in 0..8 {
            let mut c = TcpStream::connect(server.local_addr()).unwrap();
            send_cmd(&mut c, &Command::Ping);
            assert_eq!(read_reply(&mut c), Reply::Pong);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.connection_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            server.connection_count(),
            0,
            "dead connections must be reaped"
        );
        // A fresh client still works after the reaping (indices stayed
        // aligned between the transport and the MiniServer).
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        assert_eq!(server.connection_count(), 1);
        server.shutdown();
    }

    #[test]
    fn reaping_preserves_live_connections_between_dead_ones() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut keep1 = TcpStream::connect(server.local_addr()).unwrap();
        let doomed = TcpStream::connect(server.local_addr()).unwrap();
        let mut keep2 = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut keep1, &Command::Ping);
        assert_eq!(read_reply(&mut keep1), Reply::Pong);
        drop(doomed);
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.connection_count() > 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.connection_count(), 2);
        // The survivors (one before, one after the removed slot) still
        // round-trip: sweep indices were not skewed by the removal.
        send_cmd(&mut keep2, &Command::Set("k".into(), "v".into()));
        assert_eq!(read_reply(&mut keep2), Reply::Ok);
        send_cmd(&mut keep1, &Command::Get("k".into()));
        assert_eq!(read_reply(&mut keep1), Reply::Str("v".into()));
        server.shutdown();
    }

    #[test]
    fn cancel_after_execution_is_noop() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        send_cmd(&mut c, &Command::Cancel(0)); // too late; ignored
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        server.shutdown();
    }
}
