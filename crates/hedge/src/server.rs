//! A TCP transport for the kvstore with a pluggable queue
//! [`Discipline`] and server-side *tied requests*.
//!
//! Every accepted socket gets a reader thread that decodes RESP frames
//! into per-connection FIFO queues. Only each connection's **head**
//! request is admitted into one central [`WaitQueue`], so the
//! configured cross-connection discipline (FIFO, cost-priority,
//! shortest-expected-burn, round-robin, …) can reorder freely while
//! per-connection reply order — the RESP contract — is preserved by
//! construction. A single sweeper thread pops the central queue,
//! executes against the shared backend, burns `cost × nanos_per_op`
//! of wall-clock service time, and writes the reply. The default
//! discipline, `RoundRobin { connections: 0 }`, reproduces the old
//! `MiniServer` round-robin sweep exactly.
//!
//! ## Tied-request cancellation
//!
//! Requests on a connection carry an implicit sequence number (0, 1,
//! 2, …, counted by both sides). A client that no longer needs request
//! `n` — because its hedged twin already won — sends `CANCEL n` on the
//! same connection. If the request is still queued (not yet swept) it
//! is *retracted* and `-ERR cancelled` takes its reply slot, so the
//! reply stream stays in order and the server never does the work.
//!
//! ## Server-side ties (dequeue-time peer cancellation)
//!
//! The client-driven `CANCEL` retracts a loser only after the winning
//! reply has crossed the network *twice* (reply to client, cancel back
//! to server). Following "The Tail at Scale", a tied pair instead
//! cancels at **dequeue time**: the primary is prefixed with
//! `TIE <id>` and the reissue with `TIE <id'> <addr> <id>` naming its
//! peer. The reissue's server announces itself to the primary's server
//! (`TIEPEER`) *after* registering and enqueueing — so a subsequent
//! `CANCELTIE` always finds the registration — and whichever server
//! dequeues its copy first sends `CANCELTIE` to the other over a small
//! server-to-server channel, retracting the twin while it still sits
//! in a queue. The wasted-work window shrinks from a full response
//! round-trip to one queue-exchange latency. If the announce arrives
//! after the primary already left the queue, the receiving server
//! *collapses* the tie by answering `CANCELTIE` immediately.

use kvstore::resp::{decode_command, encode_command, encode_reply};
use kvstore::server::ServerStats;
use kvstore::{Backend, Command, KvStore, Reply};
pub use reissue_core::discipline::Discipline;
use reissue_core::discipline::{QueueItem, WaitQueue};

use bytes::BytesMut;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Reply body sent for a retracted (cancelled) request.
pub const CANCELLED_MARKER: &str = "cancelled";

/// The retraction reply, pre-encoded: exactly what
/// `encode_reply(&Reply::Error(CANCELLED_MARKER.into()))` produces,
/// kept as a static frame so the cancel fast path allocates nothing.
const CANCELLED_FRAME: &[u8] = b"-ERR cancelled\r\n";

/// Ceiling on a single command's service burn. `cost × nanos_per_op`
/// is data-dependent (a giant `SINTER`), so the product is saturating
/// and capped rather than trusted: without this a crafted cost could
/// overflow `u64` nanoseconds or park the sweeper for centuries.
const MAX_BURN_NANOS: u64 = 5_000_000_000;

/// Configuration for [`TcpServer`].
#[derive(Clone, Copy, Debug)]
pub struct TcpServerConfig {
    /// Wall-clock nanoseconds of service time per unit of store cost.
    /// `0` disables the burn (replies as fast as the store executes).
    /// The kvstore's cost model counts elementary set operations, so
    /// e.g. `1_000` makes a 100k-element intersection take ~100 ms —
    /// a "query of death" — while a `GET` stays ~µs.
    pub nanos_per_op: u64,
    /// Cross-connection scheduling discipline for the central wait
    /// queue. Per-connection order is always FIFO (the RESP reply
    /// contract); the discipline chooses *between* connection heads.
    pub discipline: Discipline,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig {
            nanos_per_op: 0,
            // Dynamic round-robin over accept-order connection ids:
            // the historical MiniServer sweep semantics.
            discipline: Discipline::RoundRobin { connections: 0 },
        }
    }
}

/// Server-side tie protocol counters (see [`TcpServer::tie_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TieStats {
    /// Tie prefixes registered (primaries and reissues).
    pub registered: u64,
    /// `CANCELTIE` messages sent to a peer at dequeue time.
    pub peer_cancels_sent: u64,
    /// Queued requests retracted here because a peer's `CANCELTIE`
    /// arrived in time.
    pub retractions: u64,
    /// `TIEPEER` announces that arrived after the local copy already
    /// left the queue (tie collapsed; `CANCELTIE` answered at once).
    pub collapses: u64,
}

/// A tie prefix attached to the next request on a connection.
#[derive(Clone, Copy, Debug)]
struct TieInfo {
    id: u64,
    /// `Some((peer server, peer tie id))` on reissues.
    peer: Option<(SocketAddr, u64)>,
}

/// One queued request on a connection.
struct Entry {
    seq: u64,
    cmd: Command,
    /// Pre-execution cost estimate ([`Backend::estimate_cost`]).
    cost: u64,
    /// Milliseconds since server start, for age-based disciplines.
    enqueued_at: f64,
    tie: Option<TieInfo>,
    is_reissue: bool,
    /// Retracted; emits the cancelled marker when it reaches the head.
    cancelled: bool,
    /// Currently in the central queue (or held by the sweeper).
    admitted: bool,
    /// The sweeper has committed to executing it; too late to cancel.
    executing: bool,
}

struct ConnInner {
    queue: VecDeque<Entry>,
    next_seq: u64,
}

struct ConnState {
    /// Accept-order id, the round-robin key.
    id: usize,
    writer: Mutex<TcpStream>,
    inner: Mutex<ConnInner>,
    dead: AtomicBool,
}

/// The central queue's view of a connection head.
struct SchedItem {
    conn: Arc<ConnState>,
    seq: u64,
    cost: f64,
    enqueued_at: f64,
    is_reissue: bool,
}

impl QueueItem for SchedItem {
    fn cost(&self) -> f64 {
        self.cost
    }
    fn enqueued_at(&self) -> f64 {
        self.enqueued_at
    }
    fn is_reissue(&self) -> bool {
        self.is_reissue
    }
    fn connection(&self) -> usize {
        self.conn.id
    }
}

/// A registered tie: where the tied request currently sits.
struct TieReg {
    conn: Arc<ConnState>,
    seq: u64,
}

/// A bounded remember-set of tie ids: oldest inserted is evicted once
/// the cap is hit, so a server that never sees the matching event
/// cannot leak memory.
struct BoundedSet {
    set: std::collections::HashSet<u64>,
    order: VecDeque<u64>,
}

impl BoundedSet {
    const CAP: usize = 4096;

    fn new() -> Self {
        BoundedSet {
            set: std::collections::HashSet::new(),
            order: VecDeque::new(),
        }
    }

    fn insert(&mut self, id: u64) {
        if self.set.insert(id) {
            self.order.push_back(id);
            if self.order.len() > Self::CAP {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
        }
    }

    fn remove(&mut self, id: u64) -> bool {
        // The stale `order` slot is left behind; eviction tolerates it.
        self.set.remove(&id)
    }

    fn contains(&self, id: u64) -> bool {
        self.set.contains(&id)
    }
}

/// All tie state, under one leaf mutex. The protocol messages
/// (`TIEPEER`, `CANCELTIE`) travel on separate sockets from the tied
/// requests themselves, so any arrival order is possible; the
/// tombstone sets make every ordering converge:
///
/// * `regs` — ties whose request is queued here right now.
/// * `done` — ties that already left a queue here (dequeued for
///   execution, or retracted). A `TIEPEER` for a done tie collapses
///   (answer `CANCELTIE` at once); a `CANCELTIE` for one is a no-op.
/// * `pending_peers` — `TIEPEER` arrived before its tie registered
///   (the reader can stall behind a long `Backend::execute` while
///   estimating costs): attach the peer at registration time.
/// * `precancelled` — `CANCELTIE` arrived before its tie registered:
///   the request is born cancelled and never executes.
struct TieTable {
    regs: HashMap<u64, TieReg>,
    done: BoundedSet,
    pending_peers: HashMap<u64, (SocketAddr, u64)>,
    pending_order: VecDeque<u64>,
    precancelled: BoundedSet,
}

impl TieTable {
    fn new() -> Self {
        TieTable {
            regs: HashMap::new(),
            done: BoundedSet::new(),
            pending_peers: HashMap::new(),
            pending_order: VecDeque::new(),
            precancelled: BoundedSet::new(),
        }
    }

    /// Marks a tie as having left the queue (executed or retracted).
    fn finish(&mut self, id: u64) {
        self.regs.remove(&id);
        self.done.insert(id);
    }

    fn store_pending_peer(&mut self, id: u64, peer: (SocketAddr, u64)) {
        if self.pending_peers.insert(id, peer).is_none() {
            self.pending_order.push_back(id);
            if self.pending_order.len() > BoundedSet::CAP {
                if let Some(old) = self.pending_order.pop_front() {
                    self.pending_peers.remove(&old);
                }
            }
        }
    }
}

struct TieCounters {
    registered: AtomicU64,
    peer_cancels_sent: AtomicU64,
    retractions: AtomicU64,
    collapses: AtomicU64,
}

struct Shared<B: Backend> {
    store: Mutex<B>,
    stats: Mutex<ServerStats>,
    /// Central cross-connection wait queue. Lock order: a connection's
    /// `inner` may be held while taking `sched` (admission, take), and
    /// `ties` is only ever taken last or alone — never the reverse.
    sched: Mutex<WaitQueue<SchedItem>>,
    sweep_cv: Condvar,
    conns: Mutex<Vec<Arc<ConnState>>>,
    /// Tie registrations and out-of-order tombstones.
    ties: Mutex<TieTable>,
    /// Outbound server-to-server tie messages; `None` once shut down.
    tie_tx: Mutex<Option<mpsc::Sender<(SocketAddr, Command)>>>,
    tie_counters: TieCounters,
    stop: AtomicBool,
    /// Live copy of [`TcpServerConfig::nanos_per_op`]; see
    /// [`TcpServer::set_nanos_per_op`].
    nanos_per_op: AtomicU64,
    epoch: Instant,
    local_addr: SocketAddr,
    /// Reader threads, tracked so shutdown can join them (they used to
    /// be spawned detached and leaked past shutdown).
    reader_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<B: Backend> Shared<B> {
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }

    fn send_tie(&self, addr: SocketAddr, cmd: Command) {
        if let Some(tx) = self.tie_tx.lock().unwrap().as_ref() {
            let _ = tx.send((addr, cmd));
        }
    }
}

/// A replica listening on a real TCP socket.
///
/// Generic over the [`Backend`] it serves (a [`KvStore`] by default, a
/// BM25 index shard for scatter-gather fan-out, …); the transport —
/// RESP framing, discipline scheduling, wall-clock burn, tied-request
/// cancellation — is backend-agnostic. Shuts down (and joins all
/// threads, readers included) on [`TcpServer::shutdown`] or drop.
pub struct TcpServer<B: Backend = KvStore> {
    local_addr: SocketAddr,
    shared: Arc<Shared<B>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<B: Backend> TcpServer<B> {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `store`.
    pub fn bind(addr: &str, store: B, cfg: TcpServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (tie_tx, tie_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            stats: Mutex::new(ServerStats::default()),
            sched: Mutex::new(WaitQueue::new(cfg.discipline)),
            sweep_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            ties: Mutex::new(TieTable::new()),
            tie_tx: Mutex::new(Some(tie_tx)),
            tie_counters: TieCounters {
                registered: AtomicU64::new(0),
                peer_cancels_sent: AtomicU64::new(0),
                retractions: AtomicU64::new(0),
                collapses: AtomicU64::new(0),
            },
            stop: AtomicBool::new(false),
            nanos_per_op: AtomicU64::new(cfg.nanos_per_op),
            epoch: Instant::now(),
            local_addr,
            reader_threads: Mutex::new(Vec::new()),
        });

        let mut threads = Vec::new();
        let accept_shared = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("kv-accept-{local_addr}"))
                .spawn(move || accept_loop(&listener, &accept_shared))
                .expect("spawn accept thread"),
        );
        let sweep_shared = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("kv-sweep-{local_addr}"))
                .spawn(move || sweep_loop(&sweep_shared))
                .expect("spawn sweeper thread"),
        );
        threads.push(
            std::thread::Builder::new()
                .name(format!("kv-tie-{local_addr}"))
                .spawn(move || tie_sender_loop(&tie_rx))
                .expect("spawn tie sender thread"),
        );

        Ok(TcpServer {
            local_addr,
            shared,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (resolve ephemeral ports here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Server-side execution statistics so far.
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock().unwrap()
    }

    /// Server-side tie protocol counters so far.
    pub fn tie_stats(&self) -> TieStats {
        let c = &self.shared.tie_counters;
        TieStats {
            registered: c.registered.load(Ordering::Relaxed),
            peer_cancels_sent: c.peer_cancels_sent.load(Ordering::Relaxed),
            retractions: c.retractions.load(Ordering::Relaxed),
            collapses: c.collapses.load(Ordering::Relaxed),
        }
    }

    /// Direct backend access (dataset loading before serving).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut B) -> R) -> R {
        f(&mut self.shared.store.lock().unwrap())
    }

    /// Changes the per-cost-unit service burn while serving. Lets a
    /// running replica be slowed down ("sickened") or sped up
    /// ("healed") without dropping its connections — the knob the
    /// EWMA-targeting tests turn to verify reissue traffic shifts away
    /// from a degraded replica and returns once it recovers.
    pub fn set_nanos_per_op(&self, nanos_per_op: u64) {
        self.shared
            .nanos_per_op
            .store(nanos_per_op, Ordering::Relaxed);
    }

    /// Connections currently tracked. Disconnected peers are reaped by
    /// the sweeper, so this returns to zero once clients go away.
    pub fn connection_count(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// Stops all threads — accept, sweeper, tie sender, and every
    /// per-connection reader — and joins them.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.sweep_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Dropping the sender disconnects the tie thread's recv loop.
        drop(self.shared.tie_tx.lock().unwrap().take());
        for t in self.threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
        // Readers exit within one read-timeout tick of the stop flag;
        // joining them here (instead of leaking detached threads) means
        // no reader can touch the store after shutdown returns.
        for t in self.shared.reader_threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
        // Drop every connection (and queued scheduler entries holding
        // them) so client sockets see EOF once shutdown returns.
        self.shared.conns.lock().unwrap().clear();
        *self.shared.sched.lock().unwrap() = WaitQueue::new(Discipline::Fifo);
        self.shared.ties.lock().unwrap().regs.clear();
    }
}

impl<B: Backend> Drop for TcpServer<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<B: Backend>(listener: &TcpListener, shared: &Arc<Shared<B>>) {
    let mut next_id = 0usize;
    // Backoff for persistent accept errors (EMFILE, ENOBUFS, …): the
    // old loop hot-spun on `continue`, pinning a core exactly when the
    // machine was already resource-starved.
    let mut backoff = Duration::from_millis(1);
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                stream
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
        let Ok(writer) = stream.try_clone() else {
            continue;
        };
        let state = Arc::new(ConnState {
            id: next_id,
            writer: Mutex::new(writer),
            inner: Mutex::new(ConnInner {
                queue: VecDeque::new(),
                next_seq: 0,
            }),
            dead: AtomicBool::new(false),
        });
        next_id += 1;
        shared.conns.lock().unwrap().push(state.clone());
        let reader_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("kv-conn-reader".into())
            .spawn(move || reader_loop(stream, &state, &reader_shared));
        if let Ok(handle) = handle {
            shared.reader_threads.lock().unwrap().push(handle);
        }
    }
}

fn reader_loop<B: Backend>(mut stream: TcpStream, state: &Arc<ConnState>, shared: &Arc<Shared<B>>) {
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut scratch = BytesMut::new();
    // A `TIE` control frame applies to the next request on this
    // connection; it consumes no sequence number and gets no reply.
    let mut pending_tie: Option<TieInfo> = None;
    while !shared.stop.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        loop {
            match decode_command(&mut buf) {
                Ok(Some(Command::Cancel(seq))) => client_cancel(shared, state, seq),
                Ok(Some(Command::Tie { id, peer })) => pending_tie = Some(TieInfo { id, peer }),
                Ok(Some(Command::TiePeer {
                    id,
                    peer_addr,
                    peer_id,
                })) => handle_tie_peer(shared, id, peer_addr, peer_id),
                Ok(Some(Command::CancelTie(id))) => handle_cancel_tie(shared, id),
                Ok(Some(cmd)) => enqueue_request(shared, state, cmd, pending_tie.take()),
                Ok(None) => break,
                Err(err) => {
                    // Mirror MiniServer: error reply, drop the rest.
                    buf.clear();
                    shared.stats.lock().unwrap().protocol_errors += 1;
                    scratch.clear();
                    encode_reply(&Reply::Error(err.to_string()), &mut scratch);
                    let inner = state.inner.lock().unwrap();
                    write_frame(state, &scratch);
                    drop(inner);
                }
            }
        }
    }
    state.dead.store(true, Ordering::SeqCst);
}

/// Writes one reply frame. Callers hold the connection's `inner` lock,
/// which is what serializes the per-connection reply order; the writer
/// mutex only guards the stream object itself.
fn write_frame(conn: &ConnState, bytes: &[u8]) {
    if conn.dead.load(Ordering::SeqCst) {
        return;
    }
    let mut writer = conn.writer.lock().unwrap();
    if writer.write_all(bytes).is_err() {
        conn.dead.store(true, Ordering::SeqCst);
    }
}

/// Enqueues a decoded request: assigns its sequence number, estimates
/// its cost, registers its tie (if prefixed), admits the connection
/// head to the central queue, and — for reissues — announces the tie
/// to the peer server *after* registration and enqueue, so a racing
/// `CANCELTIE` can never miss.
fn enqueue_request<B: Backend>(
    shared: &Arc<Shared<B>>,
    state: &Arc<ConnState>,
    cmd: Command,
    tie: Option<TieInfo>,
) {
    let cost = shared.store.lock().unwrap().estimate_cost(&cmd);
    let is_reissue = tie.is_some_and(|t| t.peer.is_some());
    let mut tie = tie;
    let mut precancelled = false;
    let mut inner = state.inner.lock().unwrap();
    let seq = inner.next_seq;
    inner.next_seq += 1;
    if let Some(t) = tie.as_mut() {
        let mut table = shared.ties.lock().unwrap();
        shared
            .tie_counters
            .registered
            .fetch_add(1, Ordering::Relaxed);
        if table.precancelled.remove(t.id) {
            // The peer's CANCELTIE outran this request (the reader can
            // stall behind a slow execute): born cancelled.
            table.done.insert(t.id);
            precancelled = true;
            shared
                .tie_counters
                .retractions
                .fetch_add(1, Ordering::Relaxed);
        } else {
            if let Some(peer) = table.pending_peers.remove(&t.id) {
                // A TIEPEER announce got here first; adopt it.
                if t.peer.is_none() {
                    t.peer = Some(peer);
                }
            }
            table.regs.insert(
                t.id,
                TieReg {
                    conn: state.clone(),
                    seq,
                },
            );
        }
    }
    inner.queue.push_back(Entry {
        seq,
        cmd,
        cost,
        enqueued_at: shared.now_ms(),
        tie,
        is_reissue,
        cancelled: precancelled,
        admitted: false,
        executing: false,
    });
    admit_head(shared, state, &mut inner);
    drop(inner);
    if is_reissue && !precancelled {
        if let Some(TieInfo {
            id,
            peer: Some((peer_addr, peer_id)),
        }) = tie
        {
            // Announce the reissue to the primary's server. Ordering:
            // the registration above is already visible, so the peer's
            // eventual CANCELTIE always finds it.
            shared.send_tie(
                peer_addr,
                Command::TiePeer {
                    id: peer_id,
                    peer_addr: shared.local_addr,
                    peer_id: id,
                },
            );
        }
    }
}

/// Advances a connection's head: emits cancelled markers for retracted
/// entries that reached the front (their reply slot, in order), and
/// admits the first live entry into the central queue. Caller holds
/// `inner`.
fn admit_head<B: Backend>(shared: &Shared<B>, conn: &Arc<ConnState>, inner: &mut ConnInner) {
    loop {
        let Some(front) = inner.queue.front_mut() else {
            return;
        };
        if front.admitted {
            return;
        }
        if front.cancelled {
            if let Some(t) = front.tie {
                shared.ties.lock().unwrap().finish(t.id);
            }
            write_frame(conn, CANCELLED_FRAME);
            inner.queue.pop_front();
            continue;
        }
        front.admitted = true;
        let item = SchedItem {
            conn: conn.clone(),
            seq: front.seq,
            cost: front.cost as f64,
            enqueued_at: front.enqueued_at,
            is_reissue: front.is_reissue,
        };
        shared.sched.lock().unwrap().push(item);
        shared.sweep_cv.notify_all();
        return;
    }
}

/// Marks the entry `seq` on `conn` as cancelled, retracting it
/// immediately when possible. Returns `true` if the retraction landed
/// in time (the request will never execute).
fn cancel_entry<B: Backend>(shared: &Shared<B>, conn: &Arc<ConnState>, seq: u64) -> bool {
    let mut inner = conn.inner.lock().unwrap();
    let Some(entry) = inner.queue.iter_mut().find(|e| e.seq == seq) else {
        return false; // already executed (or never existed): no-op
    };
    if entry.executing || entry.cancelled {
        return false;
    }
    entry.cancelled = true;
    if entry.admitted {
        // The head is in the central queue — or already in the
        // sweeper's hands. Take it back if it is still queued; if the
        // take misses, the sweeper holds it and will honor the
        // `cancelled` flag before executing.
        let taken = shared
            .sched
            .lock()
            .unwrap()
            .take(|it| Arc::ptr_eq(&it.conn, conn) && it.seq == seq);
        if taken.is_some() {
            if let Some(e) = inner.queue.front_mut() {
                e.admitted = false;
            }
            admit_head(shared, conn, &mut inner);
        }
    }
    // Deeper (non-admitted) entries stay queued; their marker is
    // emitted by `admit_head` when they reach the front.
    true
}

/// Client-driven `CANCEL <seq>` on the entry's own connection.
fn client_cancel<B: Backend>(shared: &Arc<Shared<B>>, state: &Arc<ConnState>, seq: u64) {
    cancel_entry(shared, state, seq);
}

/// A peer server announced a reissue tied to local tie `id`. If the
/// local copy is still queued, remember the peer so dequeue sends
/// `CANCELTIE`; if it already left the queue, collapse the tie by
/// cancelling the peer right away.
fn handle_tie_peer<B: Backend>(
    shared: &Arc<Shared<B>>,
    id: u64,
    peer_addr: SocketAddr,
    peer_id: u64,
) {
    let reg = {
        let mut table = shared.ties.lock().unwrap();
        match table.regs.get(&id) {
            Some(r) => Some((r.conn.clone(), r.seq)),
            None if table.done.contains(id) => None, // left the queue: collapse
            None => {
                // Announce outran the tied request itself; hold the
                // peer until registration adopts it.
                table.store_pending_peer(id, (peer_addr, peer_id));
                return;
            }
        }
    };
    if let Some((conn, seq)) = reg {
        let mut inner = conn.inner.lock().unwrap();
        if let Some(entry) = inner.queue.iter_mut().find(|e| e.seq == seq) {
            if !entry.executing && !entry.cancelled {
                if let Some(t) = entry.tie.as_mut() {
                    t.peer = Some((peer_addr, peer_id));
                    return;
                }
            }
        }
    }
    shared
        .tie_counters
        .collapses
        .fetch_add(1, Ordering::Relaxed);
    shared.send_tie(peer_addr, Command::CancelTie(peer_id));
}

/// A peer server dequeued the twin of tie `id`: retract our copy if it
/// is still queued.
fn handle_cancel_tie<B: Backend>(shared: &Arc<Shared<B>>, id: u64) {
    let reg = {
        let mut table = shared.ties.lock().unwrap();
        match table.regs.remove(&id) {
            Some(r) => {
                table.done.insert(id);
                Some((r.conn, r.seq))
            }
            None => {
                if !table.done.contains(id) {
                    // Cancel outran the tied request: remember it so
                    // the request is born cancelled when it arrives.
                    table.precancelled.insert(id);
                    table.pending_peers.remove(&id);
                }
                None
            }
        }
    };
    let Some((conn, seq)) = reg else {
        return; // already dequeued/retracted, or pre-cancelled
    };
    if cancel_entry(shared, &conn, seq) {
        shared
            .tie_counters
            .retractions
            .fetch_add(1, Ordering::Relaxed);
    }
}

fn sweep_loop<B: Backend>(shared: &Arc<Shared<B>>) {
    let mut scratch = BytesMut::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let now = shared.now_ms();
        let item = shared.sched.lock().unwrap().pop(now);
        let Some(item) = item else {
            reap_dead(shared);
            let guard = shared.sched.lock().unwrap();
            if !guard.is_empty() {
                continue; // pushed between the pop and this lock
            }
            // Timeout bounds the lost-wakeup window (readers notify
            // without holding the queue lock).
            let _ = shared
                .sweep_cv
                .wait_timeout(guard, Duration::from_micros(100))
                .unwrap();
            continue;
        };
        let mut inner = item.conn.inner.lock().unwrap();
        if item.conn.dead.load(Ordering::SeqCst) {
            if inner.queue.front().map(|e| e.seq) == Some(item.seq) {
                inner.queue.pop_front();
            }
            continue;
        }
        let Some(front) = inner.queue.front_mut() else {
            continue;
        };
        if front.seq != item.seq {
            continue; // stale: the entry was retracted under us
        }
        if front.cancelled {
            // Cancelled after admission but before we committed:
            // re-route through the marker path (a bonus retraction).
            front.admitted = false;
            admit_head(shared, &item.conn, &mut inner);
            continue;
        }
        front.executing = true;
        let cmd = front.cmd.clone();
        let tie = front.tie;
        drop(inner);
        // Dequeue-time peer cancellation: this copy won the queue race,
        // so retract the twin *now* — before execution — rather than
        // after the reply has crossed the network.
        if let Some(t) = tie {
            shared.ties.lock().unwrap().finish(t.id);
            if let Some((peer_addr, peer_id)) = t.peer {
                shared.send_tie(peer_addr, Command::CancelTie(peer_id));
                shared
                    .tie_counters
                    .peer_cancels_sent
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let (reply, cost) = shared.store.lock().unwrap().execute(&cmd);
        {
            let mut stats = shared.stats.lock().unwrap();
            stats.commands += 1;
            stats.sweeps += 1;
            stats.total_cost += cost;
        }
        let nanos_per_op = shared.nanos_per_op.load(Ordering::Relaxed);
        if cost > 0 && nanos_per_op > 0 {
            // Saturating and capped: cost is data-dependent, and a
            // plain multiply could overflow into a near-zero burn.
            let nanos = cost.saturating_mul(nanos_per_op).min(MAX_BURN_NANOS);
            burn(Duration::from_nanos(nanos));
        }
        let mut inner = item.conn.inner.lock().unwrap();
        if inner.queue.front().map(|e| e.seq) == Some(item.seq) {
            inner.queue.pop_front();
            scratch.clear();
            encode_reply(&reply, &mut scratch);
            write_frame(&item.conn, &scratch);
            admit_head(shared, &item.conn, &mut inner);
        }
    }
}

/// Removes connections whose peers have gone away (reader hit EOF, or
/// a reply write failed), along with any tie registrations pointing at
/// them. Without this the connection list and tie map grow with every
/// client that ever connected.
fn reap_dead<B: Backend>(shared: &Arc<Shared<B>>) {
    {
        let mut conns = shared.conns.lock().unwrap();
        if !conns.iter().any(|c| c.dead.load(Ordering::SeqCst)) {
            return;
        }
        conns.retain(|c| !c.dead.load(Ordering::SeqCst));
    }
    shared
        .ties
        .lock()
        .unwrap()
        .regs
        .retain(|_, r| !r.conn.dead.load(Ordering::SeqCst));
}

/// Forwards tie-protocol messages (`TIEPEER`, `CANCELTIE`) to peer
/// servers over cached client connections. Write-only: the peers treat
/// these as control frames and never reply. Exits when the sender side
/// is dropped at shutdown.
fn tie_sender_loop(rx: &mpsc::Receiver<(SocketAddr, Command)>) {
    let mut conns: HashMap<SocketAddr, TcpStream> = HashMap::new();
    let mut buf = BytesMut::new();
    while let Ok((addr, cmd)) = rx.recv() {
        buf.clear();
        encode_command(&cmd, &mut buf);
        let sent = match conns.get_mut(&addr) {
            Some(stream) => stream.write_all(&buf).is_ok(),
            None => false,
        };
        if !sent {
            conns.remove(&addr);
            if let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
                let _ = stream.set_nodelay(true);
                if stream.write_all(&buf).is_ok() {
                    conns.insert(addr, stream);
                }
            }
        }
    }
}

/// Spins (short waits) or sleeps (long waits) for `d`.
fn burn(d: Duration) {
    if d >= Duration::from_micros(200) {
        std::thread::sleep(d);
    } else {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }
}

/// Convenience: spins up `n` replica servers over the same dataset
/// snapshot, each on an ephemeral local port.
pub fn spawn_replicas<B: Backend + Clone>(
    n: usize,
    store: &B,
    cfg: TcpServerConfig,
) -> std::io::Result<Vec<TcpServer<B>>> {
    (0..n)
        .map(|_| TcpServer::bind("127.0.0.1:0", store.clone(), cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::resp::{decode_reply, encode_command};
    use kvstore::Command;

    fn send_cmd(stream: &mut TcpStream, cmd: &Command) {
        let mut out = BytesMut::new();
        encode_command(cmd, &mut out);
        stream.write_all(&out).unwrap();
    }

    fn read_reply(stream: &mut TcpStream) -> Reply {
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(r) = decode_reply(&mut buf).unwrap() {
                return r;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed mid-reply");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// A store with two big sets whose intersection is a monster.
    fn monster_store() -> KvStore {
        let mut store = KvStore::new();
        store.load_set(
            "big1",
            kvstore::IntSet::from_unsorted((0..200_000).collect()),
        );
        store.load_set(
            "big2",
            kvstore::IntSet::from_unsorted((100_000..300_000).collect()),
        );
        store
    }

    #[test]
    fn tcp_roundtrip_basics() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        send_cmd(&mut c, &Command::Set("k".into(), "v".into()));
        assert_eq!(read_reply(&mut c), Reply::Ok);
        send_cmd(&mut c, &Command::Get("k".into()));
        assert_eq!(read_reply(&mut c), Reply::Str("v".into()));
        server.shutdown();
    }

    #[test]
    fn two_connections_round_robin() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut a = TcpStream::connect(server.local_addr()).unwrap();
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut a, &Command::Ping);
        send_cmd(&mut b, &Command::Ping);
        assert_eq!(read_reply(&mut a), Reply::Pong);
        assert_eq!(read_reply(&mut b), Reply::Pong);
        assert!(server.stats().commands >= 2);
        server.shutdown();
    }

    #[test]
    fn cancel_retracts_queued_request() {
        // Load a slow key so the sweeper is busy while we cancel.
        let server = TcpServer::bind(
            "127.0.0.1:0",
            monster_store(),
            TcpServerConfig {
                nanos_per_op: 500,
                ..TcpServerConfig::default()
            },
        )
        .unwrap();
        // Connection A: a monster query occupies the sweeper.
        let mut a = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut a, &Command::SInterCard("big1".into(), "big2".into()));
        std::thread::sleep(Duration::from_millis(20)); // let it start
                                                       // Connection B: queue a request, then cancel before it sweeps.
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut b, &Command::SInterCard("big1".into(), "big2".into()));
        send_cmd(&mut b, &Command::Cancel(0));
        assert_eq!(
            read_reply(&mut b),
            Reply::Error(CANCELLED_MARKER.into()),
            "queued request should be retracted"
        );
        // Connection A's monster still completes with the right answer.
        assert_eq!(read_reply(&mut a), Reply::Int(100_000));
        // The cancelled command must never have executed: exactly one
        // SINTERCARD ran.
        assert_eq!(server.stats().commands, 1);
        server.shutdown();
    }

    #[test]
    fn disconnected_clients_are_reaped() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        // Connect, round-trip, disconnect — repeatedly. Before the
        // reap, every one of these left a dead ConnState behind
        // forever.
        for _ in 0..8 {
            let mut c = TcpStream::connect(server.local_addr()).unwrap();
            send_cmd(&mut c, &Command::Ping);
            assert_eq!(read_reply(&mut c), Reply::Pong);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.connection_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            server.connection_count(),
            0,
            "dead connections must be reaped"
        );
        // A fresh client still works after the reaping.
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        assert_eq!(server.connection_count(), 1);
        server.shutdown();
    }

    #[test]
    fn reaping_preserves_live_connections_between_dead_ones() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut keep1 = TcpStream::connect(server.local_addr()).unwrap();
        let doomed = TcpStream::connect(server.local_addr()).unwrap();
        let mut keep2 = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut keep1, &Command::Ping);
        assert_eq!(read_reply(&mut keep1), Reply::Pong);
        drop(doomed);
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.connection_count() > 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.connection_count(), 2);
        // The survivors (one before, one after the removed slot) still
        // round-trip.
        send_cmd(&mut keep2, &Command::Set("k".into(), "v".into()));
        assert_eq!(read_reply(&mut keep2), Reply::Ok);
        send_cmd(&mut keep1, &Command::Get("k".into()));
        assert_eq!(read_reply(&mut keep1), Reply::Str("v".into()));
        server.shutdown();
    }

    #[test]
    fn cancel_after_execution_is_noop() {
        let server =
            TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        send_cmd(&mut c, &Command::Cancel(0)); // too late; ignored
        send_cmd(&mut c, &Command::Ping);
        assert_eq!(read_reply(&mut c), Reply::Pong);
        server.shutdown();
    }

    #[test]
    fn cost_priority_discipline_reorders_across_connections() {
        // Three connections: a monster occupying the sweeper, then a
        // big and a small request queued behind it. Under CostPriority
        // the small one must be served before the big one even though
        // it arrived later.
        let server = TcpServer::bind(
            "127.0.0.1:0",
            monster_store(),
            TcpServerConfig {
                nanos_per_op: 500,
                discipline: Discipline::CostPriority,
            },
        )
        .unwrap();
        let mut blocker = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(
            &mut blocker,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        std::thread::sleep(Duration::from_millis(20)); // monster executing
        let mut big = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut big, &Command::SInterCard("big1".into(), "big2".into()));
        std::thread::sleep(Duration::from_millis(5));
        let mut small = TcpStream::connect(server.local_addr()).unwrap();
        send_cmd(&mut small, &Command::Ping);
        // The small request's reply must come back before the big
        // request's, despite arriving after it.
        assert_eq!(read_reply(&mut small), Reply::Pong);
        assert_eq!(read_reply(&mut big), Reply::Int(100_000));
        assert_eq!(read_reply(&mut blocker), Reply::Int(100_000));
        server.shutdown();
    }

    #[test]
    fn tied_pair_cancels_peer_at_dequeue_time() {
        // Server A is busy (its primary sits queued); server B is
        // idle, so B dequeues the reissue first and must CANCELTIE the
        // primary out of A's queue — with no client-side CANCEL at
        // all.
        let cfg = TcpServerConfig {
            nanos_per_op: 500,
            ..TcpServerConfig::default()
        };
        let a = TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap();
        let b = TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap();
        // Occupy A's sweeper with a monster.
        let mut blocker = TcpStream::connect(a.local_addr()).unwrap();
        send_cmd(
            &mut blocker,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        std::thread::sleep(Duration::from_millis(20));
        // Primary to A: TIE 1, then the query (queued behind the
        // monster).
        let mut primary = TcpStream::connect(a.local_addr()).unwrap();
        send_cmd(&mut primary, &Command::Tie { id: 1, peer: None });
        send_cmd(
            &mut primary,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        std::thread::sleep(Duration::from_millis(5));
        // Reissue to B: TIE 2 naming (A, 1) as its peer.
        let mut reissue = TcpStream::connect(b.local_addr()).unwrap();
        send_cmd(
            &mut reissue,
            &Command::Tie {
                id: 2,
                peer: Some((a.local_addr(), 1)),
            },
        );
        send_cmd(
            &mut reissue,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        // B executes the reissue for real…
        assert_eq!(read_reply(&mut reissue), Reply::Int(100_000));
        // …and A's primary is retracted without ever executing.
        assert_eq!(
            read_reply(&mut primary),
            Reply::Error(CANCELLED_MARKER.into()),
            "primary should be retracted by the peer's CANCELTIE"
        );
        assert_eq!(read_reply(&mut blocker), Reply::Int(100_000));
        assert_eq!(a.stats().commands, 1, "the tied primary never executed");
        assert_eq!(b.tie_stats().peer_cancels_sent, 1);
        let deadline = Instant::now() + Duration::from_secs(2);
        while a.tie_stats().retractions == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(a.tie_stats().retractions, 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn lost_peer_cancel_degrades_to_client_retraction() {
        // The tie channel is best-effort: here the reissue names a
        // peer address where nothing listens, so B's dequeue-time
        // CANCELTIE write is lost (connection refused, silently
        // dropped). Degradation must be graceful: B serves on, the
        // orphaned primary stays retractable via the client-side
        // CANCEL fallback, and the retraction reply is the
        // `-ERR cancelled` marker the client books as a censored pair.
        // A burns slowly (wide retraction window); B is near-free so
        // the reissue round-trip completes while A's primary still
        // sits queued.
        let a = TcpServer::bind(
            "127.0.0.1:0",
            monster_store(),
            TcpServerConfig {
                nanos_per_op: 3_000,
                ..TcpServerConfig::default()
            },
        )
        .unwrap();
        let b = TcpServer::bind(
            "127.0.0.1:0",
            monster_store(),
            TcpServerConfig {
                nanos_per_op: 1,
                ..TcpServerConfig::default()
            },
        )
        .unwrap();
        // A dead peer address: bound once to reserve a port, then
        // dropped so connects are refused.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        // Occupy A's sweeper so its tied primary sits queued.
        let mut blocker = TcpStream::connect(a.local_addr()).unwrap();
        send_cmd(
            &mut blocker,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        std::thread::sleep(Duration::from_millis(20));
        // Primary to A: TIE 1, then the query (queued).
        let mut primary = TcpStream::connect(a.local_addr()).unwrap();
        send_cmd(&mut primary, &Command::Tie { id: 1, peer: None });
        send_cmd(
            &mut primary,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        std::thread::sleep(Duration::from_millis(5));
        // Reissue to B naming the dead address as its peer's home: the
        // announce and the dequeue-time cancel both go into the void.
        let mut reissue = TcpStream::connect(b.local_addr()).unwrap();
        send_cmd(
            &mut reissue,
            &Command::Tie {
                id: 2,
                peer: Some((dead, 1)),
            },
        );
        send_cmd(
            &mut reissue,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        // B executes the reissue normally — the lost write must not
        // stall or kill its serving loop.
        assert_eq!(read_reply(&mut reissue), Reply::Int(100_000));
        let deadline = Instant::now() + Duration::from_secs(2);
        while b.tie_stats().peer_cancels_sent == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            b.tie_stats().peer_cancels_sent,
            1,
            "the cancel was attempted even though delivery failed"
        );
        let mut b2 = TcpStream::connect(b.local_addr()).unwrap();
        send_cmd(&mut b2, &Command::Ping);
        assert_eq!(read_reply(&mut b2), Reply::Pong, "B still serves");
        // A never saw the CANCELTIE: its primary is still queued. The
        // client-driven fallback retracts it in time.
        send_cmd(&mut primary, &Command::Cancel(0));
        assert_eq!(
            read_reply(&mut primary),
            Reply::Error(CANCELLED_MARKER.into()),
            "orphaned primary must fall back to client-driven retraction"
        );
        assert_eq!(read_reply(&mut blocker), Reply::Int(100_000));
        assert_eq!(
            a.stats().commands,
            1,
            "only the blocker executed on A: the tied primary was retracted"
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn late_tiepeer_announce_collapses_the_tie() {
        // The primary executes before the reissue's TIEPEER announce
        // arrives: the primary's server must answer CANCELTIE at once,
        // retracting the reissue from the busy peer's queue.
        let a = TcpServer::bind("127.0.0.1:0", KvStore::new(), TcpServerConfig::default()).unwrap();
        let mut b_store = KvStore::new();
        b_store.load_set(
            "big1",
            kvstore::IntSet::from_unsorted((0..10_000).collect()),
        );
        b_store.load_set(
            "big2",
            kvstore::IntSet::from_unsorted((5_000..15_000).collect()),
        );
        let b = TcpServer::bind(
            "127.0.0.1:0",
            b_store,
            TcpServerConfig {
                nanos_per_op: 5_000, // B is slow: its copy stays queued
                ..TcpServerConfig::default()
            },
        )
        .unwrap();
        // Keep B's sweeper busy so the reissue sits in queue.
        let mut blocker = TcpStream::connect(b.local_addr()).unwrap();
        send_cmd(
            &mut blocker,
            &Command::SInterCard("big1".into(), "big2".into()),
        );
        std::thread::sleep(Duration::from_millis(10));
        // Primary to A executes immediately (A idle, no burn).
        let mut primary = TcpStream::connect(a.local_addr()).unwrap();
        send_cmd(&mut primary, &Command::Tie { id: 10, peer: None });
        send_cmd(&mut primary, &Command::Ping);
        assert_eq!(read_reply(&mut primary), Reply::Pong);
        // Now the reissue lands on busy B, announcing to A — whose
        // copy is long gone.
        let mut reissue = TcpStream::connect(b.local_addr()).unwrap();
        send_cmd(
            &mut reissue,
            &Command::Tie {
                id: 11,
                peer: Some((a.local_addr(), 10)),
            },
        );
        send_cmd(&mut reissue, &Command::Ping);
        assert_eq!(
            read_reply(&mut reissue),
            Reply::Error(CANCELLED_MARKER.into()),
            "collapsed tie should retract the queued reissue"
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while a.tie_stats().collapses == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(a.tie_stats().collapses, 1);
        assert_eq!(b.tie_stats().retractions, 1);
        assert_eq!(read_reply(&mut blocker), Reply::Int(5_000));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_under_load_joins_all_threads() {
        // N clients mid-request when shutdown lands: no panic, no
        // deadlock, and every reader thread joined (the reader vec is
        // drained). Previously readers were spawned detached and could
        // outlive — and touch — a shut-down server.
        let server = TcpServer::bind(
            "127.0.0.1:0",
            monster_store(),
            TcpServerConfig {
                nanos_per_op: 200,
                ..TcpServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let clients: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || {
                    let Ok(mut c) = TcpStream::connect(addr) else {
                        return;
                    };
                    let mut out = BytesMut::new();
                    for _ in 0..50 {
                        out.clear();
                        encode_command(
                            &Command::SInterCard("big1".into(), "big2".into()),
                            &mut out,
                        );
                        if c.write_all(&out).is_err() {
                            return;
                        }
                    }
                    // Read until the server goes away.
                    let mut chunk = [0u8; 4096];
                    loop {
                        match c.read(&mut chunk) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => {}
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30)); // requests in flight
        server.shutdown();
        assert!(
            server.shared.reader_threads.lock().unwrap().is_empty(),
            "shutdown must join (not leak) reader threads"
        );
        // Shutdown is idempotent and drop-safe.
        server.shutdown();
        drop(server);
        for c in clients {
            c.join().unwrap();
        }
    }
}
