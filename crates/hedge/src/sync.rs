//! Synchronization primitives for the hedge runtime: a oneshot channel
//! (task completion, in-flight replies) and [`CancelToken`], the
//! cancellation primitive propagated from a hedged query to the
//! transport and on to the backend (tied requests).

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// Error returned when a oneshot sender is dropped without sending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("oneshot sender dropped without a value")
    }
}

impl std::error::Error for Canceled {}

enum OneState<T> {
    Empty(Option<Waker>),
    Value(T),
    Closed,
    Taken,
}

struct OneInner<T> {
    state: Mutex<OneState<T>>,
    cv: Condvar,
}

/// Sending half of a oneshot channel.
pub struct Sender<T> {
    inner: Arc<OneInner<T>>,
}

/// Receiving half of a oneshot channel.
pub struct Receiver<T> {
    inner: Arc<OneInner<T>>,
    // False once converted into a RecvFuture: Drop must then leave the
    // channel open for the future to consume.
    armed: bool,
}

/// Creates a oneshot channel.
pub fn oneshot<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(OneInner {
        state: Mutex::new(OneState::Empty(None)),
        cv: Condvar::new(),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner, armed: true },
    )
}

impl<T> Sender<T> {
    /// Delivers the value; returns it back if the receiver is gone.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut state = self.inner.state.lock().unwrap();
        match &mut *state {
            OneState::Empty(waker) => {
                let waker = waker.take();
                *state = OneState::Value(value);
                drop(state);
                self.inner.cv.notify_all();
                if let Some(w) = waker {
                    w.wake();
                }
                Ok(())
            }
            OneState::Value(_) | OneState::Closed | OneState::Taken => Err(value),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        if let OneState::Empty(waker) = &mut *state {
            let waker = waker.take();
            *state = OneState::Closed;
            drop(state);
            self.inner.cv.notify_all();
            if let Some(w) = waker {
                w.wake();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Awaits the value asynchronously.
    pub fn recv(mut self) -> RecvFuture<T> {
        self.armed = false;
        RecvFuture {
            inner: self.inner.clone(),
        }
    }

    /// Blocks the calling thread until the value (or closure) arrives.
    pub fn recv_blocking(self) -> Result<T, Canceled> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *state, OneState::Taken) {
                OneState::Value(v) => return Ok(v),
                OneState::Closed => return Err(Canceled),
                s @ OneState::Empty(_) => {
                    *state = s;
                    state = self.inner.cv.wait(state).unwrap();
                }
                OneState::Taken => return Err(Canceled),
            }
        }
    }

    /// Returns the value if it has already arrived.
    pub fn try_recv(&self) -> Option<Result<T, Canceled>> {
        let mut state = self.inner.state.lock().unwrap();
        match std::mem::replace(&mut *state, OneState::Taken) {
            OneState::Value(v) => Some(Ok(v)),
            OneState::Closed => Some(Err(Canceled)),
            s @ OneState::Empty(_) => {
                *state = s;
                None
            }
            OneState::Taken => Some(Err(Canceled)),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Mark taken so a late send learns the value is undeliverable.
        let mut state = self.inner.state.lock().unwrap();
        if matches!(*state, OneState::Empty(_)) {
            *state = OneState::Taken;
        }
    }
}

/// Future returned by [`Receiver::recv`]. `Unpin`.
pub struct RecvFuture<T> {
    inner: Arc<OneInner<T>>,
}

impl<T> Future for RecvFuture<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.inner.state.lock().unwrap();
        match std::mem::replace(&mut *state, OneState::Taken) {
            OneState::Value(v) => Poll::Ready(Ok(v)),
            OneState::Closed => Poll::Ready(Err(Canceled)),
            OneState::Empty(_) => {
                *state = OneState::Empty(Some(cx.waker().clone()));
                Poll::Pending
            }
            OneState::Taken => Poll::Ready(Err(Canceled)),
        }
    }
}

#[derive(Default)]
struct CtState {
    cancelled: bool,
    wakers: Vec<Waker>,
    callbacks: Vec<Box<dyn FnOnce() + Send>>,
}

/// A clonable cancellation token.
///
/// A hedged query hands one token to each speculative arm; when a
/// winner emerges, cancelling the loser's token (a) wakes any task
/// awaiting [`CancelToken::cancelled`], and (b) fires callbacks the
/// transport registered — which is how the `CANCEL` frame reaches the
/// backend server (tied requests, Dean & Barroso §"Tied requests").
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<Mutex<CtState>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Cancels: wakes waiters and runs registered callbacks (once).
    pub fn cancel(&self) {
        let (wakers, callbacks) = {
            let mut st = self.inner.lock().unwrap();
            if st.cancelled {
                return;
            }
            st.cancelled = true;
            (
                std::mem::take(&mut st.wakers),
                std::mem::take(&mut st.callbacks),
            )
        };
        for w in wakers {
            w.wake();
        }
        for cb in callbacks {
            cb();
        }
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.lock().unwrap().cancelled
    }

    /// Registers `callback` to run on cancellation; runs it immediately
    /// if the token is already cancelled.
    pub fn on_cancel(&self, callback: impl FnOnce() + Send + 'static) {
        let run_now = {
            let mut st = self.inner.lock().unwrap();
            if st.cancelled {
                true
            } else {
                st.callbacks.push(Box::new(callback));
                return;
            }
        };
        if run_now {
            callback();
        }
    }

    /// A future that resolves when the token is cancelled.
    pub fn cancelled(&self) -> Cancelled {
        Cancelled {
            inner: self.inner.clone(),
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Future returned by [`CancelToken::cancelled`]. `Unpin`.
pub struct Cancelled {
    inner: Arc<Mutex<CtState>>,
}

impl Future for Cancelled {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.inner.lock().unwrap();
        if st.cancelled {
            Poll::Ready(())
        } else {
            st.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_send_then_recv() {
        let (tx, rx) = oneshot();
        tx.send(5).unwrap();
        assert_eq!(rx.recv_blocking(), Ok(5));
    }

    #[test]
    fn oneshot_drop_sender_closes() {
        let (tx, rx) = oneshot::<u32>();
        drop(tx);
        assert_eq!(rx.recv_blocking(), Err(Canceled));
    }

    #[test]
    fn oneshot_drop_receiver_bounces_value() {
        let (tx, rx) = oneshot::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn oneshot_cross_thread() {
        let (tx, rx) = oneshot();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send("hello").unwrap();
        });
        assert_eq!(rx.recv_blocking(), Ok("hello"));
        t.join().unwrap();
    }

    #[test]
    fn cancel_token_flags_and_callbacks() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let fired = Arc::new(Mutex::new(0));
        let f2 = fired.clone();
        token.on_cancel(move || *f2.lock().unwrap() += 1);
        token.cancel();
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
        assert_eq!(*fired.lock().unwrap(), 1);
        // Late registration runs immediately.
        let f3 = fired.clone();
        token.on_cancel(move || *f3.lock().unwrap() += 10);
        assert_eq!(*fired.lock().unwrap(), 11);
    }
}
