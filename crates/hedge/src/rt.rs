//! A minimal multi-threaded async runtime, sharded thread-per-core.
//!
//! The serving environment for this repository cannot fetch external
//! crates, so instead of tokio the hedge runtime runs on this small,
//! `std`-only executor. Wakers are `Arc<Task>` handles via
//! [`std::task::Wake`] — no unsafe anywhere.
//!
//! # Pinning model
//!
//! The executor is sharded thread-per-core: every worker thread owns a
//! private run queue, a private condvar, and a private hashed timer
//! wheel. Each task is assigned an **owner** worker at spawn time and
//! stays pinned to it for life:
//!
//! - **Wakes are pinned.** A completion (oneshot send, cancel, timer
//!   fire) re-enqueues the task on its *owner's* queue and signals only
//!   that worker's condvar. The connection I/O thread that delivers a
//!   reply therefore wakes the core that owns the requesting task —
//!   there is no global queue for every waker to contend on.
//! - **Timers are pinned.** [`Runtime::sleep`] arms an entry in the
//!   wheel of the worker polling the sleeping task (falling back to
//!   the sleep's home worker when polled off-runtime, e.g. under
//!   [`Runtime::block_on`]). Workers drive their own wheels between
//!   queue pops — there is no dedicated timer thread and no global
//!   `Mutex<BinaryHeap>`; arming is a single hashed-slot push, O(1),
//!   observable via [`Runtime::timer_insert_ops`].
//! - **Stealing is the fallback, not the fast path.** Only when a
//!   spawn finds its round-robin-assigned owner's queue backed up past
//!   [`SPAWN_QUEUE_DEPTH`] does the task go to the shared overflow
//!   injector, where any idle worker may claim its *first* poll.
//!   Subsequent wakes still route to the owner.
//!
//! [`Runtime::spawn`] assigns owners round-robin;
//! [`Runtime::spawn_on`] pins explicitly (the fan-out client uses it
//! to spread shard legs across cores).
//!
//! The surface is intentionally tiny — [`Runtime::spawn`],
//! [`Runtime::block_on`], [`Runtime::sleep`], and the [`race`]
//! combinator — because that is exactly what speculative execution
//! needs: run concurrent attempts, arm a timer, take the first result.

use std::cell::Cell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use crate::sync::{oneshot, RecvFuture};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

// Task scheduling states. The state machine exists to close the
// classic lost-wakeup race: a wake that lands *while a worker is
// polling* must not enqueue the task (another worker would find the
// future slot empty and drop the notification) — it marks NOTIFIED,
// and the polling worker re-enqueues after restoring the future.
const TASK_IDLE: u8 = 0;
const TASK_SCHEDULED: u8 = 1;
const TASK_RUNNING: u8 = 2;
const TASK_NOTIFIED: u8 = 3;

/// Spawn overflow threshold: when the assigned owner's queue is this
/// deep, the new task is published to the shared injector instead so
/// an idle worker can steal its first poll.
const SPAWN_QUEUE_DEPTH: usize = 128;

/// Timer wheel geometry: 64 hashed slots at 1ms ticks. A deadline
/// hashes to slot `tick % 64`; entries carry their exact deadline so
/// collisions across rotations are resolved by comparison at expiry.
const WHEEL_SLOTS: u64 = 64;
const TICK_MICROS: u64 = 1_000;

// Which worker (of which runtime) the current thread is. Lets
// `Sleep::poll` arm the wheel of the core actually polling the task,
// and `spawn` detect on-runtime spawns. The pointer is only ever
// *compared* (never dereferenced); worker threads outlive their
// runtime handle, so a stale pointer cannot alias a live runtime.
thread_local! {
    static CURRENT: Cell<Option<(*const RtInner, usize)>> = const { Cell::new(None) };
}

/// One spawned task: its future plus a re-schedule handle, pinned to
/// the worker that owns it.
struct Task {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    rt: Weak<RtInner>,
    /// Owner worker index: wakes enqueue here, always.
    owner: usize,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(rt) = self.rt.upgrade() {
            rt.schedule(self);
        }
    }
}

/// A hashed timer wheel: arming is one Vec push into the slot the
/// deadline's tick hashes to — O(1), no reheapify — counted in
/// `insert_ops` so tests can assert the cost rather than inspect it.
struct TimerWheel {
    slots: Vec<Vec<(Instant, Waker)>>,
    epoch: Instant,
    /// First tick not yet fully processed by `expire`.
    cursor: u64,
    len: usize,
    /// Cached minimum deadline (None when empty); gives workers their
    /// `wait_timeout` bound without scanning slots.
    earliest: Option<Instant>,
    insert_ops: u64,
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            epoch: Instant::now(),
            cursor: 0,
            len: 0,
            earliest: None,
            insert_ops: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.epoch).as_micros() as u64) / TICK_MICROS
    }

    /// Arms `waker` to fire at `deadline`. Returns whether the wheel's
    /// minimum moved earlier (the caller must then re-signal the
    /// owning worker so its `wait_timeout` shortens).
    fn arm(&mut self, deadline: Instant, waker: Waker) -> bool {
        // Past deadlines land in the cursor tick: fired next expiry.
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick % WHEEL_SLOTS) as usize;
        self.slots[slot].push((deadline, waker));
        self.len += 1;
        self.insert_ops += 1;
        let new_min = self.earliest.is_none_or(|e| deadline < e);
        if new_min {
            self.earliest = Some(deadline);
        }
        new_min
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.earliest
    }

    /// Moves every entry with `deadline <= now` into `due`, sorted by
    /// deadline — so waking in `due` order fires timers in schedule
    /// order even when slot hashing interleaved their storage.
    fn expire(&mut self, now: Instant, due: &mut Vec<(Instant, Waker)>) {
        let now_tick = self.tick_of(now);
        if self.len == 0 {
            self.cursor = now_tick;
            return;
        }
        if self.earliest.is_some_and(|e| e > now) {
            return;
        }
        // Sweep the ticks the cursor has fallen behind by; once a full
        // rotation behind, one pass over all slots covers everything.
        let span = (now_tick.saturating_sub(self.cursor) + 1).min(WHEEL_SLOTS);
        let start = due.len();
        for i in 0..span {
            let slot = ((self.cursor + i) % WHEEL_SLOTS) as usize;
            let entries = &mut self.slots[slot];
            let mut j = 0;
            while j < entries.len() {
                if entries[j].0 <= now {
                    due.push(entries.swap_remove(j));
                    self.len -= 1;
                } else {
                    j += 1;
                }
            }
        }
        self.cursor = now_tick;
        due[start..].sort_by_key(|(deadline, _)| *deadline);
        self.earliest = self
            .slots
            .iter()
            .flatten()
            .map(|(deadline, _)| *deadline)
            .min();
    }
}

/// Per-worker shard: private run queue, private wakeup signal,
/// private timer wheel.
struct WorkerShard {
    queue: Mutex<VecDeque<Arc<Task>>>,
    cv: Condvar,
    wheel: Mutex<TimerWheel>,
}

struct RtInner {
    workers: Vec<WorkerShard>,
    /// Spawn-overflow queue: any worker may steal a first poll from
    /// here when its own queue runs dry.
    injector: Mutex<VecDeque<Arc<Task>>>,
    /// Round-robin cursors for spawn owner assignment and for homing
    /// timers armed off-runtime.
    next_owner: AtomicUsize,
    next_timer_home: AtomicUsize,
    shutdown: AtomicBool,
    live_tasks: AtomicU64,
}

impl RtInner {
    fn schedule(&self, task: Arc<Task>) {
        loop {
            match task.state.load(Ordering::SeqCst) {
                TASK_IDLE => {
                    if task
                        .state
                        .compare_exchange(
                            TASK_IDLE,
                            TASK_SCHEDULED,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        self.push(task);
                        return;
                    }
                }
                TASK_RUNNING => {
                    // Mid-poll: mark so the polling worker re-enqueues
                    // after it restores the future (see worker_loop).
                    if task
                        .state
                        .compare_exchange(
                            TASK_RUNNING,
                            TASK_NOTIFIED,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued or already marked for re-poll.
                _ => return,
            }
        }
    }

    /// Enqueues on the task's owner: the pinning invariant.
    fn push(&self, task: Arc<Task>) {
        let shard = &self.workers[task.owner];
        shard.queue.lock().unwrap().push_back(task);
        shard.cv.notify_one();
    }

    /// First enqueue of a freshly spawned task: owner's queue, or the
    /// injector when the owner is backed up (work-stealing fallback).
    fn push_spawn(&self, task: Arc<Task>) {
        let shard = &self.workers[task.owner];
        {
            let mut q = shard.queue.lock().unwrap();
            if q.len() < SPAWN_QUEUE_DEPTH {
                q.push_back(task);
                drop(q);
                shard.cv.notify_one();
                return;
            }
        }
        self.injector.lock().unwrap().push_back(task);
        // Any worker may claim the first poll: signal them all (the
        // overflow path is rare by construction).
        for shard in &self.workers {
            let _guard = shard.queue.lock().unwrap();
            shard.cv.notify_one();
        }
    }
}

/// The executor handle. Cheap to clone; dropping the last handle shuts
/// the worker threads down.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
    // Owns worker threads: shutdown + join when the last clone drops.
    _threads: Arc<ThreadSet>,
}

struct ThreadSet {
    inner: Arc<RtInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for ThreadSet {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.inner.workers {
            let _guard = shard.queue.lock().unwrap();
            shard.cv.notify_all();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl Runtime {
    /// Starts a runtime with `workers` sharded poller threads (min 1).
    /// Each worker drives its own run queue and timer wheel; there is
    /// no separate timer thread.
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(RtInner {
            workers: (0..workers.max(1))
                .map(|_| WorkerShard {
                    queue: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                    wheel: Mutex::new(TimerWheel::new()),
                })
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            next_owner: AtomicUsize::new(0),
            next_timer_home: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            live_tasks: AtomicU64::new(0),
        });
        let mut handles = Vec::new();
        for i in 0..inner.workers.len() {
            let rt = inner.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hedge-worker-{i}"))
                    .spawn(move || worker_loop(&rt, i))
                    .expect("spawn worker thread"),
            );
        }
        Runtime {
            _threads: Arc::new(ThreadSet {
                inner: inner.clone(),
                handles: Mutex::new(handles),
            }),
            inner,
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Spawns a future onto the pool, returning a handle resolving to
    /// its output. The task is pinned round-robin to a worker; see the
    /// module docs for the pinning model, and [`Runtime::spawn_on`]
    /// to choose the worker explicitly.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let owner =
            self.inner.next_owner.fetch_add(1, Ordering::Relaxed) % self.inner.workers.len();
        self.spawn_on(owner, future)
    }

    /// Spawns a future pinned to worker `worker % self.workers()`: its
    /// wakes will always enqueue on that worker's run queue. The
    /// fan-out client pins shard legs across cores with this, so one
    /// straggling shard's completions do not contend with the others'.
    pub fn spawn_on<F>(&self, worker: usize, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (tx, rx) = oneshot();
        let inner = self.inner.clone();
        inner.live_tasks.fetch_add(1, Ordering::Relaxed);
        let counted = CountGuardFuture {
            rt: inner.clone(),
            inner: Box::pin(async move {
                let _ = tx.send(future.await);
            }),
        };
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(counted))),
            state: AtomicU8::new(TASK_SCHEDULED),
            rt: Arc::downgrade(&self.inner),
            owner: worker % self.inner.workers.len(),
        });
        self.inner.push_spawn(task);
        JoinHandle { rx: rx.recv() }
    }

    /// A future that resolves `duration` from now.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(Instant::now() + duration)
    }

    /// A future that resolves at `deadline` (immediately if it has
    /// passed). Deadline-based timers keep a multi-stage reissue
    /// schedule anchored to the *primary dispatch*: re-arming with
    /// relative sleeps would accumulate scheduling slop per stage.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        // Home worker: the one polling right now if we are on this
        // runtime, else round-robin. Used only when the sleep is
        // polled off-runtime (e.g. under block_on).
        let home = match CURRENT.get() {
            Some((rt, i)) if std::ptr::eq(rt, Arc::as_ptr(&self.inner)) => i,
            _ => {
                self.inner.next_timer_home.fetch_add(1, Ordering::Relaxed)
                    % self.inner.workers.len()
            }
        };
        Sleep {
            deadline,
            rt: self.inner.clone(),
            home,
            armed: None,
        }
    }

    /// Drives `future` to completion on the calling thread (worker
    /// threads keep running other tasks meanwhile).
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        struct ThreadWaker(std::thread::Thread);
        impl Wake for ThreadWaker {
            fn wake(self: Arc<Self>) {
                self.0.unpark();
            }
        }
        let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        // Safe pinning: shadow the future on the stack.
        let mut future = std::pin::pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::park(),
            }
        }
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> u64 {
        self.inner.live_tasks.load(Ordering::Relaxed)
    }

    /// Total timer-wheel insertion operations across all workers.
    ///
    /// Each [`Sleep`] arm is exactly one insertion (a hashed-slot Vec
    /// push — no reheapify, no rebalancing), so the delta across
    /// arming an `n`-stage reissue schedule is exactly `n`: the O(1)
    /// per-stage cost is asserted by counter, not inspection.
    pub fn timer_insert_ops(&self) -> u64 {
        self.inner
            .workers
            .iter()
            .map(|w| w.wheel.lock().unwrap().insert_ops)
            .sum()
    }
}

/// Worker index of the calling thread, when it is one of a runtime's
/// pollers (`None` on external threads). Instrumentation for asserting
/// the pinning model.
pub fn current_worker() -> Option<usize> {
    CURRENT.get().map(|(_, i)| i)
}

/// Decrements the live-task counter when the task future completes or
/// is dropped mid-flight.
struct CountGuardFuture {
    rt: Arc<RtInner>,
    inner: BoxFuture,
}

impl Drop for CountGuardFuture {
    fn drop(&mut self) {
        self.rt.live_tasks.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Future for CountGuardFuture {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        self.inner.as_mut().poll(cx)
    }
}

fn worker_loop(rt: &Arc<RtInner>, me: usize) {
    CURRENT.set(Some((Arc::as_ptr(rt), me)));
    let shard = &rt.workers[me];
    let mut due: Vec<(Instant, Waker)> = Vec::new();
    'outer: loop {
        // Drive this worker's own timers first: expired entries wake
        // their (owner-pinned) tasks before the next queue pop.
        shard.wheel.lock().unwrap().expire(Instant::now(), &mut due);
        for (_, waker) in due.drain(..) {
            waker.wake();
        }

        // Next task: own queue, else steal a first poll from the
        // injector, else sleep until a push or the next local timer.
        //
        // The queue lock is held from the emptiness checks through
        // cv.wait, and every producer (push, injector publish, timer
        // arm) signals under this same lock — so a wakeup cannot slip
        // between check and wait.
        let task = {
            let mut q = shard.queue.lock().unwrap();
            loop {
                if rt.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if let Some(t) = rt.injector.lock().unwrap().pop_front() {
                    break t;
                }
                // Bind before matching: a guard in the scrutinee
                // would live across the cv wait and deadlock armers.
                let next = shard.wheel.lock().unwrap().next_deadline();
                match next {
                    Some(deadline) => {
                        let now = Instant::now();
                        if deadline <= now {
                            continue 'outer;
                        }
                        q = shard
                            .cv
                            .wait_timeout(q, deadline.saturating_duration_since(now))
                            .unwrap()
                            .0;
                    }
                    None => q = shard.cv.wait(q).unwrap(),
                }
            }
        };

        task.state.store(TASK_RUNNING, Ordering::SeqCst);
        let Some(mut future) = task.future.lock().unwrap().take() else {
            // Late wake on a completed task.
            task.state.store(TASK_IDLE, Ordering::SeqCst);
            continue;
        };
        let waker = Waker::from(task.clone());
        let mut cx = Context::from_waker(&waker);
        // A panicking task must not take down the worker; the panic
        // surfaces at its JoinHandle as a Canceled error instead.
        let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            future.as_mut().poll(&mut cx)
        }));
        match poll {
            Ok(Poll::Pending) => {
                // Restore the future BEFORE leaving RUNNING, so a
                // concurrent wake that re-enqueues finds it present.
                *task.future.lock().unwrap() = Some(future);
                if task
                    .state
                    .compare_exchange(TASK_RUNNING, TASK_IDLE, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
                {
                    // A wake landed mid-poll (state is NOTIFIED): the
                    // notification would otherwise be lost, so this
                    // worker re-enqueues the task itself.
                    task.state.store(TASK_SCHEDULED, Ordering::SeqCst);
                    rt.push(task);
                }
            }
            Ok(Poll::Ready(())) | Err(_) => {
                // Done (or future dropped by panic; JoinHandle sees
                // Canceled). Late wakes hit the empty-slot path above.
                task.state.store(TASK_IDLE, Ordering::SeqCst);
            }
        }
    }
}

/// Future returned by [`Runtime::sleep`]. `Unpin`; safe to poll in
/// racing combinators.
pub struct Sleep {
    deadline: Instant,
    rt: Arc<RtInner>,
    /// Wheel to arm when polled off-runtime; on-runtime polls arm the
    /// polling worker's own wheel instead.
    home: usize,
    /// The waker registered in a wheel, if any: re-polls by the same
    /// task skip re-arming (the armed entry still fires for it).
    armed: Option<Waker>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if Instant::now() >= this.deadline {
            return Poll::Ready(());
        }
        if this.armed.as_ref().is_some_and(|w| w.will_wake(cx.waker())) {
            return Poll::Pending;
        }
        let target = match CURRENT.get() {
            Some((rt, i)) if std::ptr::eq(rt, Arc::as_ptr(&this.rt)) => i,
            _ => this.home,
        };
        let shard = &this.rt.workers[target];
        let new_min = shard
            .wheel
            .lock()
            .unwrap()
            .arm(this.deadline, cx.waker().clone());
        this.armed = Some(cx.waker().clone());
        if new_min {
            // Shorten the worker's wait_timeout. Taking the queue lock
            // (released before notify returns) pairs with the worker
            // holding it across its deadline read and wait: the worker
            // either sees the new minimum or is already parked and
            // receives this signal.
            let _guard = shard.queue.lock().unwrap();
            shard.cv.notify_one();
        }
        Poll::Pending
    }
}

/// Handle to a spawned task; awaiting it yields the task's output.
///
/// # Panics
/// Awaiting panics if the task itself panicked.
pub struct JoinHandle<T> {
    rx: RecvFuture<T>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Ok(v)) => Poll::Ready(v),
            Poll::Ready(Err(_)) => panic!("joined task panicked"),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// First-completed-wins result of [`race`]; the loser future is handed
/// back so the caller can keep driving (or drop) it.
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Future racing two `Unpin` futures; see [`race`].
pub struct Race<FA, FB> {
    a: Option<FA>,
    b: Option<FB>,
}

/// Races two futures; resolves with the winner's output and the
/// still-pending loser. Polls the first future first on ties, so a
/// completed response beats a simultaneously-expired timer.
pub fn race<FA, FB>(a: FA, b: FB) -> Race<FA, FB>
where
    FA: Future + Unpin,
    FB: Future + Unpin,
{
    Race {
        a: Some(a),
        b: Some(b),
    }
}

impl<FA, FB> Future for Race<FA, FB>
where
    FA: Future + Unpin,
    FB: Future + Unpin,
{
    type Output = Either<(FA::Output, FB), (FA, FB::Output)>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        let mut a = this.a.take().expect("Race polled after completion");
        let mut b = this.b.take().expect("Race polled after completion");
        if let Poll::Ready(va) = Pin::new(&mut a).poll(cx) {
            return Poll::Ready(Either::Left((va, b)));
        }
        if let Poll::Ready(vb) = Pin::new(&mut b).poll(cx) {
            return Poll::Ready(Either::Right((a, vb)));
        }
        this.a = Some(a);
        this.b = Some(b);
        Poll::Pending
    }
}

/// Future returned by [`select_all`]: first-completed-wins over a
/// whole set of `Unpin` futures.
pub struct SelectAll<F> {
    futures: Vec<F>,
}

impl<F> SelectAll<F> {
    /// Hands the still-pending futures back (e.g. after this selector
    /// lost a [`race`] against a timer), preserving their order.
    pub fn into_futures(self) -> Vec<F> {
        self.futures
    }
}

/// Races any number of futures; resolves with the winner's index (in
/// the input order), its output, and the still-pending rest (with the
/// winner removed, other indices shifted down). Polls in input order,
/// so on simultaneous readiness the earliest-dispatched attempt wins —
/// for hedging that means the primary beats a same-instant reissue.
///
/// # Panics
/// Polling panics if `futures` is empty (there is nothing to win).
pub fn select_all<F: Future + Unpin>(futures: Vec<F>) -> SelectAll<F> {
    SelectAll { futures }
}

impl<F: Future + Unpin> Future for SelectAll<F> {
    type Output = (usize, F::Output, Vec<F>);

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        assert!(!this.futures.is_empty(), "select_all over no futures");
        for i in 0..this.futures.len() {
            if let Poll::Ready(v) = Pin::new(&mut this.futures[i]).poll(cx) {
                let mut rest = std::mem::take(&mut this.futures);
                rest.remove(i);
                return Poll::Ready((i, v, rest));
            }
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_plain_value() {
        let rt = Runtime::new(2);
        assert_eq!(rt.block_on(async { 40 + 2 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new(2);
        let h = rt.spawn(async { 7u64 * 6 });
        assert_eq!(rt.block_on(h), 42);
    }

    #[test]
    fn many_tasks_all_complete() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|_| {
                let c = counter.clone();
                rt.spawn(async move {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            rt.block_on(h);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(rt.live_tasks(), 0);
    }

    #[test]
    fn sleep_waits_roughly_right() {
        let rt = Runtime::new(1);
        let t0 = Instant::now();
        rt.block_on(rt.sleep(Duration::from_millis(30)));
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(28), "slept {dt:?}");
        assert!(dt < Duration::from_secs(2), "slept {dt:?}");
    }

    #[test]
    fn race_timer_vs_task() {
        let rt = Runtime::new(2);
        // Fast task beats slow timer.
        let fast = rt.spawn(async { "fast" });
        let won = rt.block_on(race(fast, rt.sleep(Duration::from_secs(5))));
        match won {
            Either::Left((v, _timer)) => assert_eq!(v, "fast"),
            Either::Right(_) => panic!("timer should lose"),
        }
        // Timer beats slow task.
        let rt2 = rt.clone();
        let slow = rt.spawn(async move {
            rt2.sleep(Duration::from_secs(5)).await;
            "slow"
        });
        match rt.block_on(race(slow, rt.sleep(Duration::from_millis(10)))) {
            Either::Left(_) => panic!("slow task should lose"),
            Either::Right((_loser, ())) => {}
        }
    }

    #[test]
    fn select_all_returns_winner_and_rest() {
        let rt = Runtime::new(2);
        let rt2 = rt.clone();
        let slow = |ms: u64, v: &'static str| {
            let rt = rt2.clone();
            rt2.spawn(async move {
                rt.sleep(Duration::from_millis(ms)).await;
                v
            })
        };
        let (idx, won, rest) = rt.block_on(select_all(vec![
            slow(200, "a"),
            slow(5, "b"),
            slow(200, "c"),
        ]));
        assert_eq!((idx, won), (1, "b"));
        assert_eq!(rest.len(), 2);
        // The handed-back losers still complete.
        for loser in rest {
            let v = rt.block_on(loser);
            assert!(v == "a" || v == "c");
        }
    }

    #[test]
    fn select_all_loses_race_to_timer_and_hands_futures_back() {
        let rt = Runtime::new(2);
        let rt2 = rt.clone();
        let pending = rt.spawn(async move {
            rt2.sleep(Duration::from_millis(300)).await;
            41
        });
        match rt.block_on(race(
            select_all(vec![pending]),
            rt.sleep(Duration::from_millis(10)),
        )) {
            Either::Left(_) => panic!("timer should win"),
            Either::Right((sel, ())) => {
                let futs = sel.into_futures();
                assert_eq!(futs.len(), 1);
                let (i, v, rest) = rt.block_on(select_all(futs));
                assert_eq!((i, v), (0, 41));
                assert!(rest.is_empty());
            }
        }
    }

    #[test]
    fn sleep_until_past_deadline_is_immediate() {
        let rt = Runtime::new(1);
        let t0 = Instant::now();
        rt.block_on(rt.sleep_until(t0 - Duration::from_millis(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn nested_spawns_from_tasks() {
        let rt = Runtime::new(2);
        let rt2 = rt.clone();
        let h = rt.spawn(async move {
            let inner = rt2.spawn(async { 10 });
            inner.await + 1
        });
        assert_eq!(rt.block_on(h), 11);
    }

    #[test]
    #[should_panic(expected = "joined task panicked")]
    fn panicking_task_propagates_at_join() {
        let rt = Runtime::new(1);
        let h = rt.spawn(async { panic!("boom") });
        rt.block_on(h);
    }

    #[test]
    fn spawn_on_pins_task_and_wakes_to_owner() {
        let rt = Runtime::new(4);
        for target in 0..4usize {
            let rt2 = rt.clone();
            let h = rt.spawn_on(target, async move {
                let first = current_worker();
                // Suspend on a timer: the wake must re-enqueue on the
                // owner, so the resumed poll runs on the same worker.
                rt2.sleep(Duration::from_millis(5)).await;
                let second = current_worker();
                (first, second)
            });
            let (first, second) = rt.block_on(h);
            assert_eq!(first, Some(target), "first poll off the pinned worker");
            assert_eq!(second, Some(target), "woken poll migrated off the owner");
        }
    }

    #[test]
    fn spawn_overflow_spills_to_injector_and_still_completes() {
        // One worker, wedged: spawns past SPAWN_QUEUE_DEPTH must land
        // in the injector rather than the owner's queue (and a real
        // multi-worker pool would steal them; with one worker they
        // drain once it unwedges).
        let rt = Runtime::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let wedge = rt.spawn(async move {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let n = SPAWN_QUEUE_DEPTH + 50;
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let c = counter.clone();
                rt.spawn(async move {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        assert!(
            !rt.inner.injector.lock().unwrap().is_empty(),
            "overflow spawns should have spilled to the injector"
        );
        gate.store(true, Ordering::SeqCst);
        rt.block_on(wedge);
        for h in handles {
            rt.block_on(h);
        }
        assert_eq!(counter.load(Ordering::SeqCst), n);
    }

    struct NoopWake;
    impl Wake for NoopWake {
        fn wake(self: Arc<Self>) {}
    }

    #[test]
    fn arming_multistage_schedule_is_one_insert_per_stage() {
        // The O(1) acceptance check, by counter rather than by code
        // inspection: arming every stage of a 4-stage MultipleR
        // schedule costs exactly one wheel insertion per stage — no
        // reheapify, no per-existing-timer work.
        let rt = Runtime::new(1);
        let waker = Waker::from(Arc::new(NoopWake));
        let mut cx = Context::from_waker(&waker);
        let base = Instant::now() + Duration::from_secs(3600);
        let stages = 4;
        let mut sleeps: Vec<Sleep> = (0..stages)
            .map(|k| rt.sleep_until(base + Duration::from_millis(2 * k as u64)))
            .collect();
        let before = rt.timer_insert_ops();
        for s in &mut sleeps {
            assert!(Pin::new(s).poll(&mut cx).is_pending());
        }
        assert_eq!(
            rt.timer_insert_ops() - before,
            stages as u64,
            "arming {stages} stages must cost exactly {stages} insertions"
        );
        // Re-polling an armed schedule (same task waker) re-inserts
        // nothing: select_all-style repolls are free.
        for s in &mut sleeps {
            assert!(Pin::new(s).poll(&mut cx).is_pending());
        }
        assert_eq!(rt.timer_insert_ops() - before, stages as u64);
    }

    #[test]
    fn wheel_fires_in_deadline_order_under_concurrent_arming() {
        // Satellite property: with timers armed concurrently from
        // multiple threads — some "cancelled" (their Sleep dropped;
        // the wheel entry goes stale but must not disturb order) —
        // every expire batch comes out sorted by deadline, nothing
        // fires early, and nothing is lost.
        let wheel = Arc::new(Mutex::new(TimerWheel::new()));
        let base = Instant::now();
        let armed_count = Arc::new(AtomicUsize::new(0));
        // Hand-rolled xorshift: no external proptest in this tree.
        let mut threads = Vec::new();
        for t in 0..4u64 {
            let wheel = wheel.clone();
            let armed_count = armed_count.clone();
            threads.push(std::thread::spawn(move || {
                let mut rng = 0x9E37_79B9u64.wrapping_mul(t + 1) | 1;
                for _ in 0..200 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    // Deadlines spread over ~4 wheel rotations, some
                    // already in the past.
                    let offset_us = (rng % 250_000) as i64 - 5_000;
                    let deadline = if offset_us < 0 {
                        base - Duration::from_micros((-offset_us) as u64)
                    } else {
                        base + Duration::from_micros(offset_us as u64)
                    };
                    let waker = Waker::from(Arc::new(NoopWake));
                    wheel.lock().unwrap().arm(deadline, waker);
                    armed_count.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        // Expire concurrently with the arming threads.
        let mut fired: Vec<Instant> = Vec::new();
        let mut due: Vec<(Instant, Waker)> = Vec::new();
        let deadline_all = base + Duration::from_millis(260);
        loop {
            let now = Instant::now();
            wheel.lock().unwrap().expire(now, &mut due);
            for (d, _) in &due {
                assert!(*d <= now, "timer fired {:?} early", *d - now);
            }
            // Each batch must be deadline-sorted (the schedule-order
            // guarantee workers rely on when waking).
            assert!(
                due.windows(2).all(|w| w[0].0 <= w[1].0),
                "expire batch not in deadline order"
            );
            fired.extend(due.drain(..).map(|(d, _)| d));
            if now > deadline_all && threads.iter().all(|t| t.is_finished()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(3));
        }
        for t in threads {
            t.join().unwrap();
        }
        // Drain stragglers armed after the last sweep.
        std::thread::sleep(Duration::from_millis(5));
        wheel.lock().unwrap().expire(Instant::now(), &mut due);
        fired.extend(due.drain(..).map(|(d, _)| d));
        assert_eq!(
            fired.len(),
            armed_count.load(Ordering::SeqCst),
            "every armed timer must eventually fire"
        );
        assert_eq!(wheel.lock().unwrap().len, 0);
    }

    #[test]
    fn sleeps_fire_tasks_in_deadline_order_on_one_worker() {
        // End-to-end schedule ordering: one worker, shuffled sleep
        // durations; wake (and therefore poll) order must come out
        // sorted by deadline.
        let rt = Runtime::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let durations_ms = [120u64, 40, 80, 10, 100, 60];
        let handles: Vec<_> = durations_ms
            .iter()
            .map(|&ms| {
                let rt2 = rt.clone();
                let order = order.clone();
                rt.spawn(async move {
                    rt2.sleep(Duration::from_millis(ms)).await;
                    order.lock().unwrap().push(ms);
                })
            })
            .collect();
        for h in handles {
            rt.block_on(h);
        }
        let got = order.lock().unwrap().clone();
        let mut expect = durations_ms.to_vec();
        expect.sort_unstable();
        assert_eq!(got, expect, "sleeps fired out of deadline order");
    }
}
