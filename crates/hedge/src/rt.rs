//! A minimal multi-threaded async runtime.
//!
//! The serving environment for this repository cannot fetch external
//! crates, so instead of tokio the hedge runtime runs on this small,
//! `std`-only executor: a fixed pool of worker threads polling a shared
//! run queue, plus one timer thread driving [`Sleep`] futures off a
//! deadline heap. Wakers are `Arc<Task>` handles via [`std::task::Wake`]
//! — no unsafe anywhere.
//!
//! The surface is intentionally tiny — [`Runtime::spawn`],
//! [`Runtime::block_on`], [`Runtime::sleep`], and the [`race`]
//! combinator — because that is exactly what speculative execution
//! needs: run concurrent attempts, arm a timer, take the first result.

use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use crate::sync::{oneshot, RecvFuture};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

// Task scheduling states. The state machine exists to close the
// classic lost-wakeup race: a wake that lands *while a worker is
// polling* must not enqueue the task (another worker would find the
// future slot empty and drop the notification) — it marks NOTIFIED,
// and the polling worker re-enqueues after restoring the future.
const TASK_IDLE: u8 = 0;
const TASK_SCHEDULED: u8 = 1;
const TASK_RUNNING: u8 = 2;
const TASK_NOTIFIED: u8 = 3;

/// One spawned task: its future plus a re-schedule handle.
struct Task {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    rt: Weak<RtInner>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(rt) = self.rt.upgrade() {
            rt.schedule(self);
        }
    }
}

/// A timer registration: min-heap by deadline.
struct TimerEntry {
    deadline: Instant,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline) // reversed: BinaryHeap is a max-heap
    }
}

struct RtInner {
    queue: Mutex<VecDeque<Arc<Task>>>,
    queue_cv: Condvar,
    timers: Mutex<BinaryHeap<TimerEntry>>,
    timers_cv: Condvar,
    shutdown: AtomicBool,
    live_tasks: AtomicU64,
}

impl RtInner {
    fn schedule(&self, task: Arc<Task>) {
        loop {
            match task.state.load(Ordering::SeqCst) {
                TASK_IDLE => {
                    if task
                        .state
                        .compare_exchange(
                            TASK_IDLE,
                            TASK_SCHEDULED,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        self.push(task);
                        return;
                    }
                }
                TASK_RUNNING => {
                    // Mid-poll: mark so the polling worker re-enqueues
                    // after it restores the future (see worker_loop).
                    if task
                        .state
                        .compare_exchange(
                            TASK_RUNNING,
                            TASK_NOTIFIED,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued or already marked for re-poll.
                _ => return,
            }
        }
    }

    fn push(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.queue_cv.notify_one();
    }
}

/// The executor handle. Cheap to clone; dropping the last handle shuts
/// the worker and timer threads down.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
    // Owns worker/timer threads: shutdown + join when the last clone drops.
    _threads: Arc<ThreadSet>,
}

struct ThreadSet {
    inner: Arc<RtInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for ThreadSet {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        self.inner.timers_cv.notify_all();
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl Runtime {
    /// Starts a runtime with `workers` poller threads (min 1) and one
    /// timer thread.
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(RtInner {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            timers: Mutex::new(BinaryHeap::new()),
            timers_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live_tasks: AtomicU64::new(0),
        });
        let mut handles = Vec::new();
        for i in 0..workers.max(1) {
            let rt = inner.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hedge-worker-{i}"))
                    .spawn(move || worker_loop(&rt))
                    .expect("spawn worker thread"),
            );
        }
        let rt = inner.clone();
        handles.push(
            std::thread::Builder::new()
                .name("hedge-timer".into())
                .spawn(move || timer_loop(&rt))
                .expect("spawn timer thread"),
        );
        Runtime {
            _threads: Arc::new(ThreadSet {
                inner: inner.clone(),
                handles: Mutex::new(handles),
            }),
            inner,
        }
    }

    /// Spawns a future onto the pool, returning a handle resolving to
    /// its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (tx, rx) = oneshot();
        let inner = self.inner.clone();
        inner.live_tasks.fetch_add(1, Ordering::Relaxed);
        let counted = CountGuardFuture {
            rt: inner.clone(),
            inner: Box::pin(async move {
                let _ = tx.send(future.await);
            }),
        };
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(counted))),
            state: AtomicU8::new(TASK_SCHEDULED),
            rt: Arc::downgrade(&self.inner),
        });
        self.inner.push(task);
        JoinHandle { rx: rx.recv() }
    }

    /// A future that resolves `duration` from now.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(Instant::now() + duration)
    }

    /// A future that resolves at `deadline` (immediately if it has
    /// passed). Deadline-based timers keep a multi-stage reissue
    /// schedule anchored to the *primary dispatch*: re-arming with
    /// relative sleeps would accumulate scheduling slop per stage.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        Sleep {
            deadline,
            rt: self.inner.clone(),
        }
    }

    /// Drives `future` to completion on the calling thread (worker
    /// threads keep running other tasks meanwhile).
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        struct ThreadWaker(std::thread::Thread);
        impl Wake for ThreadWaker {
            fn wake(self: Arc<Self>) {
                self.0.unpark();
            }
        }
        let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        // Safe pinning: shadow the future on the stack.
        let mut future = std::pin::pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::park(),
            }
        }
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> u64 {
        self.inner.live_tasks.load(Ordering::Relaxed)
    }
}

/// Decrements the live-task counter when the task future completes or
/// is dropped mid-flight.
struct CountGuardFuture {
    rt: Arc<RtInner>,
    inner: BoxFuture,
}

impl Drop for CountGuardFuture {
    fn drop(&mut self) {
        self.rt.live_tasks.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Future for CountGuardFuture {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        self.inner.as_mut().poll(cx)
    }
}

fn worker_loop(rt: &RtInner) {
    loop {
        let task = {
            let mut q = rt.queue.lock().unwrap();
            loop {
                if rt.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = rt.queue_cv.wait(q).unwrap();
            }
        };
        task.state.store(TASK_RUNNING, Ordering::SeqCst);
        let Some(mut future) = task.future.lock().unwrap().take() else {
            // Late wake on a completed task.
            task.state.store(TASK_IDLE, Ordering::SeqCst);
            continue;
        };
        let waker = Waker::from(task.clone());
        let mut cx = Context::from_waker(&waker);
        // A panicking task must not take down the worker; the panic
        // surfaces at its JoinHandle as a Canceled error instead.
        let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            future.as_mut().poll(&mut cx)
        }));
        match poll {
            Ok(Poll::Pending) => {
                // Restore the future BEFORE leaving RUNNING, so a
                // concurrent wake that re-enqueues finds it present.
                *task.future.lock().unwrap() = Some(future);
                if task
                    .state
                    .compare_exchange(TASK_RUNNING, TASK_IDLE, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
                {
                    // A wake landed mid-poll (state is NOTIFIED): the
                    // notification would otherwise be lost, so this
                    // worker re-enqueues the task itself.
                    task.state.store(TASK_SCHEDULED, Ordering::SeqCst);
                    rt.push(task);
                }
            }
            Ok(Poll::Ready(())) | Err(_) => {
                // Done (or future dropped by panic; JoinHandle sees
                // Canceled). Late wakes hit the empty-slot path above.
                task.state.store(TASK_IDLE, Ordering::SeqCst);
            }
        }
    }
}

fn timer_loop(rt: &RtInner) {
    let mut due: Vec<Waker> = Vec::new();
    loop {
        {
            let mut timers = rt.timers.lock().unwrap();
            loop {
                if rt.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let now = Instant::now();
                while timers.peek().is_some_and(|entry| entry.deadline <= now) {
                    due.push(timers.pop().unwrap().waker);
                }
                if !due.is_empty() {
                    break;
                }
                timers = match timers.peek().map(|entry| entry.deadline) {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(now);
                        rt.timers_cv.wait_timeout(timers, wait).unwrap().0
                    }
                    None => rt.timers_cv.wait(timers).unwrap(),
                };
            }
        }
        for waker in due.drain(..) {
            waker.wake();
        }
    }
}

/// Future returned by [`Runtime::sleep`]. `Unpin`; safe to poll in
/// racing combinators.
pub struct Sleep {
    deadline: Instant,
    rt: Arc<RtInner>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        self.rt.timers.lock().unwrap().push(TimerEntry {
            deadline: self.deadline,
            waker: cx.waker().clone(),
        });
        self.rt.timers_cv.notify_one();
        Poll::Pending
    }
}

/// Handle to a spawned task; awaiting it yields the task's output.
///
/// # Panics
/// Awaiting panics if the task itself panicked.
pub struct JoinHandle<T> {
    rx: RecvFuture<T>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Ok(v)) => Poll::Ready(v),
            Poll::Ready(Err(_)) => panic!("joined task panicked"),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// First-completed-wins result of [`race`]; the loser future is handed
/// back so the caller can keep driving (or drop) it.
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Future racing two `Unpin` futures; see [`race`].
pub struct Race<FA, FB> {
    a: Option<FA>,
    b: Option<FB>,
}

/// Races two futures; resolves with the winner's output and the
/// still-pending loser. Polls the first future first on ties, so a
/// completed response beats a simultaneously-expired timer.
pub fn race<FA, FB>(a: FA, b: FB) -> Race<FA, FB>
where
    FA: Future + Unpin,
    FB: Future + Unpin,
{
    Race {
        a: Some(a),
        b: Some(b),
    }
}

impl<FA, FB> Future for Race<FA, FB>
where
    FA: Future + Unpin,
    FB: Future + Unpin,
{
    type Output = Either<(FA::Output, FB), (FA, FB::Output)>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        let mut a = this.a.take().expect("Race polled after completion");
        let mut b = this.b.take().expect("Race polled after completion");
        if let Poll::Ready(va) = Pin::new(&mut a).poll(cx) {
            return Poll::Ready(Either::Left((va, b)));
        }
        if let Poll::Ready(vb) = Pin::new(&mut b).poll(cx) {
            return Poll::Ready(Either::Right((a, vb)));
        }
        this.a = Some(a);
        this.b = Some(b);
        Poll::Pending
    }
}

/// Future returned by [`select_all`]: first-completed-wins over a
/// whole set of `Unpin` futures.
pub struct SelectAll<F> {
    futures: Vec<F>,
}

impl<F> SelectAll<F> {
    /// Hands the still-pending futures back (e.g. after this selector
    /// lost a [`race`] against a timer), preserving their order.
    pub fn into_futures(self) -> Vec<F> {
        self.futures
    }
}

/// Races any number of futures; resolves with the winner's index (in
/// the input order), its output, and the still-pending rest (with the
/// winner removed, other indices shifted down). Polls in input order,
/// so on simultaneous readiness the earliest-dispatched attempt wins —
/// for hedging that means the primary beats a same-instant reissue.
///
/// # Panics
/// Polling panics if `futures` is empty (there is nothing to win).
pub fn select_all<F: Future + Unpin>(futures: Vec<F>) -> SelectAll<F> {
    SelectAll { futures }
}

impl<F: Future + Unpin> Future for SelectAll<F> {
    type Output = (usize, F::Output, Vec<F>);

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        assert!(!this.futures.is_empty(), "select_all over no futures");
        for i in 0..this.futures.len() {
            if let Poll::Ready(v) = Pin::new(&mut this.futures[i]).poll(cx) {
                let mut rest = std::mem::take(&mut this.futures);
                rest.remove(i);
                return Poll::Ready((i, v, rest));
            }
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_plain_value() {
        let rt = Runtime::new(2);
        assert_eq!(rt.block_on(async { 40 + 2 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new(2);
        let h = rt.spawn(async { 7u64 * 6 });
        assert_eq!(rt.block_on(h), 42);
    }

    #[test]
    fn many_tasks_all_complete() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|_| {
                let c = counter.clone();
                rt.spawn(async move {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            rt.block_on(h);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(rt.live_tasks(), 0);
    }

    #[test]
    fn sleep_waits_roughly_right() {
        let rt = Runtime::new(1);
        let t0 = Instant::now();
        rt.block_on(rt.sleep(Duration::from_millis(30)));
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(28), "slept {dt:?}");
        assert!(dt < Duration::from_secs(2), "slept {dt:?}");
    }

    #[test]
    fn race_timer_vs_task() {
        let rt = Runtime::new(2);
        // Fast task beats slow timer.
        let fast = rt.spawn(async { "fast" });
        let won = rt.block_on(race(fast, rt.sleep(Duration::from_secs(5))));
        match won {
            Either::Left((v, _timer)) => assert_eq!(v, "fast"),
            Either::Right(_) => panic!("timer should lose"),
        }
        // Timer beats slow task.
        let rt2 = rt.clone();
        let slow = rt.spawn(async move {
            rt2.sleep(Duration::from_secs(5)).await;
            "slow"
        });
        match rt.block_on(race(slow, rt.sleep(Duration::from_millis(10)))) {
            Either::Left(_) => panic!("slow task should lose"),
            Either::Right((_loser, ())) => {}
        }
    }

    #[test]
    fn select_all_returns_winner_and_rest() {
        let rt = Runtime::new(2);
        let rt2 = rt.clone();
        let slow = |ms: u64, v: &'static str| {
            let rt = rt2.clone();
            rt2.spawn(async move {
                rt.sleep(Duration::from_millis(ms)).await;
                v
            })
        };
        let (idx, won, rest) = rt.block_on(select_all(vec![
            slow(200, "a"),
            slow(5, "b"),
            slow(200, "c"),
        ]));
        assert_eq!((idx, won), (1, "b"));
        assert_eq!(rest.len(), 2);
        // The handed-back losers still complete.
        for loser in rest {
            let v = rt.block_on(loser);
            assert!(v == "a" || v == "c");
        }
    }

    #[test]
    fn select_all_loses_race_to_timer_and_hands_futures_back() {
        let rt = Runtime::new(2);
        let rt2 = rt.clone();
        let pending = rt.spawn(async move {
            rt2.sleep(Duration::from_millis(300)).await;
            41
        });
        match rt.block_on(race(
            select_all(vec![pending]),
            rt.sleep(Duration::from_millis(10)),
        )) {
            Either::Left(_) => panic!("timer should win"),
            Either::Right((sel, ())) => {
                let futs = sel.into_futures();
                assert_eq!(futs.len(), 1);
                let (i, v, rest) = rt.block_on(select_all(futs));
                assert_eq!((i, v), (0, 41));
                assert!(rest.is_empty());
            }
        }
    }

    #[test]
    fn sleep_until_past_deadline_is_immediate() {
        let rt = Runtime::new(1);
        let t0 = Instant::now();
        rt.block_on(rt.sleep_until(t0 - Duration::from_millis(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn nested_spawns_from_tasks() {
        let rt = Runtime::new(2);
        let rt2 = rt.clone();
        let h = rt.spawn(async move {
            let inner = rt2.spawn(async { 10 });
            inner.await + 1
        });
        assert_eq!(rt.block_on(h), 11);
    }

    #[test]
    #[should_panic(expected = "joined task panicked")]
    fn panicking_task_propagates_at_join() {
        let rt = Runtime::new(1);
        let h = rt.spawn(async { panic!("boom") });
        rt.block_on(h);
    }
}
