//! Integration tests for the speculative-execution runtime: hedged
//! wins with loser cancellation, reissue-budget adherence, and full
//! command-set round-trips over real TCP sockets.

use hedge::{HedgeConfig, HedgedClient, TcpServer, TcpServerConfig};
use kvstore::resp::{decode_command, decode_reply, encode_command, encode_reply};
use kvstore::{Command, IntSet, KvStore, Reply};
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

use std::time::Duration;

fn small_store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set(
        "evens",
        IntSet::from_unsorted((0..100u32).map(|i| i * 2).collect()),
    );
    store.load_set(
        "threes",
        IntSet::from_unsorted((0..100u32).map(|i| i * 3).collect()),
    );
    let (reply, _) = store.execute(&Command::Set("greeting".into(), "hello".into()));
    assert_eq!(reply, Reply::Ok);
    store
}

fn monster_store() -> KvStore {
    let mut store = small_store();
    store.load_set("big1", IntSet::from_unsorted((0..400_000u32).collect()));
    store.load_set(
        "big2",
        IntSet::from_unsorted((200_000..600_000u32).collect()),
    );
    store
}

/// (1) A hedged request returns the fast replica's answer while the
/// slow replica's copy is cancelled before it ever executes.
#[test]
fn hedged_request_wins_on_fast_replica_and_cancels_slow() {
    // Replica 0 will be head-of-line blocked by a monster query;
    // replica 1 stays idle.
    let cfg = TcpServerConfig {
        nanos_per_op: 2_000,
    };
    let servers = [
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            // Hedge aggressively after 5 ms, always.
            policy: ReissuePolicy::single_d(5.0),
            online: None,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    // Head-of-line-block replica 0 with a monster intersection sent on
    // a raw side connection (~400k cost units * 2µs ≈ 800 ms of
    // service time).
    use std::io::Write as _;
    let mut side = std::net::TcpStream::connect(addrs[0]).unwrap();
    let mut frame = bytes::BytesMut::new();
    encode_command(
        &Command::SInterCard("big1".into(), "big2".into()),
        &mut frame,
    );
    side.write_all(&frame).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let it occupy replica 0

    // The hedged query: its primary lands on the blocked replica 0, so
    // only the 5 ms reissue to idle replica 1 can answer quickly — and
    // the blocked copy must be retracted.
    let t0 = std::time::Instant::now();
    let reply = client
        .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
        .unwrap();
    let elapsed = t0.elapsed();

    // Correct answer from the fast replica: |{0, 2, ...198} ∩ {0, 3,
    // ..., 297}| = multiples of 6 below 200 = 34.
    assert_eq!(reply, Reply::Int(34), "intersection cardinality");
    // Far faster than the blocked replica could answer.
    assert!(
        elapsed < Duration::from_millis(500),
        "hedged query took {elapsed:?}; cancellation/hedging failed"
    );

    let stats = client.stats();
    assert!(stats.reissues >= 1, "the 5 ms hedge must have fired");
    assert_eq!(
        stats.reissue_wins, 1,
        "the idle replica must win: {stats:?}"
    );

    // The loser's cancellation confirmation arrives asynchronously;
    // poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while client.stats().cancelled_in_time == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = client.stats();
    assert!(
        stats.cancelled_in_time >= 1,
        "the blocked replica's copy should be retracted: {stats:?}"
    );
    // And the blocked replica must never execute the retracted query:
    // the only command it runs is the monster itself.
    assert_eq!(
        servers[0].stats().commands,
        1,
        "retracted work must not run"
    );
}

/// (2) Observed reissue rate stays within the configured budget ±1%.
#[test]
fn reissue_rate_tracks_budget() {
    let servers = [
        TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap(),
        TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap(),
        TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    // Fixed SingleR with d = 0: every query flips the q-coin, so the
    // reissue budget equals q exactly and the observed rate is a
    // deterministic function of the seeded RNG.
    let budget = 0.20;
    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            policy: ReissuePolicy::single_r(0.0, budget),
            online: None,
            seed: 42,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    let queries = 10_000u64;
    for _ in 0..queries {
        let r = client
            .execute_blocking(Command::Get("greeting".into()))
            .unwrap();
        assert_eq!(r, Reply::Str("hello".into()));
    }
    let stats = client.stats();
    assert_eq!(stats.queries, queries);
    let rate = stats.reissues as f64 / stats.queries as f64;
    assert!(
        (rate - budget).abs() <= 0.01,
        "observed reissue rate {rate:.4} vs budget {budget} ±1%"
    );
}

/// (2b) Same property with the *online adapter* choosing `(d, q)`
/// live: the adapter's own budget accounting must respect the cap.
#[test]
fn online_adapter_policy_stays_within_budget() {
    let servers = [
        TcpServer::bind(
            "127.0.0.1:0",
            small_store(),
            TcpServerConfig { nanos_per_op: 300 },
        )
        .unwrap(),
        TcpServer::bind(
            "127.0.0.1:0",
            small_store(),
            TcpServerConfig { nanos_per_op: 300 },
        )
        .unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    let budget = 0.10;
    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(OnlineConfig {
                k: 0.95,
                budget,
                window: 512,
                reoptimize_every: 128,
                learning_rate: 0.5,
                min_pairs: 32,
            }),
            seed: 7,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    for _ in 0..4_000u64 {
        client
            .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
            .unwrap();
    }
    // The live policy's expected budget never exceeds the cap.
    let policy = client.policy();
    if let ReissuePolicy::SingleR { delay, prob } = policy {
        assert!(delay >= 0.0);
        assert!((0.0..=1.0).contains(&prob));
    } else {
        panic!("adapter should have produced a SingleR policy, got {policy}");
    }
    // And the realized reissue rate stays within budget ±1% (the
    // adapter re-optimizes toward q·P(outstanding at d) = budget).
    let stats = client.stats();
    let rate = stats.reissues as f64 / stats.queries as f64;
    assert!(
        rate <= budget + 0.01,
        "observed reissue rate {rate:.4} vs budget {budget} + 1%"
    );
}

/// (2c) Raced hedges feed censored `(primary, reissue)` pairs to the
/// online adapter, and the adapter switches to the §4.2 correlated
/// optimizer once enough accumulate — end to end through real TCP
/// sockets and tied-request cancellation.
#[test]
fn raced_hedges_feed_censored_pairs_to_adapter() {
    let cfg = TcpServerConfig {
        nanos_per_op: 2_000,
    };
    let servers = [
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            // Aggressive fixed hedge until the adapter warms up, so
            // races (and pairs) start from the first queries.
            policy: ReissuePolicy::single_r(5.0, 1.0),
            online: Some(OnlineConfig {
                k: 0.90,
                budget: 0.5,
                window: 16,
                reoptimize_every: 20,
                learning_rate: 0.5,
                min_pairs: 8,
            }),
            budget_cap: Some(1.0), // let every armed hedge fire
            seed: 11,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    // Head-of-line-block replica 0 with a monster intersection (~800 ms
    // of service time) so queries whose primary lands there must be won
    // by the reissue, and the retracted loser produces a *censored*
    // pair.
    use std::io::Write as _;
    let mut side = std::net::TcpStream::connect(addrs[0]).unwrap();
    let mut frame = bytes::BytesMut::new();
    encode_command(
        &Command::SInterCard("big1".into(), "big2".into()),
        &mut frame,
    );
    side.write_all(&frame).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let it occupy replica 0

    for _ in 0..40 {
        let r = client
            .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
            .unwrap();
        assert_eq!(r, Reply::Int(34));
    }

    // Loser drains resolve asynchronously; poll until pairs appear.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while std::time::Instant::now() < deadline {
        let s = client.stats();
        if s.pairs_censored >= 1 && client.online_correlated() == Some(true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = client.stats();
    assert!(
        stats.pairs_censored >= 1,
        "retracted losers must produce censored pairs: {stats:?}"
    );
    assert_eq!(
        client.online_correlated(),
        Some(true),
        "adapter should have switched to the correlated optimizer: {stats:?}"
    );
    let record = client.online_policy().expect("online adapter active");
    assert!(record.delay.is_finite() && record.delay >= 0.0);
    assert!(
        record.budget_used <= 0.5 + 1e-9,
        "adapter budget accounting must hold: {record:?}"
    );
}

/// (3) Every RESP command type used by `kvstore::store::Command`
/// round-trips through the TCP transport.
#[test]
fn tcp_transport_roundtrips_every_command_type() {
    let server = TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap();
    let client = HedgedClient::connect(
        &[server.local_addr()],
        HedgeConfig::default(), // policy None: plain dispatch
    )
    .unwrap();

    let cases: Vec<(Command, Reply)> = vec![
        (Command::Ping, Reply::Pong),
        (Command::Set("k".into(), "v".into()), Reply::Ok),
        (Command::Get("k".into()), Reply::Str("v".into())),
        (Command::Get("missing".into()), Reply::Nil),
        (Command::Del("k".into()), Reply::Int(1)),
        (Command::SAdd("s".into(), vec![3, 1, 2, 3]), Reply::Int(3)),
        (Command::SCard("s".into()), Reply::Int(3)),
        (
            Command::SInter("evens".into(), "threes".into()),
            Reply::Members((0..34u32).map(|i| i * 6).collect()),
        ),
        (
            Command::SInterCard("evens".into(), "threes".into()),
            Reply::Int(34),
        ),
        (Command::Get("s".into()), Reply::Error("WRONGTYPE".into())),
    ];
    for (cmd, want) in cases {
        let got = client.execute_blocking(cmd.clone()).unwrap();
        assert_eq!(got, want, "command {cmd:?}");
    }

    // `Command::Cancel` is transport-internal: it round-trips through
    // the codec (wire format) and executes as a no-op on a bare store,
    // but the client refuses to dispatch it as a request.
    let mut wire = bytes::BytesMut::new();
    encode_command(&Command::Cancel(42), &mut wire);
    assert_eq!(
        decode_command(&mut wire).unwrap(),
        Some(Command::Cancel(42))
    );
    let mut store = KvStore::new();
    assert_eq!(store.execute(&Command::Cancel(42)).0, Reply::Ok);
    assert!(client.execute_blocking(Command::Cancel(42)).is_err());

    // Typed replies also round-trip through the client-side decoder.
    for reply in [
        Reply::Ok,
        Reply::Pong,
        Reply::Str("xyz".into()),
        Reply::Int(-3),
        Reply::Members(vec![1, 2, 3]),
        Reply::Nil,
        Reply::Error("boom".into()),
    ] {
        let mut buf = bytes::BytesMut::new();
        encode_reply(&reply, &mut buf);
        assert_eq!(decode_reply(&mut buf).unwrap(), Some(reply));
        assert!(buf.is_empty());
    }
}
